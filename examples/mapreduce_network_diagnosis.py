#!/usr/bin/env python3
"""Case study 1: diagnosing a network problem in a MapReduce job.

Reproduces the paper's §6.4 walk-through step by step:

1. IntelLog consumes a WordCount job's logs and reports the problematic
   sessions (a small subset of all sessions — "significantly reduces the
   log range for analysis");
2. the unexpected log messages are transformed to Intel Messages;
3. ``GroupBy`` on identifiers shows several fetchers failing;
4. ``GroupBy`` on the location information collapses to a single group —
   one host: the injected network failure.

Run:  python examples/mapreduce_network_diagnosis.py
"""

from __future__ import annotations

from repro import IntelLog
from repro.detection.report import AnomalyKind
from repro.extraction.intelkey import IntelMessage
from repro.query import MessageStore
from repro.simulators import (
    FaultSpec,
    MapReduceConfig,
    MapReduceSimulator,
    sessions_of,
)


def main() -> None:
    simulator = MapReduceSimulator(seed=11)

    print("== training on normal WordCount runs ==")
    training = [
        simulator.run_job(
            "wordcount", MapReduceConfig(input_gb=float(1 + i % 4)),
            base_time=i * 10_000.0,
        )
        for i in range(8)
    ]
    intellog = IntelLog()
    summary = intellog.train(sessions_of(training))
    print(f"{summary.log_keys} log keys, {summary.entity_groups} entity "
          f"groups learned\n")

    print("== running the 30GB-class job with an injected network fault ==")
    job = simulator.run_job(
        "wordcount",
        MapReduceConfig(input_gb=8.0, reducers=4),
        fault=FaultSpec("network", at_fraction=0.4),
        base_time=900_000.0,
    )
    report = intellog.detect_job(job.sessions, job.app_id)

    # Step 1: problematic sessions out of all sessions.
    print(f"step 1: {len(report.problematic_sessions)} problematic "
          f"sessions out of {len(report.sessions)}")

    # Step 2: unexpected messages -> Intel Messages.
    store = MessageStore()
    for session in report.sessions:
        for anomaly in session.by_kind(AnomalyKind.UNEXPECTED_MESSAGE):
            store.add(IntelMessage(
                key_id="<unexpected>",
                timestamp=anomaly.timestamp or 0.0,
                session_id=session.session_id,
                message=anomaly.message or "",
                identifiers=anomaly.extraction.get("identifiers", {}),
                localities=anomaly.extraction.get("localities", {}),
                entities=tuple(anomaly.extraction.get("entities", ())),
            ))
    print(f"step 2: {len(store)} unexpected messages transformed to "
          f"Intel Messages")
    entities = {e for m in store for e in m.entities}
    print(f"        entities mentioned: {sorted(entities)[:6]}")

    # Step 3: GroupBy identifiers (pick the densest identifier type the
    # extraction discovered in the unexpected messages).
    id_types = sorted(
        {id_type for m in store for id_type in m.identifiers},
        key=lambda t: -len(store.group_by_identifier(t)),
    )
    if id_types:
        id_type = id_types[0]
        groups = store.group_by_identifier(id_type)
        print(f"step 3: GroupBy identifier {id_type}: "
              f"{len(groups)} groups with failures")

    # Step 4: GroupBy locality -> one host.
    by_host = store.group_by_locality()
    print(f"step 4: GroupBy locality: {len(by_host)} group(s):")
    for host, messages in by_host.items():
        print(f"        {host}: {len(messages)} failure messages")
    print("\ndiagnosis: connection failures concentrate on a single "
          "host -> network problem on that node.")
    print(f"(injected fault: {job.fault}; affected sessions: "
          f"{len(job.affected_sessions)})")


if __name__ == "__main__":
    main()
