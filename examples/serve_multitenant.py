#!/usr/bin/env python3
"""Multi-tenant serving: many streams, one process, one shared model.

Where ``streaming_live_detection.py`` runs one stream in one runtime,
this example drives the serving layer (``repro.serve``):

1. train a model on normal Spark runs and **publish** it into a
   versioned, content-addressed registry;
2. **attach three tenants** — each its own record stream — and watch
   them share a single in-memory model (ref-counted);
3. drain the fleet with the sweep scheduler, then publish a v2 model
   and **atomically swap** one tenant onto it while the others keep
   their lease;
4. print the fleet status document the ``/tenants`` endpoint serves.

Run:  python examples/serve_multitenant.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro import IntelLog
from repro.core import ServeConfig
from repro.query.store import ModelStore
from repro.serve import DetectionService, ModelRegistry, TenantSpec
from repro.simulators import WorkloadGenerator, sessions_of
from repro.stream import IterableSource, ListSink


def train(seed: int, jobs: int) -> IntelLog:
    gen = WorkloadGenerator(seed=seed)
    intellog = IntelLog()
    intellog.train(sessions_of(gen.run_batch("spark", jobs)))
    return intellog


def tenant_stream(seed: int):
    gen = WorkloadGenerator(seed=seed)
    records = [
        r for job in gen.run_batch("spark", 2) for r in job.records
    ]
    records.sort(key=lambda r: r.timestamp)
    return records


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-serve-"))

    # --- 1. publish a model ------------------------------------------------
    registry = ModelRegistry(workdir / "registry")
    v1, d1 = registry.publish(
        ModelStore.from_intellog(train(seed=7, jobs=8)), "spark-prod"
    )
    print(f"published spark-prod@{v1} ({d1[:12]}...)")

    # --- 2. attach three tenants against the one shared model -------------
    service = DetectionService(
        registry,
        ServeConfig(workers=0, quantum=128),
        checkpoint_dir=workdir / "ckpt",
    )
    sinks: dict[str, ListSink] = {}
    for tid, seed in (("team-a", 101), ("team-b", 202), ("team-c", 303)):
        sinks[tid] = ListSink()
        service.attach(
            TenantSpec(
                tenant_id=tid, model="spark-prod",
                idle_timeout=1e12, max_open_sessions=10**9,
            ),
            source=IterableSource(tenant_stream(seed)),
            sink=sinks[tid],
        )
    print(f"attached 3 tenants; model refcount = "
          f"{registry.refcount(d1)} (one in-memory copy)\n")

    # --- 3. drain, then swap one tenant to a new version ------------------
    service.drain()
    for tid, sink in sinks.items():
        anomalous = sum(1 for r in sink.reports if r.anomalous)
        print(f"  {tid}: {len(sink.reports)} reports, "
              f"{anomalous} anomalous, on "
              f"{service.tenant(tid).lease.ref}")

    v2, d2 = registry.publish(
        ModelStore.from_intellog(train(seed=7, jobs=6)), "spark-prod"
    )
    service.swap("team-a")          # parks the new lease...
    service.cycle()                 # ...the pump installs it between quanta
    print(f"\nswapped team-a -> spark-prod@{v2}; "
          f"refcounts v1={registry.refcount(d1)} "
          f"v2={registry.refcount(d2)} (others kept their lease)")

    # --- 4. the fleet document the /tenants endpoint serves ---------------
    status = service.tenants_status()
    print("\n/tenants:")
    print(json.dumps(status["fleet"], indent=2, sort_keys=True))
    service.close()


if __name__ == "__main__":
    main()
