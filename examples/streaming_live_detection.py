#!/usr/bin/env python3
"""Streaming live detection: watch a job's logs as they arrive.

Where ``quickstart.py`` detects over fully materialized sessions, this
example runs the online runtime (``repro.stream``):

1. train a model on normal Spark runs;
2. replay a fault-injected job *record by record*, time-interleaved
   across containers, through :class:`~repro.stream.StreamRuntime`;
3. watch live unexpected-message alerts fire mid-job, sessions close on
   end markers, and per-session reports stream out of the sink —
   identical to what batch ``detect_job`` would have produced.

Run:  python examples/streaming_live_detection.py
"""

from __future__ import annotations

from repro import IntelLog, split_sessions
from repro.simulators import FaultSpec, SparkConfig, SparkSimulator, sessions_of
from repro.stream import (
    CallbackSink,
    IterableSource,
    StreamRuntime,
    TrackerConfig,
)


def main() -> None:
    simulator = SparkSimulator(seed=7)

    # --- 1. train on normal runs ------------------------------------------
    training_jobs = [
        simulator.run_job(
            "wordcount", SparkConfig(input_gb=float(1 + i % 4)),
            base_time=i * 10_000.0,
        )
        for i in range(8)
    ]
    intellog = IntelLog()
    summary = intellog.train(sessions_of(training_jobs))
    print(f"trained: {summary.log_keys} log keys, "
          f"{summary.entity_groups} entity groups\n")

    # --- 2. a faulty job, replayed as an interleaved record stream --------
    faulty = simulator.run_job(
        "wordcount", SparkConfig(input_gb=2.0),
        fault=FaultSpec("network", at_fraction=0.4),
        base_time=500_000.0,
    )
    records = sorted(faulty.records, key=lambda r: r.timestamp)
    print(f"streaming {len(records)} records from "
          f"{len(faulty.sessions)} containers ...\n")

    # --- 3. the live runtime ----------------------------------------------
    def on_alert(alert) -> None:
        print(f"  !! live alert t={alert.timestamp:.1f} "
              f"[{alert.session_id}] {alert.message[:70]}")

    def on_report(report, closed) -> None:
        verdict = "ANOMALOUS" if report.anomalous else "ok"
        print(f"  -> session {report.session_id} closed "
              f"({closed.reason}): {verdict}, "
              f"{len(report.anomalies)} anomalies")

    runtime = StreamRuntime(
        intellog,
        IterableSource(records),
        sink=CallbackSink(on_report),
        tracker=TrackerConfig(idle_timeout=600.0),
        on_alert=on_alert,
    )
    stats = runtime.run(once=True)

    print(f"\nruntime stats: {stats.records} records, "
          f"{stats.reports} reports, peak {stats.peak_open_sessions} "
          f"open sessions, anomalies by kind: {stats.anomalies_by_kind}")

    # --- cross-check against batch detection ------------------------------
    batch = intellog.detect_job(split_sessions(records), faulty.app_id)
    assert stats.reports == len(batch.sessions)
    print(f"batch cross-check: {len(batch.sessions)} sessions, "
          f"anomalous={batch.anomalous} — streaming saw the same job.")


if __name__ == "__main__":
    main()
