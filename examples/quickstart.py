#!/usr/bin/env python3
"""Quickstart: train IntelLog on normal runs, detect an injected fault.

Walks the full Figure 2 pipeline on the bundled Spark simulator:

1. generate normal-execution logs (training corpus);
2. train — Spell log keys, Intel Keys, entity groups, the HW-graph;
3. replay a fault-injected job and read the anomaly report.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import IntelLog
from repro.graph.render import render_summary, render_tree
from repro.simulators import (
    FaultSpec,
    SparkConfig,
    SparkSimulator,
    sessions_of,
)


def main() -> None:
    simulator = SparkSimulator(seed=7)

    # --- 1. normal-execution training corpus ---------------------------------
    training_jobs = [
        simulator.run_job(
            "wordcount",
            SparkConfig(input_gb=float(1 + i % 4)),
            base_time=i * 10_000.0,
        )
        for i in range(8)
    ]
    training_sessions = sessions_of(training_jobs)
    print(f"training corpus: {len(training_sessions)} sessions, "
          f"{sum(len(s) for s in training_sessions)} messages")

    # --- 2. train -------------------------------------------------------------
    intellog = IntelLog()
    summary = intellog.train(training_sessions)
    print(f"learned {summary.log_keys} log keys -> "
          f"{summary.entity_groups} entity groups "
          f"({summary.critical_groups} critical)\n")

    graph = intellog.hw_graph()
    print(render_summary(graph))
    print("\nHW-graph (critical groups marked '*'):")
    print(render_tree(graph))

    # --- 3. detect ---------------------------------------------------------------
    faulty = simulator.run_job(
        "wordcount",
        SparkConfig(input_gb=2.0),
        fault=FaultSpec("network", at_fraction=0.4),
        base_time=500_000.0,
    )
    report = intellog.detect_job(faulty.sessions, faulty.app_id)
    print(f"\ndetection: job {'ANOMALOUS' if report.anomalous else 'ok'}; "
          f"{len(report.problematic_sessions)} of {len(report.sessions)} "
          f"sessions problematic")
    for session in report.problematic_sessions:
        for anomaly in session.anomalies[:3]:
            print(f"  [{session.session_id[-6:]}] {anomaly.kind.value}: "
                  f"{anomaly.description[:90]}")

    clean = simulator.run_job(
        "wordcount", SparkConfig(input_gb=2.0), base_time=600_000.0
    )
    clean_report = intellog.detect_job(clean.sessions, clean.app_id)
    print(f"\ncontrol run (no fault): "
          f"{'ANOMALOUS' if clean_report.anomalous else 'clean'}")


if __name__ == "__main__":
    main()
