#!/usr/bin/env python3
"""Explore a Spark workflow: HW-graph vs Stitch's S³ graph (Figures 8/9).

Trains IntelLog on simulated Spark jobs, renders the hierarchical workflow
graph with per-group subroutines, exports it as queryable JSON, and then
builds the identifier-only S³ graph of Stitch for the §6.3 comparison —
showing what semantic awareness adds.

Run:  python examples/spark_workflow_explorer.py
"""

from __future__ import annotations

import json

from repro import IntelLog
from repro.baselines import StitchAnalyzer
from repro.graph.render import render_summary, render_tree, to_json
from repro.simulators import WorkloadGenerator, sessions_of


def main() -> None:
    generator = WorkloadGenerator(seed=23)
    jobs = generator.run_batch("spark", 10)
    sessions = sessions_of(jobs)

    intellog = IntelLog()
    intellog.train(sessions)
    graph = intellog.hw_graph()

    print("== HW-graph (Figure 8 style) ==")
    print(render_summary(graph))
    print()
    print(render_tree(graph, show_subroutines=True))

    # The 'block' group's subroutines — the paper's s1/s2/s3 walk-through.
    block = graph.groups.get("block")
    if block:
        print("\n== group 'block' subroutines ==")
        for signature, sub in sorted(block.model.subroutines.items()):
            ops = []
            for key_id in sub.ordered_keys():
                key = graph.intel_keys.get(key_id)
                if key and key.operations:
                    ops.append(key.operations[0].surface
                               or key.operations[0].predicate)
            sig_text = "{" + ", ".join(signature) + "}" if signature \
                else "{no identifier}"
            print(f"  s{sig_text}: {' -> '.join(ops)} "
                  f"({sub.instance_count} instances)")

    # JSON export (paper §5: HW-graphs are output as JSON for querying).
    exported = json.loads(to_json(graph))
    print(f"\nJSON export: {len(exported['groups'])} groups, "
          f"{len(exported['intel_keys'])} Intel Keys")

    # == the Stitch comparison (Figure 9) ==
    messages = intellog.intel_messages(sessions)
    analyzer = StitchAnalyzer()
    analyzer.consume_all(messages)
    s3 = analyzer.build()
    print("\n== Stitch S3 graph (identifiers only) ==")
    print(s3.render())
    print("\nNote what the S3 graph lacks: no entities, no operations —")
    print("only identifier cardinalities. The HW-graph above answers")
    print("'what does the system *do* with a block?'; the S3 graph")
    print("cannot (the paper's §6.3 point).")


if __name__ == "__main__":
    main()
