#!/usr/bin/env python3
"""Onboarding a *new* targeted system onto IntelLog.

The paper (§3.1, §5) says users extend IntelLog with: a log **formatter**
for their system's line layout, extra **locality patterns**, and their own
**naming-convention filters**.  This example wires all three for a made-up
"RiverRun" stream-processing engine, then trains and detects end to end —
no changes to the library.

Run:  python examples/custom_system_onboarding.py
"""

from __future__ import annotations

import re

import numpy as np

from repro import IntelLog, IntelLogConfig
from repro.extraction.locality import LocalityExtractor
from repro.extraction.pipeline import InformationExtractor
from repro.graph.render import render_tree
from repro.nlp.camelcase import FilterChain, camel_filter
from repro.parsing.formatters import Formatter
from repro.parsing.records import LogRecord, split_sessions

# --- 1. a formatter for RiverRun's layout -----------------------------------
#     "T+0012.450|worker-3|INFO|Sink: flushed 2048 records to shard-7"
_RIVERRUN_RE = re.compile(
    r"^T\+(?P<t>\d+\.\d+)\|(?P<worker>[\w\-]+)\|(?P<level>[A-Z]+)\|"
    r"(?P<source>\w+): (?P<msg>.*)$"
)


class RiverRunFormatter(Formatter):
    name = "riverrun"

    def try_parse(self, line: str) -> LogRecord | None:
        match = _RIVERRUN_RE.match(line)
        if not match:
            return None
        return LogRecord(
            timestamp=float(match.group("t")),
            level=match.group("level"),
            source=match.group("source"),
            message=match.group("msg"),
            session_id=match.group("worker"),
        )


# --- 2. a locality pattern for RiverRun's shard addresses ---------------------
def make_extractor() -> InformationExtractor:
    locality = LocalityExtractor()
    locality.add_pattern("shard", r"^shard-\d+$")

    # --- 3. RiverRun names components with snake_case ------------------------
    def snake(word: str):
        if "_" in word.strip("_"):
            parts = [p.lower() for p in word.split("_") if p]
            if len(parts) >= 2 and all(p.isalpha() for p in parts):
                return parts
        return None

    filters = FilterChain([camel_filter, snake])
    return InformationExtractor(filters=filters, locality=locality)


# --- a tiny RiverRun log generator -------------------------------------------
def riverrun_lines(seed: int, pipelines: int = 6,
                   inject_failure: bool = False) -> list[str]:
    rng = np.random.default_rng(seed)
    lines: list[str] = []
    t = 0.0
    for p in range(pipelines):
        worker = f"worker-{p % 3}"
        t += float(rng.uniform(0.1, 0.5))
        lines.append(f"T+{t:08.3f}|{worker}|INFO|Engine: starting "
                     f"stream_pipeline pipeline_{p}")
        for batch in range(int(rng.integers(2, 5))):
            t += float(rng.uniform(0.1, 0.4))
            n = int(rng.integers(500, 4000))
            shard = f"shard-{int(rng.integers(0, 9))}"
            lines.append(
                f"T+{t:08.3f}|{worker}|INFO|Sink: flushed {n} records "
                f"to {shard}"
            )
        if inject_failure and p == pipelines - 1:
            t += 0.05
            lines.append(
                f"T+{t:08.3f}|{worker}|ERROR|Sink: checkpoint_barrier "
                f"timed out for pipeline_{p} on shard-3"
            )
        t += float(rng.uniform(0.1, 0.3))
        lines.append(f"T+{t:08.3f}|{worker}|INFO|Engine: "
                     f"stream_pipeline pipeline_{p} completed cleanly")
    return lines


def main() -> None:
    intellog = IntelLog(IntelLogConfig())
    intellog.extractor = make_extractor()

    formatter = RiverRunFormatter()
    train_records = list(
        formatter.parse_lines(riverrun_lines(seed=1, pipelines=12))
    )
    summary = intellog.train(split_sessions(train_records))
    print(f"RiverRun model: {summary.log_keys} log keys, "
          f"{summary.entity_groups} entity groups")
    print(render_tree(intellog.hw_graph()))

    # snake_case names became entity phrases:
    entities = {
        entity
        for key in intellog.intel_keys.values()
        for entity in key.entities
    }
    assert "stream pipeline" in entities, entities
    print(f"\nsnake_case filter at work: 'stream_pipeline' -> "
          f"'stream pipeline' entity")

    detect_records = list(formatter.parse_lines(
        riverrun_lines(seed=2, pipelines=4, inject_failure=True)
    ))
    report = intellog.detect_job(split_sessions(detect_records), "rr-1")
    print(f"\ndetection on a failing run: anomalous={report.anomalous}")
    for session in report.problematic_sessions:
        for anomaly in session.anomalies:
            print(f"  [{session.session_id}] {anomaly.kind.value}: "
                  f"{anomaly.description[:80]}")
            if anomaly.extraction.get("localities"):
                print(f"      localities extracted: "
                      f"{anomaly.extraction['localities']}")


if __name__ == "__main__":
    main()
