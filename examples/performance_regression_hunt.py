#!/usr/bin/env python3
"""Case study 2: catching performance issues in jobs that "succeed".

The paper's second case: a Spark KMeans job and Tez TPC-H Query 8 finish
successfully, yet IntelLog reports unexpected log messages.  Information
extraction on those messages surfaces a new entity — 'spill' — and, for
Tez, a disk path: the memory limit forces intermediate data to disk,
adding I/O overhead.  Re-running with a larger memory limit produces logs
IntelLog consumes without any alarm, confirming the diagnosis.

Run:  python examples/performance_regression_hunt.py
"""

from __future__ import annotations

from repro import IntelLog
from repro.detection.report import AnomalyKind
from repro.simulators import (
    SparkConfig,
    TezConfig,
    WorkloadGenerator,
    sessions_of,
)


def spill_anomalies(report):
    return [
        anomaly
        for session in report.sessions
        for anomaly in session.by_kind(AnomalyKind.UNEXPECTED_MESSAGE)
        if "spill" in (anomaly.message or "").lower()
    ]


def main() -> None:
    generator = WorkloadGenerator(seed=31)

    print("== training Spark and Tez models on well-tuned runs ==")
    spark_model = IntelLog()
    spark_model.train(sessions_of(generator.run_batch("spark", 8)))
    tez_model = IntelLog()
    tez_model.train(sessions_of(generator.run_batch("tez", 8)))

    # --- Spark KMeans under memory pressure -----------------------------------
    print("\n== Spark KMeans, 8GB input on 512MB executors ==")
    tight = generator.spark.run_job(
        "kmeans",
        SparkConfig(input_gb=8.0, executor_memory_mb=512,
                    executor_cores=4),
        base_time=1_000_000.0,
    )
    report = spark_model.detect_job(tight.sessions, tight.app_id)
    spills = spill_anomalies(report)
    print(f"job finished 'successfully'; IntelLog reports "
          f"{len(report.problematic_sessions)} problematic sessions")
    if spills:
        entities = sorted({
            e for a in spills for e in a.extraction.get("entities", ())
        })
        print(f"unexpected messages mention new entities: {entities}")
        print(f"  e.g. \"{spills[0].message[:90]}\"")

    print("\n-- re-running with 8GB executors --")
    roomy = generator.spark.run_job(
        "kmeans",
        SparkConfig(input_gb=8.0, executor_memory_mb=8192,
                    executor_cores=4),
        base_time=1_100_000.0,
    )
    verdict = spark_model.detect_job(roomy.sessions, roomy.app_id)
    print(f"anomalies after fix: "
          f"{sum(len(s.anomalies) for s in verdict.sessions)} "
          f"-> memory limit confirmed as the cause")

    # --- Tez Query 8 under memory pressure ---------------------------------------
    print("\n== Tez TPC-H Q8, 5GB input on 256MB task memory ==")
    tez_tight = generator.tez.run_job(
        "q8", TezConfig(input_gb=5.0, task_memory_mb=256),
        base_time=1_200_000.0,
    )
    tez_report = tez_model.detect_job(tez_tight.sessions,
                                      tez_tight.app_id)
    tez_spills = spill_anomalies(tez_report)
    print(f"problematic sessions: "
          f"{len(tez_report.problematic_sessions)} / "
          f"{len(tez_report.sessions)}")
    if tez_spills:
        paths = [
            p
            for a in tez_spills
            for values in a.extraction.get("localities", {}).values()
            for p in values
        ]
        print(f"spill messages record disk locations, e.g. "
              f"{paths[0] if paths else '(none)'}")

    tez_roomy = generator.tez.run_job(
        "q8", TezConfig(input_gb=5.0, task_memory_mb=4096),
        base_time=1_300_000.0,
    )
    tez_verdict = tez_model.detect_job(tez_roomy.sessions,
                                       tez_roomy.app_id)
    print(f"after raising task memory: "
          f"{sum(len(s.anomalies) for s in tez_verdict.sessions)} "
          f"anomalies")


if __name__ == "__main__":
    main()
