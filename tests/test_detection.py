"""Tests for anomaly detection (paper §4.2) using the MapReduce model."""

import pytest

from repro.detection.report import Anomaly, AnomalyKind, SessionReport
from repro.parsing.records import LogRecord, Session
from repro.simulators import FaultSpec, MapReduceConfig


def run_detection(model, job):
    return model.detect_job(job.sessions, job.app_id)


class TestCleanJobs:
    def test_clean_job_no_anomalies(self, mr_model, mr_simulator):
        job = mr_simulator.run_job(
            "wordcount", MapReduceConfig(input_gb=2.0), base_time=5e5
        )
        report = run_detection(mr_model, job)
        assert not report.anomalous

    def test_different_config_still_clean(self, mr_model, mr_simulator):
        # The paper varies input sizes and resources for detection jobs
        # that must still pass (§6.4).
        job = mr_simulator.run_job(
            "wordcount",
            MapReduceConfig(input_gb=6.0, reducers=3),
            base_time=6e5,
        )
        report = run_detection(mr_model, job)
        assert not report.anomalous


class TestInjectedFaults:
    @pytest.mark.parametrize(
        "kind", ["sigkill", "network", "node_failure"]
    )
    def test_fault_detected(self, mr_model, mr_simulator, kind):
        job = mr_simulator.run_job(
            "wordcount",
            MapReduceConfig(input_gb=3.0),
            fault=FaultSpec(kind, at_fraction=0.3),
            base_time=7e5,
        )
        report = run_detection(mr_model, job)
        assert report.anomalous

    def test_network_fault_pinpoints_unexpected_messages(
        self, mr_model, mr_simulator
    ):
        job = mr_simulator.run_job(
            "wordcount",
            MapReduceConfig(input_gb=3.0),
            fault=FaultSpec("network", at_fraction=0.4),
            base_time=8e5,
        )
        report = run_detection(mr_model, job)
        unexpected = [
            a
            for s in report.sessions
            for a in s.by_kind(AnomalyKind.UNEXPECTED_MESSAGE)
        ]
        assert unexpected
        # §4.2: IntelLog extracts the five fields from unexpected
        # messages; the connect-failure lines carry the failing address.
        with_locality = [
            a for a in unexpected if a.extraction.get("localities")
        ]
        assert with_locality

    def test_sigkill_truncation_breaks_subroutines(
        self, mr_model, mr_simulator
    ):
        job = mr_simulator.run_job(
            "wordcount",
            MapReduceConfig(input_gb=3.0),
            fault=FaultSpec("sigkill", at_fraction=0.35),
            base_time=9e5,
        )
        report = run_detection(mr_model, job)
        kinds = {a.kind for s in report.sessions for a in s.anomalies}
        assert kinds  # at least the AM-side diagnostics fire
        assert report.anomalous

    def test_problem_sessions_are_subset(self, mr_model, mr_simulator):
        job = mr_simulator.run_job(
            "wordcount",
            MapReduceConfig(input_gb=3.0),
            fault=FaultSpec("network", at_fraction=0.4),
            base_time=10e5,
        )
        report = run_detection(mr_model, job)
        # IntelLog "significantly reduces the log range for analysis":
        # only some sessions are problematic.
        assert 0 < len(report.problematic_sessions) < len(report.sessions)


class TestUnexpectedMessageExtraction:
    def test_foreign_message_reported_with_extraction(self, mr_model):
        session = Session(session_id="x")
        session.append(LogRecord(
            timestamp=1.0, level="ERROR", source="X",
            message="Zorkmid daemon failed to contact peer host9:1234 "
                    "after 3 attempts",
        ))
        report = mr_model.detect_session(session)
        assert report.anomalous
        anomaly = report.anomalies[0]
        assert anomaly.kind == AnomalyKind.UNEXPECTED_MESSAGE
        assert anomaly.extraction["localities"]

    def test_known_message_not_reported(self, mr_model):
        session = Session(session_id="y")
        session.append(LogRecord(
            timestamp=1.0, level="INFO", source="Fetcher",
            message="fetcher#9 about to shuffle output of map "
                    "attempt_1528077000001_0001_m_000000_0",
        ))
        report = mr_model.detect_session(session)
        unexpected = report.by_kind(AnomalyKind.UNEXPECTED_MESSAGE)
        assert not unexpected


class TestReports:
    def test_session_report_shape(self):
        report = SessionReport(session_id="s1")
        report.anomalies.append(Anomaly(
            kind=AnomalyKind.MISSING_GROUP,
            description="missing",
            group="task",
        ))
        data = report.to_dict()
        assert data["anomalous"] is True
        assert data["affected_groups"] == ["task"]

    def test_job_report_json(self, mr_model, mr_simulator):
        job = mr_simulator.run_job(
            "wordcount", MapReduceConfig(input_gb=1.0), base_time=11e5
        )
        report = run_detection(mr_model, job)
        import json

        data = json.loads(report.to_json())
        assert data["job_id"] == job.app_id
        assert len(data["sessions"]) == len(job.sessions)
