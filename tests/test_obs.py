"""Tests for the observability layer (``repro.obs``)."""

import json
import threading
import urllib.request

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    SPAN_HISTOGRAM,
    MetricsRegistry,
    MetricsServer,
    SpanRecord,
    TraceRecorder,
    Tracer,
    json_snapshot,
    prometheus_text,
    render_snapshot,
    start_metrics_server,
    trace,
    write_snapshot,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = MetricsRegistry().counter("requests_total")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        c = MetricsRegistry().counter("requests_total")
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_restore_sets_absolute_value(self):
        c = MetricsRegistry().counter("requests_total")
        c.inc(5)
        c.restore(42.0)
        assert c.value == 42.0

    def test_labeled_children_are_isolated_and_cached(self):
        c = MetricsRegistry().counter("closed_total")
        c.labels(reason="flush").inc()
        c.labels(reason="eviction").inc(3)
        assert c.labels(reason="flush") is c.labels(reason="flush")
        assert c.labels(reason="flush").value == 1.0
        assert c.labels(reason="eviction").value == 3.0
        samples = c.samples()
        assert samples == [
            ({"reason": "eviction"}, 3.0),
            ({"reason": "flush"}, 1.0),
        ]

    def test_unlabeled_sample_appears_when_touched(self):
        c = MetricsRegistry().counter("mixed_total")
        c.inc(2)
        c.labels(kind="a").inc()
        labels = [lbl for lbl, _ in c.samples()]
        assert labels == [{}, {"kind": "a"}]


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("open_sessions")
        g.set(10)
        g.inc()
        g.dec(4)
        assert g.value == 7.0

    def test_gauge_may_go_negative(self):
        g = MetricsRegistry().gauge("queue_depth")
        g.set(-1)
        assert g.value == -1.0


class TestHistogram:
    def test_count_sum_and_cumulative_buckets(self):
        h = MetricsRegistry().histogram(
            "latency_seconds", buckets=[0.1, 1.0]
        )
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(5.55)
        counts = h.bucket_counts()
        assert counts[0] == (0.1, 1)
        assert counts[1] == (1.0, 2)
        assert counts[-1] == (float("inf"), 3)

    def test_quantile_interpolates_within_bucket(self):
        h = MetricsRegistry().histogram("q_seconds", buckets=[1.0, 2.0])
        for _ in range(4):
            h.observe(1.5)
        # All mass in (1.0, 2.0]; the median interpolates inside it.
        assert 1.0 < h.quantile(0.5) <= 2.0

    def test_quantile_empty_is_zero(self):
        h = MetricsRegistry().histogram("empty_seconds")
        assert h.quantile(0.5) == 0.0

    def test_quantile_beyond_buckets_clamps_to_last_bound(self):
        h = MetricsRegistry().histogram("big_seconds", buckets=[1.0, 2.0])
        h.observe(100.0)
        assert h.quantile(0.99) == 2.0

    def test_default_buckets_cover_latency_range(self):
        h = MetricsRegistry().histogram("default_seconds")
        bounds = [le for le, _ in h.bucket_counts()]
        assert bounds[:-1] == list(DEFAULT_LATENCY_BUCKETS)

    def test_non_increasing_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("bad_seconds", buckets=[1.0, 1.0])

    def test_labeled_children_inherit_buckets(self):
        h = MetricsRegistry().histogram("lab_seconds", buckets=[0.5])
        child = h.labels(stage="parse")
        child.observe(0.1)
        assert child.bucket_counts()[0] == (0.5, 1)


class TestRegistry:
    def test_get_or_create_returns_same_metric(self):
        registry = MetricsRegistry()
        assert registry.counter("a_total") is registry.counter("a_total")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(TypeError):
            registry.gauge("thing")

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad-name")

    def test_contains_len_and_sorted_iteration(self):
        registry = MetricsRegistry()
        registry.gauge("zz")
        registry.counter("aa_total")
        assert "zz" in registry
        assert "missing" not in registry
        assert len(registry) == 2
        assert [m.name for m in registry.metrics()] == ["aa_total", "zz"]


class TestTracing:
    def test_span_nesting_records_parent_and_depth(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            tracer.record("accum", 0.25)
        got = [
            (r.name, r.parent, r.depth)
            for r in tracer.recorder.records()
        ]
        assert got == [
            ("inner", "outer", 1),
            ("accum", "outer", 1),
            ("outer", None, 0),
        ]

    def test_span_duration_available_after_exit(self):
        tracer = Tracer()
        with tracer.span("timed") as span:
            pass
        assert span.duration_s >= 0.0

    def test_registry_backed_tracer_feeds_span_histogram(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry=registry)
        with tracer.span("phase"):
            pass
        hist = registry.get(SPAN_HISTOGRAM)
        assert hist.labels(span="phase").count == 1

    def test_record_clamps_negative_duration(self):
        tracer = Tracer()
        record = tracer.record("weird", -1.0)
        assert record.duration_s == 0.0

    def test_stacks_are_thread_local(self):
        tracer = Tracer()
        seen = {}

        def worker():
            with tracer.span("worker-span"):
                pass
            seen["parent"] = tracer.recorder.records()[-1].parent

        with tracer.span("main-span"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        # The worker thread's span must not inherit this thread's stack.
        assert seen["parent"] is None

    def test_trace_helper_uses_default_tracer(self):
        with trace("adhoc") as span:
            pass
        assert span.name == "adhoc"


class TestTraceRecorder:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceRecorder(capacity=0)

    def test_ring_buffer_evicts_oldest(self):
        recorder = TraceRecorder(capacity=2)
        for i in range(5):
            recorder.record(
                SpanRecord(
                    name=f"s{i}", parent=None, depth=0,
                    start_s=float(i), duration_s=0.0,
                )
            )
        assert [r.name for r in recorder.records()] == ["s3", "s4"]
        assert recorder.total == 5
        assert recorder.dropped == 3


class TestExporters:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("events_total", "Events seen.").inc(3)
        registry.counter("closed_total").labels(reason="flush").inc()
        registry.gauge("depth").set(-1)
        registry.histogram("lat_seconds", buckets=[0.1, 1.0]).observe(0.5)
        return registry

    def test_prometheus_text_format(self):
        text = prometheus_text(self._registry())
        assert "# HELP events_total Events seen." in text
        assert "# TYPE events_total counter" in text
        assert "events_total 3" in text
        assert 'closed_total{reason="flush"} 1' in text
        assert "depth -1" in text
        assert 'lat_seconds_bucket{le="0.1"} 0' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_count 1" in text

    def test_prometheus_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("esc_total").labels(key='a"b\\c').inc()
        text = prometheus_text(registry)
        assert 'esc_total{key="a\\"b\\\\c"} 1' in text

    def test_json_snapshot_unstamped_is_deterministic(self):
        a = json_snapshot(self._registry(), stamp=False)
        b = json_snapshot(self._registry(), stamp=False)
        assert a == b
        assert "snapshot_unix_s" not in a
        assert a["format"] == "repro-metrics-v1"
        assert a["metrics"]["events_total"]["samples"][0]["value"] == 3.0

    def test_json_snapshot_stamped(self):
        snapshot = json_snapshot(self._registry())
        assert isinstance(snapshot["snapshot_unix_s"], float)

    def test_write_snapshot_round_trips(self, tmp_path):
        path = tmp_path / "metrics.json"
        written = write_snapshot(self._registry(), path)
        loaded = json.loads(path.read_text())
        assert loaded == written

    def test_render_snapshot(self):
        out = render_snapshot(json_snapshot(self._registry(), stamp=False))
        assert "events_total (counter)" in out
        assert '{reason="flush"}  1' in out
        assert "p50=" in out and "p99=" in out

    def test_render_rejects_foreign_payload(self):
        with pytest.raises(ValueError):
            render_snapshot({"format": "something-else"})


class TestMetricsServer:
    def test_serves_prometheus_text_on_free_port(self):
        registry = MetricsRegistry()
        registry.counter("hits_total").inc(7)
        server = start_metrics_server(registry, port=0)
        try:
            assert server.port > 0
            with urllib.request.urlopen(server.url, timeout=5) as resp:
                assert resp.status == 200
                body = resp.read().decode("utf-8")
            assert "hits_total 7" in body
            bad = f"http://127.0.0.1:{server.port}/nope"
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(bad, timeout=5)
            assert err.value.code == 404
        finally:
            server.close()

    def test_start_stop_cycles_leak_no_threads_or_sockets(self):
        """Regression: serve restarts must not leak listener threads.

        Historically the listener thread was started in ``__init__``
        and ``close()`` was terminal — a restart leaked the old thread
        and kept the socket bound.  Now stop() releases both and
        start() rebinds (port 0 picks a fresh free port each cycle).
        """

        def exporter_threads():
            return [
                t for t in threading.enumerate()
                if t.name == "repro-metrics-exporter" and t.is_alive()
            ]

        registry = MetricsRegistry()
        registry.counter("hits_total").inc(1)
        baseline = len(exporter_threads())
        server = MetricsServer(registry, port=0, start=False)
        assert not server.running
        ports = []
        for _ in range(3):
            server.start()
            assert server.running
            ports.append(server.port)
            with urllib.request.urlopen(server.url, timeout=5) as resp:
                assert resp.status == 200
            # Idempotent start: same bind, no second thread.
            server.start()
            assert server.port == ports[-1]
            assert len(exporter_threads()) == baseline + 1
            port = server.port
            server.stop()
            server.stop()  # idempotent
            assert not server.running
            assert len(exporter_threads()) == baseline
            # The old socket is released: connecting is refused.
            with pytest.raises(OSError):
                urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/metrics", timeout=1
                )
        with pytest.raises(RuntimeError):
            _ = server.port

    def test_json_routes_served_alongside_metrics(self):
        registry = MetricsRegistry()
        registry.counter("hits_total").inc(3)
        server = MetricsServer(
            registry, port=0,
            json_routes={"/tenants": lambda: {"tenants": ["a", "b"]}},
        )
        try:
            base = f"http://127.0.0.1:{server.port}"
            with urllib.request.urlopen(
                base + "/tenants", timeout=5
            ) as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"] == "application/json"
                payload = json.loads(resp.read().decode("utf-8"))
            assert payload == {"tenants": ["a", "b"]}
            with urllib.request.urlopen(
                base + "/metrics", timeout=5
            ) as resp:
                assert "hits_total 3" in resp.read().decode("utf-8")
        finally:
            server.close()
