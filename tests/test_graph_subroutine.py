"""Tests for subroutine construction (paper §4.1, Algorithm 2 +
UpdateSubroutine, Figure 5)."""

from repro.extraction.intelkey import IntelMessage
from repro.graph.subroutine import (
    Subroutine,
    SubroutineModel,
    assign_instances,
)


def msg(key_id, identifiers=None, t=0.0):
    message = IntelMessage(
        key_id=key_id, timestamp=t, session_id="s", message=key_id
    )
    if identifiers:
        message.identifiers = {
            k: list(v) for k, v in identifiers.items()
        }
    return message


class TestAssignInstances:
    def test_no_identifier_goes_to_none_instance(self):
        # Algorithm 2 line 7-8: identifier-less messages share the NONE
        # sequence.
        instances = assign_instances(
            [msg("A"), msg("B", {"T": ["1"]}), msg("C")]
        )
        none_instance = instances[0]
        assert none_instance.values == frozenset()
        assert none_instance.key_sequence == ["A", "C"]

    def test_subset_joins_existing_instance(self):
        # Algorithm 2 line 9-12: subset/superset identifier sets merge.
        instances = assign_instances([
            msg("A", {"T": ["1"], "S": ["x"]}),
            msg("B", {"T": ["1"]}),
        ])
        assert len(instances) == 1
        assert instances[0].key_sequence == ["A", "B"]

    def test_superset_extends_values(self):
        instances = assign_instances([
            msg("A", {"T": ["1"]}),
            msg("B", {"T": ["1"], "S": ["x"]}),
        ])
        assert len(instances) == 1
        assert instances[0].values == {"1", "x"}

    def test_disjoint_values_new_instance(self):
        # Algorithm 2 line 14.
        instances = assign_instances([
            msg("A", {"T": ["1"]}),
            msg("A", {"T": ["2"]}),
        ])
        assert len(instances) == 2

    def test_signature_is_sorted_types(self):
        instances = assign_instances([
            msg("A", {"T": ["1"], "F": ["9"]}),
        ])
        assert instances[0].signature == ("F", "T")


class TestFigure5:
    """The paper's Figure 5 UpdateSubroutine walk-through."""

    def test_before_relation_breaks_on_interchange(self):
        sub = Subroutine(signature=("ID_1", "ID_2"))
        # Session 1: two sequences, same order A B C D.
        sub.update(["A", "B", "C", "D"])
        sub.update(["A", "B", "C", "D"])
        assert sub.relation("B", "C") == "BEFORE"
        assert sub.critical_keys == {"A", "B", "C", "D"}
        # Session 2, Seq3: B and C interchanged -> parallel.
        sub.update(["A", "C", "B", "D"])
        assert sub.relation("B", "C") == "PARALLEL"
        assert sub.relation("A", "B") == "BEFORE"
        # Seq4: no D -> D loses its critical mark.
        sub.update(["A", "B", "C"])
        assert "D" not in sub.critical_keys
        assert {"A", "B", "C"} <= sub.critical_keys

    def test_ordered_keys_respects_before(self):
        sub = Subroutine(signature=())
        sub.update(["A", "B", "C"])
        assert sub.ordered_keys() == ["A", "B", "C"]

    def test_new_key_mid_training_not_critical(self):
        sub = Subroutine(signature=())
        sub.update(["A", "B"])
        sub.update(["A", "B", "E"])
        assert "E" not in sub.critical_keys
        assert "A" in sub.critical_keys


class TestCheckInstance:
    def make_trained(self):
        sub = Subroutine(signature=("T",))
        sub.update(["A", "B", "C"])
        sub.update(["A", "B", "C"])
        return sub

    def test_clean_instance_passes(self):
        sub = self.make_trained()
        assert sub.check_instance(["A", "B", "C"]) == []

    def test_missing_critical_key_reported(self):
        sub = self.make_trained()
        problems = sub.check_instance(["A", "B"])
        assert any("missing critical" in p for p in problems)

    def test_order_violation_reported(self):
        sub = self.make_trained()
        problems = sub.check_instance(["B", "A", "C"])
        assert any("order violation" in p for p in problems)

    def test_unexpected_key_reported(self):
        sub = self.make_trained()
        problems = sub.check_instance(["A", "B", "C", "Z"])
        assert any("unexpected key" in p for p in problems)

    def test_incomplete_session_skips_missing_check(self):
        sub = self.make_trained()
        assert sub.check_instance(["A"], complete=False) == []


class TestSubroutineModel:
    def test_signature_partitioning(self):
        model = SubroutineModel()
        model.train_session([
            msg("A", {"T": ["1"]}),
            msg("B", {"T": ["1"]}),
            msg("C"),
        ])
        assert ("T",) in model.subroutines
        assert () in model.subroutines

    def test_best_match_exact(self):
        model = SubroutineModel()
        model.train_session([msg("A", {"T": ["1"]})])
        assert model.best_match(("T",)) is model.subroutines[("T",)]

    def test_best_match_subset(self):
        model = SubroutineModel()
        model.train_session([
            msg("A", {"T": ["1"], "S": ["s1"]}),
        ])
        # An instance that only accumulated T so far matches the (S, T)
        # subroutine.
        assert model.best_match(("T",)) is model.subroutines[("S", "T")]

    def test_best_match_none_for_foreign(self):
        model = SubroutineModel()
        model.train_session([msg("A", {"T": ["1"]})])
        assert model.best_match(("X",)) is None

    def test_stats(self):
        model = SubroutineModel()
        model.train_session(
            [msg("A", {"T": ["1"]}), msg("B", {"T": ["1"]})]
        )
        stats = model.stats()
        assert stats["max"] == 2
        assert stats["count"] == 1
