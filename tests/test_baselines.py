"""Tests for the DeepLog / LogCluster / Stitch baselines."""

import pytest

from repro.baselines import (
    DeepLogDetector,
    LogClusterDetector,
    StitchAnalyzer,
)
from repro.extraction.intelkey import IntelMessage
from repro.parsing.records import LogRecord, Session


def make_session(sid, messages, t0=0.0):
    session = Session(session_id=sid)
    for i, message in enumerate(messages):
        session.append(LogRecord(
            timestamp=t0 + i, level="INFO", source="X", message=message,
        ))
    return session


REGULAR = [
    "service started on port 8020",
    "request accepted from client",
    "request processed in 5 ms",
    "service stopped cleanly",
]


class TestDeepLog:
    def make_trained(self, n=20):
        detector = DeepLogDetector(window=2, top_g=3)
        detector.train(
            [make_session(f"s{i}", REGULAR, t0=i * 10) for i in range(n)]
        )
        return detector

    def test_regular_sequence_passes(self):
        detector = self.make_trained()
        report = detector.detect_session(make_session("t", REGULAR))
        assert not report.anomalous

    def test_foreign_key_flagged(self):
        detector = self.make_trained()
        report = detector.detect_session(make_session("t", [
            REGULAR[0],
            "kernel panic unexpected meltdown now",
            *REGULAR[1:],
        ]))
        assert report.anomalous
        assert any(key == "<unk>" for _, key, _ in report.misses)

    def test_truncated_tail_not_flagged_without_end_marker(self):
        # DeepLog's rule only fires on observed keys outside top-g; it
        # cannot see a missing suffix (one of its blind spots).
        detector = self.make_trained()
        report = detector.detect_session(make_session("t", REGULAR[:2]))
        assert not report.anomalous

    def test_shuffled_order_flagged_with_narrow_g(self):
        detector = DeepLogDetector(window=2, top_g=1)
        detector.train(
            [make_session(f"s{i}", REGULAR) for i in range(20)]
        )
        shuffled = [REGULAR[0], REGULAR[2], REGULAR[1], REGULAR[3]]
        report = detector.detect_session(make_session("t", shuffled))
        assert report.anomalous

    def test_predict_backoff(self):
        detector = self.make_trained()
        # Unknown context backs off to shorter history.
        predictions = detector.predict(["<nonexistent>"])
        assert predictions == ()

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            DeepLogDetector(window=0)


class TestLogCluster:
    def make_trained(self):
        detector = LogClusterDetector(similarity_threshold=0.6)
        sessions = [
            make_session(f"a{i}", REGULAR) for i in range(10)
        ] + [
            make_session(f"b{i}", REGULAR[:2] + REGULAR[:2])
            for i in range(10)
        ]
        detector.train(sessions)
        return detector

    def test_clusters_formed(self):
        detector = self.make_trained()
        assert detector.n_clusters >= 1

    def test_known_session_not_reported(self):
        detector = self.make_trained()
        report = detector.detect_session(make_session("t", REGULAR))
        assert not report.reported

    def test_novel_session_reported(self):
        detector = self.make_trained()
        report = detector.detect_session(make_session("t", [
            "disk controller exploded catastrophically",
            "all bits lost forever",
        ] * 3))
        assert report.reported
        assert report.best_similarity < 0.6

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            LogClusterDetector(similarity_threshold=0.0)


def intel_msg(identifiers, t=0.0, localities=None):
    message = IntelMessage(
        key_id="K", timestamp=t, session_id="s", message="m",
        identifiers={k: list(v) for k, v in identifiers.items()},
    )
    if localities:
        message.localities = {
            k: list(v) for k, v in localities.items()
        }
    return message


class TestStitch:
    def test_one_to_n_hierarchy(self):
        # One stage runs many TIDs (Figure 9's STAGE -> TID).
        analyzer = StitchAnalyzer()
        for tid in range(4):
            analyzer.consume(intel_msg(
                {"STAGE": ["0"], "TID": [str(tid)]}, t=float(tid)
            ))
        graph = analyzer.build()
        assert graph.relation("STAGE", "TID") == "1:n"
        assert graph.children("STAGE") == ["TID"]

    def test_one_to_one(self):
        analyzer = StitchAnalyzer()
        for i in range(3):
            analyzer.consume(intel_msg(
                {"HOST": [f"h{i}"], "IP": [f"10.0.0.{i}"]}
            ))
        graph = analyzer.build()
        assert graph.relation("HOST", "IP") == "1:1"
        assert ("HOST", "IP") in graph.merged_aliases()

    def test_m_to_n(self):
        analyzer = StitchAnalyzer()
        analyzer.consume(intel_msg({"A": ["1"], "B": ["x"]}))
        analyzer.consume(intel_msg({"A": ["1"], "B": ["y"]}))
        analyzer.consume(intel_msg({"A": ["2"], "B": ["x"]}))
        graph = analyzer.build()
        assert graph.relation("A", "B") == "m:n"

    def test_empty_relation(self):
        analyzer = StitchAnalyzer()
        analyzer.consume(intel_msg({"A": ["1"]}))
        analyzer.consume(intel_msg({"B": ["x"]}))
        graph = analyzer.build()
        assert graph.relation("A", "B") == "empty"
        assert set(graph.isolated()) == {"A", "B"}

    def test_localities_participate(self):
        # Figure 9 includes HOST/IP ADDR locality identifiers.
        analyzer = StitchAnalyzer()
        analyzer.consume(intel_msg(
            {"EXECUTOR": ["1"]}, localities={"host": ["h1"]}
        ))
        graph = analyzer.build()
        assert "HOST" in graph.types

    def test_lifespans_recorded(self):
        analyzer = StitchAnalyzer()
        analyzer.consume(intel_msg({"TID": ["7"]}, t=1.0))
        analyzer.consume(intel_msg({"TID": ["7"]}, t=9.0))
        graph = analyzer.build()
        assert graph.lifespans["TID"]["7"] == (1.0, 9.0)

    def test_render_contains_chain(self):
        analyzer = StitchAnalyzer()
        for tid in range(3):
            analyzer.consume(intel_msg(
                {"STAGE": ["0"], "TID": [str(tid)]}
            ))
        analyzer.consume(intel_msg({"BROADCAST": ["b0"]}))
        text = analyzer.build().render()
        assert "{STAGE} -[1:n]-> {TID}" in text
        assert "{BROADCAST}" in text
