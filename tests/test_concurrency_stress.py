"""Threaded stress tests for the shared runtime surfaces.

The static gate (``tests/test_concurrency.py::TestRepoGate``) proves
the analyzer finds nothing to flag; these tests prove the fixed code
actually behaves under contention: eight threads hammer the metrics
registry, the span recorder, the quarantines, and a live
``StreamRuntime``'s stats view, and every total must come out exactly
conserved — a torn read or lost update fails deterministically on the
final count, not probabilistically on a sleep.

Regression anchors for the races fixed in this change:

* ``Histogram._configure`` vs ``observe`` (atomic bounds/counts swap);
* quarantine ``put``/``snapshot`` (lock-guarded counts);
* ``CircuitBreaker.degraded_seconds`` (stale-read TOCTOU on
  ``_unhealthy_since``).
"""

from __future__ import annotations

import json
import math
import threading

import pytest

from repro.obs import MetricsRegistry, TraceRecorder, Tracer
from repro.simulators import WorkloadGenerator
from repro.stream import (
    CircuitBreaker,
    IterableSource,
    JsonLinesQuarantine,
    ListQuarantine,
    ListSink,
    StreamRuntime,
)

THREADS = 8
N = 400


def hammer(fn, threads=THREADS):
    """Run ``fn(i)`` on ``threads`` threads, released together.

    Collects exceptions instead of dying in the worker so a failure
    shows up as an assertion with the traceback, not a hung test.
    """
    barrier = threading.Barrier(threads)
    errors: list[BaseException] = []

    def runner(i: int) -> None:
        try:
            barrier.wait()
            fn(i)
        except BaseException as exc:  # noqa: PY002 - re-raised below
            errors.append(exc)

    workers = [
        threading.Thread(target=runner, args=(i,)) for i in range(threads)
    ]
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    assert not errors, errors


class TestMetricsRegistry:
    def test_counter_increments_conserved(self):
        registry = MetricsRegistry()
        counter = registry.counter("stress_total", "")
        hammer(lambda i: [counter.inc() for _ in range(N)])
        assert counter.value == THREADS * N

    def test_labeled_counter_concurrent_child_creation(self):
        # labels() creates children on demand; four shards churned by
        # eight threads exercises creation racing with increments.
        registry = MetricsRegistry()
        counter = registry.counter("stress_shards", "")

        def work(i: int) -> None:
            child = counter.labels(shard=str(i % 4))
            for _ in range(N):
                child.inc()

        hammer(work)
        totals = {
            labels["shard"]: value for labels, value in counter.samples()
        }
        assert totals == {str(s): 2 * N for s in range(4)}

    def test_histogram_totals_conserved(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "stress_lat", "", buckets=[1.0, 2.0, 4.0, 8.0]
        )
        hammer(lambda i: [hist.observe(float(k % 10)) for k in range(N)])
        assert hist.count == THREADS * N
        per_thread = sum(k % 10 for k in range(N))
        assert hist.sum == pytest.approx(THREADS * per_thread)
        # Cumulative buckets end at the exact total: no lost updates.
        assert hist.bucket_counts()[-1] == (math.inf, THREADS * N)

    def test_configure_racing_observe_does_not_tear(self):
        # Regression: _configure used to swap _bounds and _counts
        # without the lock, so a concurrent observe() could index the
        # new bounds against the old counts list (IndexError / lost
        # update).  Eight observers run against repeated reconfigures;
        # the invariant is simply "no exception, shapes consistent".
        registry = MetricsRegistry()
        hist = registry.histogram("stress_cfg", "", buckets=[1.0, 2.0])
        stop = threading.Event()

        def reconfigure() -> None:
            widths = ([1.0, 2.0], [0.5, 1.0, 2.0, 4.0, 8.0, 16.0])
            k = 0
            while not stop.is_set():
                hist._configure(widths[k % 2])
                k += 1

        flipper = threading.Thread(target=reconfigure)
        flipper.start()
        try:
            hammer(lambda i: [hist.observe(float(k % 20))
                              for k in range(N)])
        finally:
            stop.set()
            flipper.join()
        assert len(hist._counts) == len(hist._bounds) + 1
        # Post-race sanity: the histogram still works.
        hist.observe(1.5)
        assert hist.count >= 1


class TestTracerNesting:
    def test_nested_spans_stay_thread_local(self):
        recorder = TraceRecorder(capacity=THREADS * N * 3)
        tracer = Tracer(recorder)

        def work(i: int) -> None:
            for _ in range(N):
                with tracer.span("outer"):
                    with tracer.span("mid"):
                        with tracer.span("inner"):
                            pass

        hammer(work)
        records = recorder.records()
        assert recorder.total == THREADS * N * 3
        assert recorder.dropped == 0
        by_name = {}
        for rec in records:
            by_name.setdefault(rec.name, []).append(rec)
        # Parent/depth must reflect each thread's own stack even though
        # all eight threads interleave into one recorder.
        assert all(r.parent is None and r.depth == 0
                   for r in by_name["outer"])
        assert all(r.parent == "outer" and r.depth == 1
                   for r in by_name["mid"])
        assert all(r.parent == "mid" and r.depth == 2
                   for r in by_name["inner"])
        assert {len(v) for v in by_name.values()} == {THREADS * N}


class TestQuarantines:
    def test_list_quarantine_counts_conserved(self):
        quarantine = ListQuarantine()

        def work(i: int) -> None:
            reason = f"reason_{i % 4}"
            for k in range(N):
                quarantine.put(reason, f"line {i}/{k}", source=f"t{i}")
                # Interleave reads with writes: snapshot() must never
                # raise or see a half-updated dict.
                snap = quarantine.snapshot()
                assert all(v >= 0 for v in snap.values())

        hammer(work)
        assert quarantine.snapshot() == {
            f"reason_{s}": 2 * N for s in range(4)
        }
        assert len(quarantine.entries) == THREADS * N

    def test_jsonl_quarantine_file_intact(self, tmp_path):
        path = tmp_path / "dead_letters.jsonl"
        quarantine = JsonLinesQuarantine(path)

        def work(i: int) -> None:
            for k in range(N):
                quarantine.put(f"reason_{i % 2}", f"line {i}/{k}")

        hammer(work)
        quarantine.close()
        assert quarantine.snapshot() == {
            "reason_0": THREADS * N // 2, "reason_1": THREADS * N // 2,
        }
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == THREADS * N
        # Every line is individually parseable: concurrent appends may
        # interleave lines but never split one.
        assert all(json.loads(line)["reason"].startswith("reason_")
                   for line in lines)


class TestStreamRuntimeStats:
    def test_stats_view_safe_during_live_run(self, spark_model):
        gen = WorkloadGenerator(seed=77)
        jobs = gen.run_batch("spark", 2)
        records = sorted(
            (r for job in jobs for r in job.records),
            key=lambda r: r.timestamp,
        )
        runtime = StreamRuntime(
            spark_model, IterableSource(records), sink=ListSink()
        )
        done = threading.Event()
        errors: list[BaseException] = []

        def read_stats() -> None:
            try:
                while not done.is_set():
                    stats = runtime.stats
                    payload = stats.to_dict()
                    assert payload["records"] >= 0
                    assert stats.degraded_s >= 0.0
                    assert all(v >= 0
                               for v in stats.quarantined.values())
            except BaseException as exc:
                errors.append(exc)

        readers = [
            threading.Thread(target=read_stats) for _ in range(THREADS)
        ]
        for r in readers:
            r.start()
        try:
            final = runtime.run(once=True)
        finally:
            done.set()
            for r in readers:
                r.join()
        assert not errors, errors
        assert final.records == len(records)


class TestCircuitBreakerClockRace:
    def test_degraded_seconds_survives_concurrent_reset(self):
        # Regression: degraded_seconds() read _unhealthy_since twice —
        # None-check, then subtraction — so a record_success() between
        # the two raised TypeError in the stats thread.  The adversarial
        # clock simulates that exact interleaving deterministically by
        # clearing the field *during* the read.
        state: dict = {"breaker": None, "sabotage": False}

        def clock() -> float:
            breaker = state["breaker"]
            if breaker is not None and state["sabotage"]:
                breaker._unhealthy_since = None
            return 10.0

        breaker = CircuitBreaker(degraded_after=1, clock=clock)
        state["breaker"] = breaker
        breaker.record_failure()
        assert breaker.state != "healthy"
        state["sabotage"] = True
        # Old code: TypeError (float - None).  Fixed code: the single
        # snapshot read makes this a plain number either way.
        assert breaker.degraded_seconds() >= 0.0

    def test_degraded_seconds_under_contention(self):
        ticks = {"t": 0.0}

        def clock() -> float:
            ticks["t"] += 0.001
            return ticks["t"]

        breaker = CircuitBreaker(degraded_after=1, clock=clock)

        def work(i: int) -> None:
            for k in range(N):
                if (i + k) % 3:
                    breaker.record_failure()
                else:
                    breaker.record_success()
                assert breaker.degraded_seconds() >= 0.0

        hammer(work)
        assert breaker.total_failures > 0
