"""Tests for the Intel Message store and its GroupBy operators (§6.4)."""

import io

from repro.extraction.intelkey import IntelMessage
from repro.query import MessageStore


def msg(key="K1", sid="s1", t=0.0, ids=None, locs=None, vals=None,
        entities=()):
    message = IntelMessage(
        key_id=key, timestamp=t, session_id=sid, message="m",
        entities=tuple(entities),
    )
    if ids:
        message.identifiers = {k: list(v) for k, v in ids.items()}
    if locs:
        message.localities = {k: list(v) for k, v in locs.items()}
    if vals:
        message.values = {k: list(v) for k, v in vals.items()}
    return message


def fetcher_failure_store():
    """The case study 1 scenario: 11 fetchers failing against one host."""
    store = MessageStore()
    for fid in range(1, 12):
        store.add(msg(
            key="Kfail", sid=f"reduce{fid % 4}", t=float(fid),
            ids={"FETCHER": [str(fid)]},
            locs={"address": ["hostA:13562"]},
            entities=("fetcher",),
        ))
    store.add(msg(
        key="Kok", sid="reduce0", t=99.0,
        ids={"FETCHER": ["12"]},
        locs={"address": ["hostB:13562"]},
        entities=("fetcher",),
    ))
    return store


class TestFilters:
    def test_with_key(self):
        store = fetcher_failure_store()
        assert len(store.with_key("Kfail")) == 11

    def test_with_entity(self):
        store = fetcher_failure_store()
        assert len(store.with_entity("fetcher")) == 12

    def test_in_session(self):
        store = fetcher_failure_store()
        assert len(store.in_session("reduce0")) >= 1

    def test_between(self):
        store = fetcher_failure_store()
        assert len(store.between(1.0, 3.0)) == 3

    def test_with_identifier_type(self):
        store = fetcher_failure_store()
        assert len(store.with_identifier_type("FETCHER")) == 12


class TestCaseStudy1GroupBy:
    """The paper's diagnosis chain: GroupBy identifier, then locality."""

    def test_group_by_identifier_yields_11_groups(self):
        store = fetcher_failure_store().with_key("Kfail")
        by_fetcher = store.group_by_identifier("FETCHER")
        assert len(by_fetcher) == 11

    def test_group_by_locality_isolates_one_host(self):
        store = fetcher_failure_store().with_key("Kfail")
        by_host = store.group_by_locality("address")
        assert list(by_host) == ["hostA:13562"]
        assert len(by_host["hostA:13562"]) == 11

    def test_group_by_session(self):
        store = fetcher_failure_store()
        by_session = store.group_by_session()
        assert sum(len(s) for s in by_session.values()) == 12


class TestAggregates:
    def test_value_series_sorted(self):
        store = MessageStore([
            msg(t=2.0, vals={"bytes": [20.0]}),
            msg(t=1.0, vals={"bytes": [10.0]}),
        ])
        assert store.value_series("bytes") == [(1.0, 10.0), (2.0, 20.0)]

    def test_identifier_values(self):
        store = fetcher_failure_store()
        values = store.identifier_values("FETCHER")
        assert len(values) == 12


class TestJsonIO:
    def test_round_trip(self):
        store = fetcher_failure_store()
        text = store.to_json()
        restored = MessageStore.from_json(text)
        assert len(restored) == len(store)
        assert restored.all()[0].identifiers == store.all()[0].identifiers

    def test_dump_load(self):
        store = fetcher_failure_store()
        buffer = io.StringIO()
        store.dump(buffer)
        buffer.seek(0)
        assert len(MessageStore.load(buffer)) == len(store)


class TestInvertedIndexes:
    """Point lookups are index-backed; mutation must invalidate them."""

    def test_index_invalidated_on_add(self):
        store = fetcher_failure_store()
        assert len(store.with_key("Kfail")) == 11  # builds the indexes
        store.add(msg(key="Kfail", sid="reduce9", t=100.0,
                      entities=("fetcher",)))
        assert len(store.with_key("Kfail")) == 12
        assert len(store.with_entity("fetcher")) == 13
        assert len(store.in_session("reduce9")) == 1

    def test_index_invalidated_on_extend(self):
        store = fetcher_failure_store()
        assert len(store.in_session("new")) == 0
        store.extend([msg(sid="new"), msg(sid="new")])
        assert len(store.in_session("new")) == 2

    def test_indexed_lookups_match_linear_filter(self):
        store = fetcher_failure_store()
        for key in ("Kfail", "Kok", "missing"):
            assert store.with_key(key).all() == store.filter(
                lambda m, k=key: m.key_id == k
            ).all()
        assert store.with_entity("fetcher").all() == store.filter(
            lambda m: "fetcher" in m.entities
        ).all()
        assert store.in_session("reduce0").all() == store.filter(
            lambda m: m.session_id == "reduce0"
        ).all()

    def test_chained_lookups_on_derived_stores(self):
        store = fetcher_failure_store()
        derived = store.with_entity("fetcher").in_session("reduce0")
        assert all(m.session_id == "reduce0" for m in derived)
        assert len(derived) == len(
            store.filter(lambda m: m.session_id == "reduce0"
                         and "fetcher" in m.entities)
        )
