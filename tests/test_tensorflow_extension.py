"""Tests for the §9 future-work extension: distributed TensorFlow.

The paper closes with "we plan to extend IntelLog to distributed machine
learning systems (e.g., TensorFlow)"; this module verifies that the same
untouched pipeline — Spell, Intel Keys, HW-graph, detection — works on
parameter-server-style training logs.
"""

import pytest

from repro import IntelLog
from repro.detection.report import AnomalyKind
from repro.simulators import (
    FaultSpec,
    TensorFlowConfig,
    TensorFlowSimulator,
    sessions_of,
)


@pytest.fixture(scope="module")
def tf_model():
    simulator = TensorFlowSimulator(seed=17)
    jobs = [
        simulator.run_job(
            "mnist",
            TensorFlowConfig(steps=10 + 10 * (i % 3)),
            base_time=i * 10_000.0,
        )
        for i in range(6)
    ]
    intellog = IntelLog()
    intellog.train(sessions_of(jobs))
    return intellog, simulator


class TestTraining:
    def test_step_loop_learned_as_subroutine(self, tf_model):
        intellog, _ = tf_model
        graph = intellog.hw_graph()
        step_group = graph.groups.get("step")
        assert step_group is not None
        # The per-step key repeats many times per session -> critical.
        assert step_group.critical

    def test_variable_session_lengths(self, tf_model):
        # Step count drives session length, the §2.2 analytics property.
        _, simulator = tf_model
        short = simulator.run_job(
            "mnist", TensorFlowConfig(steps=5), base_time=8e5
        )
        long = simulator.run_job(
            "mnist", TensorFlowConfig(steps=60), base_time=9e5
        )
        shortest = min(len(s) for s in short.sessions)
        longest = max(len(s) for s in long.sessions)
        assert longest > shortest * 3

    def test_loss_values_extracted(self, tf_model):
        intellog, simulator = tf_model
        job = simulator.run_job(
            "mnist", TensorFlowConfig(steps=8), base_time=10e5
        )
        messages = intellog.intel_messages(job.sessions)
        losses = [
            value
            for message in messages
            for value in message.values.get("loss", ())
        ]
        assert losses
        assert all(0.0 < loss < 4.0 for loss in losses)


class TestDetection:
    def test_clean_training_job_passes(self, tf_model):
        intellog, simulator = tf_model
        job = simulator.run_job(
            "mnist", TensorFlowConfig(steps=25), base_time=11e5
        )
        report = intellog.detect_job(job.sessions, job.app_id)
        assert not report.anomalous

    def test_network_fault_detected(self, tf_model):
        intellog, simulator = tf_model
        job = simulator.run_job(
            "mnist",
            TensorFlowConfig(steps=20),
            fault=FaultSpec("network", at_fraction=0.5),
            base_time=12e5,
        )
        report = intellog.detect_job(job.sessions, job.app_id)
        assert report.anomalous
        unexpected = [
            anomaly
            for session in report.sessions
            for anomaly in session.by_kind(
                AnomalyKind.UNEXPECTED_MESSAGE
            )
        ]
        assert any(
            "Lost connection" in (a.message or "") for a in unexpected
        )

    def test_killed_worker_detected(self, tf_model):
        intellog, simulator = tf_model
        job = simulator.run_job(
            "mnist",
            TensorFlowConfig(steps=30),
            fault=FaultSpec("sigkill", at_fraction=0.3),
            base_time=13e5,
        )
        report = intellog.detect_job(job.sessions, job.app_id)
        # The truncated worker misses its session-close critical key.
        assert report.anomalous
