"""Tests for the ``intellog`` command-line interface."""

import json

import pytest

from repro.cli import main
from repro.simulators import (
    FaultSpec,
    MapReduceConfig,
    MapReduceSimulator,
)


def render_hadoop_lines(job):
    """Serialize a simulated job's records in the hadoop log4j layout."""
    import datetime

    lines = []
    for session in job.sessions:
        for record in session.records:
            stamp = datetime.datetime.utcfromtimestamp(
                record.timestamp + 1_500_000_000
            )
            text = stamp.strftime("%Y-%m-%d %H:%M:%S")
            ms = int((record.timestamp % 1) * 1000)
            lines.append(
                f"{text},{ms:03d} {record.level} "
                f"[{session.session_id}] "
                f"org.apache.hadoop.{record.source}: {record.message}"
            )
    return lines


@pytest.fixture()
def log_files(tmp_path):
    sim = MapReduceSimulator(seed=9)
    train_lines = []
    for i in range(4):
        job = sim.run_job(
            "wordcount", MapReduceConfig(input_gb=2.0),
            base_time=i * 3600.0,
        )
        train_lines.extend(render_hadoop_lines(job))
    train_file = tmp_path / "train.log"
    train_file.write_text("\n".join(train_lines))

    faulty = sim.run_job(
        "wordcount", MapReduceConfig(input_gb=2.0),
        fault=FaultSpec("network", at_fraction=0.4),
        base_time=90_000.0,
    )
    detect_file = tmp_path / "detect.log"
    detect_file.write_text("\n".join(render_hadoop_lines(faulty)))
    return train_file, detect_file, tmp_path


class TestCli:
    def test_train_writes_model(self, log_files, capsys):
        train_file, _, tmp_path = log_files
        model_path = tmp_path / "model.json"
        code = main([
            "train", str(train_file),
            "--model", str(model_path),
            "--formatter", "hadoop",
        ])
        assert code == 0
        model = json.loads(model_path.read_text())
        assert model["log_keys"]
        assert model["hw_graph"]["groups"]
        out = capsys.readouterr().out
        assert "entity groups" in out

    def test_detect_flags_faulty_log(self, log_files, capsys):
        train_file, detect_file, tmp_path = log_files
        model_path = tmp_path / "model.json"
        main(["train", str(train_file), "--model", str(model_path),
              "--formatter", "hadoop"])
        capsys.readouterr()  # drop training output
        code = main([
            "detect", str(detect_file), "--model", str(model_path),
        ])
        assert code == 1  # anomalous input -> non-zero exit
        payload = json.loads(capsys.readouterr().out)
        assert payload["anomalous"] is True

    def test_inspect_renders_graph(self, log_files, capsys):
        train_file, _, tmp_path = log_files
        model_path = tmp_path / "model.json"
        main(["train", str(train_file), "--model", str(model_path),
              "--formatter", "hadoop"])
        code = main(["inspect", "--model", str(model_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "groups:" in out

    def test_inspect_json(self, log_files, capsys):
        train_file, _, tmp_path = log_files
        model_path = tmp_path / "model.json"
        main(["train", str(train_file), "--model", str(model_path),
              "--formatter", "hadoop"])
        capsys.readouterr()  # drop training output
        main(["inspect", "--model", str(model_path), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert "groups" in payload


class TestTrainParallelCli:
    def _canonical(self, path):
        from repro.query.store import ModelStore

        return ModelStore.load_path(path).digest()

    def test_workers_flag_produces_identical_model(self, log_files,
                                                   capsys):
        train_file, _, tmp_path = log_files
        serial_path = tmp_path / "serial.json"
        parallel_path = tmp_path / "parallel.json"
        assert main(["train", str(train_file),
                     "--model", str(serial_path),
                     "--formatter", "hadoop"]) == 0
        assert main(["train", str(train_file),
                     "--model", str(parallel_path),
                     "--formatter", "hadoop", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "parallel: 2 workers" in out
        assert self._canonical(serial_path) == self._canonical(
            parallel_path
        )

    def test_no_cache_flag_reported_and_model_unchanged(self, log_files,
                                                        capsys):
        train_file, _, tmp_path = log_files
        cached = tmp_path / "cached.json"
        uncached = tmp_path / "uncached.json"
        main(["train", str(train_file), "--model", str(cached),
              "--formatter", "hadoop", "--workers", "1"])
        main(["train", str(train_file), "--model", str(uncached),
              "--formatter", "hadoop", "--workers", "1", "--no-cache"])
        out = capsys.readouterr().out
        assert "0 hits" in out  # the --no-cache run never hits the memo
        assert self._canonical(cached) == self._canonical(uncached)

    @pytest.mark.parametrize("bad", ["0", "-3"])
    def test_rejects_non_positive_workers(self, log_files, bad):
        train_file, _, tmp_path = log_files
        with pytest.raises(SystemExit, match="positive integer"):
            main(["train", str(train_file),
                  "--model", str(tmp_path / "m.json"),
                  "--formatter", "hadoop", "--workers", bad])

    def test_parallel_model_round_trips_through_store(self, log_files,
                                                      capsys):
        """train --workers → save → load → detect works end to end."""
        train_file, detect_file, tmp_path = log_files
        model_path = tmp_path / "model.json"
        main(["train", str(train_file), "--model", str(model_path),
              "--formatter", "hadoop", "--workers", "2"])
        capsys.readouterr()
        code = main(["detect", str(detect_file),
                     "--model", str(model_path)])
        assert code == 1  # the faulty log is still flagged
        payload = json.loads(capsys.readouterr().out)
        assert payload["anomalous"] is True


class TestWatch:
    def _train(self, log_files):
        train_file, detect_file, tmp_path = log_files
        model_path = tmp_path / "model.json"
        main(["train", str(train_file), "--model", str(model_path),
              "--formatter", "hadoop"])
        return model_path, detect_file, tmp_path

    def test_watch_once_streams_per_container_reports(self, log_files,
                                                      capsys):
        model_path, detect_file, tmp_path = self._train(log_files)
        capsys.readouterr()  # drop training output
        code = main([
            "watch", "--model", str(model_path),
            "--follow", str(detect_file),
            "--formatter", "hadoop", "--once", "--no-checkpoint",
        ])
        out = capsys.readouterr().out
        reports = [json.loads(line) for line in out.splitlines()]
        assert reports
        # yarn_session_key attributes each report to its container.
        assert all(
            r["session_id"].startswith("container_") for r in reports
        )
        assert all("closed_reason" in r for r in reports)
        anomalous = any(r["anomalous"] for r in reports)
        assert code == (1 if anomalous else 0)

    def test_watch_writes_default_checkpoint(self, log_files, capsys):
        model_path, detect_file, tmp_path = self._train(log_files)
        capsys.readouterr()
        code = main([
            "watch", "--model", str(model_path),
            "--follow", str(detect_file),
            "--formatter", "hadoop", "--once",
        ])
        assert code in (0, 1)
        ckpt = tmp_path / "model.stream-ckpt.json"
        assert ckpt.exists()
        state = json.loads(ckpt.read_text())
        assert state["version"] == 2
        assert state["checksum"]
        assert "offset" in state["source_position"]

    def test_watch_jsonl_output(self, log_files, capsys):
        model_path, detect_file, tmp_path = self._train(log_files)
        out_path = tmp_path / "reports.jsonl"
        main([
            "watch", "--model", str(model_path),
            "--follow", str(detect_file),
            "--formatter", "hadoop", "--once", "--no-checkpoint",
            "--jsonl", str(out_path),
        ])
        lines = out_path.read_text().splitlines()
        assert lines
        assert all(json.loads(line)["session_id"] for line in lines)
        # every delivered report carries its exactly-once identity
        assert all(json.loads(line)["finalization_id"] for line in lines)

    def test_watch_quarantine_flag_collects_garbage(self, log_files,
                                                    capsys):
        model_path, detect_file, tmp_path = self._train(log_files)
        capsys.readouterr()
        garbled = tmp_path / "garbled.log"
        # Leading garbage has no preceding record to fold into, so it
        # must land in the dead-letter file as "unparseable".
        garbled.write_bytes(
            b"not a log line at all\n" + detect_file.read_bytes() + b"\n"
        )
        qpath = tmp_path / "quarantine.jsonl"
        code = main([
            "watch", "--model", str(model_path),
            "--follow", str(garbled),
            "--formatter", "hadoop", "--once", "--no-checkpoint",
            "--quarantine", str(qpath),
        ])
        assert code in (0, 1)
        entries = [json.loads(line)
                   for line in qpath.read_text().splitlines()]
        assert any(e["reason"] == "unparseable" for e in entries)


class TestMetricsFlags:
    def _train(self, log_files, *extra):
        train_file, detect_file, tmp_path = log_files
        model_path = tmp_path / "model.json"
        main(["train", str(train_file), "--model", str(model_path),
              "--formatter", "hadoop", *extra])
        return model_path, detect_file, tmp_path

    def test_train_metrics_out_snapshots_train_spans(self, log_files,
                                                     capsys):
        train_file, _, tmp_path = log_files
        model_path = tmp_path / "model.json"
        snap_path = tmp_path / "train-metrics.json"
        code = main([
            "train", str(train_file), "--model", str(model_path),
            "--formatter", "hadoop", "--metrics-out", str(snap_path),
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert f"METRICS written to {snap_path}" in err
        snapshot = json.loads(snap_path.read_text())
        assert snapshot["format"] == "repro-metrics-v1"
        spans = {
            sample["labels"].get("span")
            for sample in snapshot["metrics"]["trace_span_seconds"][
                "samples"
            ]
        }
        assert {"train.spell", "train.extract", "train.graph"} <= spans

    def test_detect_metrics_out_counts_every_record(self, log_files,
                                                    capsys):
        model_path, detect_file, tmp_path = self._train(log_files)
        snap_path = tmp_path / "detect-metrics.json"
        capsys.readouterr()
        main(["detect", str(detect_file), "--model", str(model_path),
              "--metrics-out", str(snap_path)])
        report = json.loads(capsys.readouterr().out)
        snapshot = json.loads(snap_path.read_text())
        metrics = snapshot["metrics"]
        records = sum(
            len(s["records"]) if isinstance(s.get("records"), list) else 0
            for s in report.get("sessions", [])
        )
        counted = metrics["detect_records_total"]["samples"][0]["value"]
        assert counted > 0
        assert metrics["detect_sessions_total"]["samples"][0]["value"] \
            == len(report["sessions"])
        hits = sum(
            s["value"]
            for s in metrics["spell_match_attempts_total"]["samples"]
        )
        assert hits >= counted  # match() also runs during extraction

    def test_watch_metrics_out_matches_runtime_stats(self, log_files,
                                                     capsys):
        model_path, detect_file, tmp_path = self._train(log_files)
        snap_path = tmp_path / "watch-metrics.json"
        # A trailing newline so the follower consumes the final line
        # (an unterminated line is a torn write it must withhold).
        detect_file.write_text(detect_file.read_text() + "\n")
        capsys.readouterr()
        code = main([
            "watch", "--model", str(model_path),
            "--follow", str(detect_file),
            "--formatter", "hadoop", "--once", "--no-checkpoint",
            "--metrics-out", str(snap_path),
        ])
        assert code in (0, 1)
        out = capsys.readouterr().out
        reports = [json.loads(line) for line in out.splitlines()]
        snapshot = json.loads(snap_path.read_text())
        metrics = snapshot["metrics"]

        def value(name):
            return metrics[name]["samples"][0]["value"]

        # The registry-backed counters must agree exactly with what the
        # runtime delivered (record-count parity with the tracker).
        n_lines = len(detect_file.read_text().splitlines())
        assert value("stream_records_total") == n_lines
        assert value("stream_reports_total") == len(reports)
        closed = sum(
            s["value"]
            for s in metrics["stream_closed_sessions_total"]["samples"]
        )
        assert closed == len(reports)

    def test_stats_renders_watch_snapshot(self, log_files, capsys):
        model_path, detect_file, tmp_path = self._train(log_files)
        snap_path = tmp_path / "watch-metrics.json"
        main([
            "watch", "--model", str(model_path),
            "--follow", str(detect_file),
            "--formatter", "hadoop", "--once", "--no-checkpoint",
            "--metrics-out", str(snap_path),
        ])
        capsys.readouterr()
        assert main(["stats", str(snap_path)]) == 0
        out = capsys.readouterr().out
        assert "stream_records_total (counter)" in out
        assert "spell_match_seconds (histogram)" in out
        assert "p50=" in out and "p99=" in out

    def test_stats_rejects_non_snapshot_file(self, tmp_path, capsys):
        bogus = tmp_path / "not-metrics.json"
        bogus.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(SystemExit):
            main(["stats", str(bogus)])

    def test_watch_metrics_port_serves_scrapes(self, log_files, capsys):
        import re
        import urllib.request

        model_path, detect_file, tmp_path = self._train(log_files)
        capsys.readouterr()

        # Intercept the server the CLI starts (it imports the factory
        # from repro.obs at call time) so we can scrape it while it is
        # alive — watch --once tears it down on exit otherwise.
        from repro import obs as obs_module

        scraped = {}
        real_start = obs_module.start_metrics_server

        def spy_start(registry, port, host="127.0.0.1"):
            server = real_start(registry, port, host)
            with urllib.request.urlopen(server.url, timeout=5) as resp:
                scraped["body"] = resp.read().decode("utf-8")
                scraped["ctype"] = resp.headers["Content-Type"]
            return server

        obs_module.start_metrics_server = spy_start
        try:
            code = main([
                "watch", "--model", str(model_path),
                "--follow", str(detect_file),
                "--formatter", "hadoop", "--once", "--no-checkpoint",
                "--metrics-port", "0",
            ])
        finally:
            obs_module.start_metrics_server = real_start
        assert code in (0, 1)
        err = capsys.readouterr().err
        assert re.search(r"METRICS serving http://127\.0\.0\.1:\d+", err)
        assert "text/plain" in scraped["ctype"]
        assert "# TYPE stream_records_total counter" in scraped["body"]
