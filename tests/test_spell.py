"""Tests for the Spell log-key extractor."""

import pytest

from repro.parsing.spell import (
    STAR,
    SpellParser,
    extract_parameters,
    lcs_length,
    lcs_merge,
    mask_message,
)


class TestLcs:
    def test_identical(self):
        assert lcs_length(["a", "b", "c"], ["a", "b", "c"]) == 3

    def test_disjoint(self):
        assert lcs_length(["a", "b"], ["c", "d"]) == 0

    def test_subsequence(self):
        assert lcs_length(["a", "x", "b", "y"], ["a", "b"]) == 2

    def test_empty(self):
        assert lcs_length([], ["a"]) == 0

    def test_order_matters(self):
        assert lcs_length(["a", "b"], ["b", "a"]) == 1


class TestLcsMerge:
    def test_single_difference_becomes_star(self):
        merged = lcs_merge(
            ["read", "2264", "bytes"], ["read", "99", "bytes"]
        )
        assert merged == ["read", STAR, "bytes"]

    def test_adjacent_gaps_collapse(self):
        merged = lcs_merge(["a", "x", "y", "b"], ["a", "z", "b"])
        assert merged == ["a", STAR, "b"]

    def test_existing_star_preserved(self):
        merged = lcs_merge(["read", STAR, "bytes"], ["read", "77", "bytes"])
        assert merged == ["read", STAR, "bytes"]

    def test_trailing_difference(self):
        merged = lcs_merge(["state", "NEW"], ["state", "DONE"])
        assert merged == ["state", STAR]


class TestMasking:
    def test_identifiers_masked(self):
        masked, raw = mask_message("Task attempt_01 done")
        assert masked == ["Task", STAR, "done"]
        assert raw == ["Task", "attempt_01", "done"]

    def test_numbers_masked(self):
        masked, _ = mask_message("read 2264 bytes")
        assert masked == ["read", STAR, "bytes"]

    def test_localities_masked(self):
        masked, _ = mask_message("host1:13562 freed")
        assert masked[0] == STAR

    def test_words_kept(self):
        masked, _ = mask_message("Starting flush of map output")
        assert STAR not in masked


class TestParser:
    def test_identical_messages_one_key(self):
        parser = SpellParser()
        parser.consume("Starting flush of map output")
        parser.consume("Starting flush of map output")
        assert len(parser) == 1
        assert parser.keys()[0].count == 2

    def test_variable_field_discovered(self):
        parser = SpellParser()
        parser.consume("Finished spill spill0")
        parser.consume("Finished spill spill1")
        keys = parser.keys()
        assert len(keys) == 1
        assert STAR in keys[0].tokens

    def test_figure3_metrics_system_key(self):
        # The paper's Figure 3 shows '* MapTask metrics system' as the
        # abstraction of start/started messages.
        parser = SpellParser()
        parser.consume("Starting MapTask metrics system")
        parser.consume("MapTask metrics system started")
        keys = parser.keys()
        assert len(keys) == 1
        assert "MapTask" in keys[0].tokens

    def test_different_templates_different_keys(self):
        parser = SpellParser()
        parser.consume("fetcher#1 about to shuffle output of map attempt_01")
        parser.consume("Deleting staging directory /tmp/staging")
        assert len(parser) == 2

    def test_sample_is_first_message(self):
        parser = SpellParser()
        first = "Finished spill spill0"
        parser.consume(first)
        parser.consume("Finished spill spill1")
        assert parser.keys()[0].sample == first

    def test_match_does_not_mutate(self):
        parser = SpellParser()
        parser.consume("Finished spill spill0")
        parser.consume("Finished spill spill1")
        n_before = len(parser)
        assert parser.match("Finished spill spill9") is not None
        assert parser.match("completely unrelated gibberish here") is None
        assert len(parser) == n_before

    def test_match_extracts_parameters(self):
        parser = SpellParser()
        parser.consume("read 2264 bytes from map-output for attempt_01")
        parser.consume("read 99 bytes from map-output for attempt_02")
        result = parser.match(
            "read 512 bytes from map-output for attempt_07"
        )
        assert result is not None
        assert "512" in result.parameters
        assert "attempt_07" in result.parameters

    def test_job_transition_generalizes_across_jobs(self):
        # Regression: one job's transitions must not freeze the job id
        # into the template.
        parser = SpellParser()
        for job in ("job_001_0001", "job_002_0002"):
            for state in ("NEW to INITED", "INITED to SETUP",
                          "SETUP to RUNNING"):
                parser.consume(f"job {job} Job Transitioned from {state}")
        result = parser.match(
            "job job_999_0099 Job Transitioned from NEW to INITED"
        )
        assert result is not None

    def test_invalid_tau_rejected(self):
        with pytest.raises(ValueError):
            SpellParser(tau=1.0)

    def test_line_ids_recorded(self):
        parser = SpellParser()
        parser.consume("alpha beta gamma")
        parser.consume("alpha beta gamma")
        assert parser.keys()[0].line_ids == [1, 2]


class TestExtractParameters:
    def test_exact_constant_match(self):
        assert extract_parameters(["a", "b"], ["a", "b"]) == []

    def test_single_star(self):
        params = extract_parameters(["a", STAR, "c"], ["a", "X", "c"])
        assert params == ["X"]

    def test_star_spans_multiple_tokens(self):
        params = extract_parameters(["a", STAR, "c"], ["a", "X", "Y", "c"])
        assert params == ["X Y"]

    def test_trailing_star(self):
        params = extract_parameters(["a", STAR], ["a", "X", "Y"])
        assert params == ["X Y"]

    def test_mismatch_returns_none(self):
        assert extract_parameters(["a", "b"], ["a", "c"]) is None

    def test_missing_anchor_returns_none(self):
        assert extract_parameters(["a", STAR, "c"], ["a", "X"]) is None

    def test_extra_trailing_tokens_rejected(self):
        assert extract_parameters(["a", "b"], ["a", "b", "c"]) is None

    def test_empty_star_capture(self):
        params = extract_parameters(["a", STAR, "c"], ["a", "c"])
        assert params == [""]


class TestMisalignedMatch:
    """Regression: parameter-extraction fallback must be observable.

    ``match`` used to return ``parameters=[]`` indistinguishably from a
    genuinely parameter-free message when the greedy aligner failed on a
    drifted template.  The result now carries ``misaligned=True``, bumps
    ``spell_param_misaligned_total`` and warns once per key.
    """

    def _parser(self):
        # A constant-only template; a probe sharing 3 of its 4 constants
        # clears the LCS threshold (3 >= 4/1.7) but cannot be aligned, so
        # extract_parameters returns None.
        parser = SpellParser()
        parser.consume("alpha beta gamma delta")
        return parser

    def test_misaligned_flag_and_empty_parameters(self):
        result = self._parser().match("alpha beta gamma omega")
        assert result is not None
        assert result.misaligned
        assert result.parameters == []

    def test_aligned_match_is_not_flagged(self):
        result = self._parser().match("alpha beta gamma delta")
        assert result is not None
        assert not result.misaligned

    def test_counter_counts_every_event(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        parser = self._parser().instrument(registry)
        parser.match("alpha beta gamma omega")
        parser.match("alpha beta gamma sigma")
        key_id = parser.keys()[0].key_id
        counter = registry.get("spell_param_misaligned_total")
        assert counter.labels(key=key_id).value == 2.0

    def test_warns_once_per_key(self, caplog):
        import logging

        parser = self._parser()
        with caplog.at_level(logging.WARNING, logger="repro.parsing.spell"):
            parser.match("alpha beta gamma omega")
            parser.match("alpha beta gamma sigma")
        warnings = [
            r for r in caplog.records
            if "parameter extraction misaligned" in r.message
        ]
        assert len(warnings) == 1
