"""TemplateIndex unit + property tests.

Two invariants carry the whole rewrite:

1. **Lookup invariant** — ``lookup(seq)`` returns exactly the key
   indices whose template greedily aligns with ``seq`` (per
   ``extract_parameters``) and has at least one constant token.
2. **Maintenance invariant** — incrementally maintained structures
   (``insert``/``remove``/``update`` driven by training-time merges)
   are *equal* to a from-scratch rebuild, so no drift sequence can
   leave the index stale.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parsing.index import TemplateIndex
from repro.parsing.spell import SpellParser, extract_parameters

_CONST = ["alpha", "beta", "gamma", "delta", "payload"]
_template = st.lists(
    st.sampled_from(_CONST + ["*"]), min_size=1, max_size=7
)
_sequence = st.lists(st.sampled_from(_CONST), min_size=0, max_size=9)


def _scan(templates: list[list[str]], seq: list[str]) -> list[int]:
    return [
        idx
        for idx, tokens in enumerate(templates)
        if any(t != "*" for t in tokens)
        and extract_parameters(tokens, seq) is not None
    ]


class TestLookupInvariant:
    def test_exact_and_star_edges(self) -> None:
        index = TemplateIndex()
        templates = [
            ["alpha", "beta"],
            ["alpha", "*", "beta"],
            ["*", "beta"],
            ["alpha", "*"],
            ["*"],  # all-star: never indexed
        ]
        for idx, tokens in enumerate(templates):
            index.insert(idx, tokens)
        for seq in (
            ["alpha", "beta"],
            ["alpha", "gamma", "beta"],
            ["beta"],
            ["alpha"],
            ["gamma"],
            [],
        ):
            got = [idx for idx, _ in index.lookup(seq)]
            assert got == _scan(templates, seq), f"seq={seq}"

    def test_greedy_not_subsequence(self) -> None:
        """Template ``[*, a, b]`` must NOT match ``[x, a, c, a, b]`` —
        the greedy aligner stops at the *first* ``a``; a subsequence
        walk would wrongly accept it."""
        index = TemplateIndex()
        index.insert(0, ["*", "alpha", "beta"])
        assert extract_parameters(
            ["*", "alpha", "beta"],
            ["gamma", "alpha", "delta", "alpha", "beta"],
        ) is None
        assert index.lookup(
            ["gamma", "alpha", "delta", "alpha", "beta"]
        ) == []

    @settings(max_examples=200, deadline=None)
    @given(
        templates=st.lists(_template, min_size=0, max_size=10),
        seq=_sequence,
    )
    def test_lookup_equals_aligner_scan(
        self, templates: list[list[str]], seq: list[str]
    ) -> None:
        index = TemplateIndex()
        for idx, tokens in enumerate(templates):
            index.insert(idx, tokens)
        got = [idx for idx, _ in index.lookup(seq)]
        assert got == _scan(templates, seq)


class TestMaintenanceInvariant:
    @settings(max_examples=150, deadline=None)
    @given(
        steps=st.lists(
            st.tuples(_template, _template), min_size=1, max_size=12
        )
    )
    def test_update_equals_rebuild(
        self, steps: list[tuple[list[str], list[str]]]
    ) -> None:
        """insert(old) then update(old -> new), interleaved, must leave
        the trie equal to one rebuilt from the final templates —
        including node pruning (no ghost paths from removed
        templates)."""
        index = TemplateIndex()
        final: list[list[str]] = []
        for idx, (old, new) in enumerate(steps):
            index.insert(idx, old)
            if idx % 2 == 0:
                index.update(idx, old, new)
                final.append(new)
            else:
                final.append(old)
        rebuilt = TemplateIndex()
        rebuilt.rebuild(final)
        assert index.snapshot() == rebuilt.snapshot()
        assert len(index) == len(rebuilt)

    @settings(max_examples=100, deadline=None)
    @given(
        corpus=st.lists(
            st.lists(
                st.sampled_from(_CONST + ["17", "badger9"]),
                min_size=1,
                max_size=7,
            ).map(" ".join),
            min_size=1,
            max_size=30,
        )
    )
    def test_parser_incremental_equals_reindex(
        self, corpus: list[str]
    ) -> None:
        """Interleaved consume/merge sequences (lcs_merge drift mutates
        templates in place) must leave both the token postings and the
        trie equal to a from-scratch ``_reindex()``."""
        parser = SpellParser()
        for message in corpus:
            parser.consume(message)
        incremental_postings = {
            token: set(postings)
            for token, postings in parser._token_index.items()
        }
        incremental_trie = parser._index.snapshot()
        parser._reindex()
        assert incremental_postings == parser._token_index
        assert incremental_trie == parser._index.snapshot()
