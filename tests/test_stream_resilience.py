"""Chaos and resilience tests for the streaming runtime.

Exercises the failure paths the resilience layer exists for: log
rotation/truncation mid-tail, malformed input quarantine, transient and
persistent IO failures through the retry/backoff/circuit-breaker
machinery, checkpoint corruption and the ``.bak`` recovery ladder,
exactly-once report emission across kill/resume, and a seeded
end-to-end chaos run (simulator job → corrupted log file → flaky
source/sink) asserting the core invariants:

* the runtime never crashes;
* every malformed line lands in quarantine with a reason code;
* no session report is lost or emitted twice;
* sessions untouched by injected faults match the batch pipeline
  byte-for-byte.

All randomness is seeded (``REPRO_CHAOS_SEED`` selects the seed, CI
runs several), so any failure is reproducible from the seed alone.
When ``REPRO_CHAOS_ARTIFACTS`` names a directory, the chaos run's log
file, quarantine and report stream are copied there for upload.
"""

from __future__ import annotations

import datetime
import json
import os
import shutil
from pathlib import Path

import numpy as np
import pytest

from repro import IntelLog
from repro.core import (
    CheckpointCorruptError,
    ResilienceConfig,
    StreamFailedError,
)
from repro.parsing.formatters import default_registry
from repro.parsing.records import split_sessions
from repro.simulators import (
    FaultPlan,
    FaultSpec,
    LOG_DUPLICATE,
    LOG_KINDS,
    LOG_TORN,
    LOG_TRUNCATE,
    MapReduceConfig,
    MapReduceSimulator,
    corrupt_log_lines,
)
from repro.stream import (
    ChaosLogWriter,
    FileFollowSource,
    FlakySink,
    FlakySource,
    IterableSource,
    JsonLinesQuarantine,
    JsonLinesSink,
    ListQuarantine,
    ListSink,
    StreamCheckpoint,
    StreamRuntime,
    TrackerConfig,
    backup_checkpoint_path,
    corrupt_checkpoint,
    yarn_session_key,
)

#: One chaos run per seed; CI sweeps several seeds via this env var.
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "1"))
_ARTIFACT_DIR = os.environ.get("REPRO_CHAOS_ARTIFACTS")

#: Tracker settings that only close on end markers / final flush, so
#: stream reports compare against batch without timing effects.
PARITY_TRACKER = TrackerConfig(idle_timeout=1e12, max_open_sessions=10**9)

#: Fast, twitchy resilience: no real sleeping in tests, degrade on the
#: first failure, fail after a handful.
FAST = dict(
    retry_base_delay=0.0, retry_max_delay=0.0, retry_jitter=0.0,
)

NO_SLEEP = {"sleep": lambda _s: None}


def _artifact(name: str, path: str | Path) -> None:
    if _ARTIFACT_DIR and Path(path).exists():
        dest = Path(_ARTIFACT_DIR)
        dest.mkdir(parents=True, exist_ok=True)
        shutil.copy(path, dest / name)


def render_hadoop_lines(job) -> list[str]:
    """Serialize a simulated job's records in the hadoop log4j layout."""
    lines = []
    for session in job.sessions:
        for record in session.records:
            stamp = datetime.datetime.utcfromtimestamp(
                record.timestamp + 1_500_000_000
            )
            text = stamp.strftime("%Y-%m-%d %H:%M:%S")
            ms = int((record.timestamp % 1) * 1000)
            lines.append(
                f"{text},{ms:03d} {record.level} "
                f"[{session.session_id}] "
                f"org.apache.hadoop.{record.source}: {record.message}"
            )
    return lines


class FakeClock:
    """Monotonic clock advancing a fixed step per reading."""

    def __init__(self, step: float = 0.25) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


@pytest.fixture(scope="module")
def hadoop_model(tmp_path_factory):
    """Model trained on clean hadoop-rendered MapReduce logs."""
    sim = MapReduceSimulator(seed=29)
    lines: list[str] = []
    for i in range(4):
        job = sim.run_job(
            "wordcount", MapReduceConfig(input_gb=2.0),
            base_time=i * 3600.0,
        )
        lines.extend(render_hadoop_lines(job))
    intellog = IntelLog()
    intellog.train_lines(lines, formatter="hadoop")
    return intellog


@pytest.fixture(scope="module")
def detect_lines():
    """Clean rendered lines for two detection jobs (one seeded sim)."""
    sim = MapReduceSimulator(seed=31)
    lines: list[str] = []
    for i in range(2):
        job = sim.run_job(
            "wordcount", MapReduceConfig(input_gb=2.0),
            base_time=90_000.0 + i * 3600.0,
        )
        lines.extend(render_hadoop_lines(job))
    return lines


def batch_reports(model: IntelLog, lines: list[str]) -> dict[str, dict]:
    """Batch-pipeline verdicts keyed by session id, with the same
    yarn session attribution the file follower applies."""
    formatter = default_registry().get("hadoop")
    records = [yarn_session_key(r) for r in formatter.parse_lines(lines)]
    detector = model.detector()
    return {
        s.session_id: detector.detect_session(s).to_dict()
        for s in split_sessions(records)
    }


def stream_reports_from_jsonl(path: Path) -> list[dict]:
    return [
        json.loads(line) for line in path.read_text().splitlines()
    ]


def strip_delivery_keys(payload: dict) -> dict:
    return {
        k: v for k, v in payload.items()
        if k not in ("closed_reason", "finalization_id")
    }


# -- file follower: rotation / truncation / quarantine ---------------------


HEADER = "2017-07-14 02:40:0{i},000 INFO [container_01_{n:06d}] " \
         "org.apache.hadoop.Task: message number {n}"


def _lines(start: int, count: int) -> str:
    return "".join(
        HEADER.format(i=(start + j) % 10, n=start + j) + "\n"
        for j in range(count)
    )


class TestFileFollowerFaults:
    def test_rotation_mid_tail_reseeks_and_keeps_records(self, tmp_path):
        path = tmp_path / "app.log"
        path.write_text(_lines(0, 5))
        source = FileFollowSource(path, formatter="hadoop")
        first = source.poll(100)
        assert len(first) == 4  # fifth record held back pending

        # Rotate: a brand-new file (new inode) appears under the path.
        rotated = tmp_path / "app.log.new"
        rotated.write_text(_lines(100, 3))
        os.replace(rotated, path)
        second = source.poll(100)
        assert source.rotations == 1
        # The held-back old record is released, then the new content
        # is read from offset 0 — nothing lost, nothing stale.
        assert [r.message for r in second[:1]] == ["message number 4"]
        assert [r.message for r in second[1:]] == [
            "message number 100", "message number 101",
        ]

    def test_truncation_mid_tail_restarts_from_new_start(self, tmp_path):
        path = tmp_path / "app.log"
        path.write_text(_lines(0, 6))
        source = FileFollowSource(path, formatter="hadoop")
        source.poll(100)
        # Writer truncated and started over with fewer bytes.
        path.write_text(_lines(200, 2))
        batch = source.poll(100)
        assert source.truncations == 1
        messages = [r.message for r in batch]
        assert "message number 200" in messages[1]

    def test_quarantine_reasons(self, tmp_path):
        path = tmp_path / "app.log"
        with open(path, "wb") as fp:
            fp.write(b"orphan continuation with no header\n")
            fp.write(_lines(0, 2).encode())
            fp.write(b"\x00\x01binary\x00garbage\n")
            fp.write(b"\xff\xfe bad utf8 \xc3\x28\n")
            fp.write(_lines(10, 1).encode())
            fp.write(b"2017-07-14 02:40:09,000 INFO [container_x] trunc")
        source = FileFollowSource(path, formatter="hadoop")
        source.poll(100)
        tail = source.finalize()
        assert tail  # pending record released at end of input
        counts = source.quarantine.counts
        assert counts["unparseable"] == 1
        assert counts["binary"] == 1
        assert counts["decode_error"] == 1
        assert counts["truncated_record"] == 1
        reasons = {e["reason"] for e in source.quarantine.entries}
        assert reasons == {
            "unparseable", "binary", "decode_error", "truncated_record",
        }
        # Quarantined lines keep their text and byte offset.
        assert all("line" in e for e in source.quarantine.entries)

    def test_jsonl_quarantine_writes_reason_records(self, tmp_path):
        qpath = tmp_path / "quarantine.jsonl"
        quarantine = JsonLinesQuarantine(qpath)
        path = tmp_path / "app.log"
        path.write_bytes(b"garbage first line\n" + _lines(0, 2).encode())
        source = FileFollowSource(
            path, formatter="hadoop", quarantine=quarantine
        )
        source.poll(100)
        entries = [
            json.loads(line) for line in qpath.read_text().splitlines()
        ]
        assert entries[0]["reason"] == "unparseable"
        assert entries[0]["line"] == "garbage first line"
        assert entries[0]["offset"] == 0


# -- checkpoint corruption and recovery ------------------------------------


def _make_checkpoint(position: int = 5) -> StreamCheckpoint:
    return StreamCheckpoint(
        source_position={"kind": "iterable", "index": position},
        tracker_state={"watermark": None, "open": []},
        counters={"records": position},
        finalized=[f"fid{position}"],
    )


class TestCheckpointRecovery:
    @pytest.mark.parametrize("mode", ["truncate", "garble", "shape"])
    def test_corrupt_live_falls_back_to_bak(self, tmp_path, mode):
        path = tmp_path / "ckpt.json"
        _make_checkpoint(5).save(path)
        _make_checkpoint(9).save(path)  # rotates 5 -> .bak
        corrupt_checkpoint(path, np.random.default_rng(CHAOS_SEED), mode)
        checkpoint, origin, notes = StreamCheckpoint.recover(path)
        assert origin == "backup"
        assert checkpoint is not None
        assert checkpoint.counters["records"] == 5
        assert any("unusable" in n for n in notes)
        assert any("recovered from backup" in n for n in notes)

    def test_both_corrupt_is_loud_cold_start(self, tmp_path):
        path = tmp_path / "ckpt.json"
        _make_checkpoint(5).save(path)
        _make_checkpoint(9).save(path)
        rng = np.random.default_rng(CHAOS_SEED)
        corrupt_checkpoint(path, rng, "truncate")
        corrupt_checkpoint(backup_checkpoint_path(path), rng, "truncate")
        checkpoint, origin, notes = StreamCheckpoint.recover(path)
        assert checkpoint is None
        assert origin == "cold"
        assert any("COLD START" in n for n in notes)

    def test_fresh_start_is_silent(self, tmp_path):
        checkpoint, origin, notes = StreamCheckpoint.recover(
            tmp_path / "never-written.json"
        )
        assert (checkpoint, origin, notes) == (None, "fresh", [])

    def test_checksum_mismatch_raises_typed_error(self, tmp_path):
        path = tmp_path / "ckpt.json"
        _make_checkpoint(5).save(path)
        payload = json.loads(path.read_text())
        payload["counters"]["records"] = 999  # tamper
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointCorruptError, match="checksum"):
            StreamCheckpoint.load(path)

    def test_shape_mismatch_raises_typed_error(self):
        with pytest.raises(CheckpointCorruptError, match="tracker_state"):
            StreamCheckpoint.from_dict(
                {"version": 1, "tracker_state": []}
            )
        with pytest.raises(CheckpointCorruptError, match="version"):
            StreamCheckpoint.from_dict({"version": 99})
        with pytest.raises(CheckpointCorruptError, match="expected an"):
            StreamCheckpoint.from_dict([1, 2, 3])

    def test_save_is_atomic_with_rolling_bak(self, tmp_path):
        path = tmp_path / "ckpt.json"
        _make_checkpoint(1).save(path)
        assert not backup_checkpoint_path(path).exists()
        _make_checkpoint(2).save(path)
        bak = StreamCheckpoint.load(backup_checkpoint_path(path))
        live = StreamCheckpoint.load(path)
        assert bak.counters["records"] == 1
        assert live.counters["records"] == 2


# -- retry / circuit breaker / health machine ------------------------------


class TestHealthStateMachine:
    def _runtime(self, model, source, sink=None, **kwargs):
        resilience = kwargs.pop("resilience", None) or ResilienceConfig(
            retry_attempts=3, degraded_after=1, failed_after=6, **FAST
        )
        return StreamRuntime(
            model, source, sink=sink or ListSink(),
            tracker=PARITY_TRACKER, resilience=resilience,
            clock=FakeClock(), **NO_SLEEP, **kwargs,
        )

    def test_transient_outage_degrades_then_recovers(
        self, spark_model, tmp_path
    ):
        gen_records = _spark_records(seed=61)
        source = FlakySource(IterableSource(gen_records), fail_first=2)
        transitions: list[tuple[str, str]] = []
        runtime = self._runtime(
            spark_model, source,
            on_health=lambda old, new, why: transitions.append((old, new)),
        )
        stats = runtime.run(once=True)
        assert stats.health == "healthy"
        assert stats.io_failures == 2
        assert stats.degraded_s > 0.0
        assert ("healthy", "degraded") in transitions
        assert ("degraded", "healthy") in transitions
        # The outage lost nothing: full batch parity afterwards.
        batch = spark_model.detect_job(split_sessions(gen_records))
        assert stats.reports == len(batch.sessions)

    def test_persistent_outage_fails_safe_without_raising(
        self, spark_model, tmp_path
    ):
        source = FlakySource(
            IterableSource(_spark_records(seed=61)), fail_first=10**6
        )
        ckpt = tmp_path / "ckpt.json"
        runtime = self._runtime(spark_model, source, checkpoint_path=ckpt)
        stats = runtime.run(once=True)  # must not raise
        assert stats.health == "failed"
        assert "source.poll" in stats.failure
        assert stats.reports == 0
        # The runtime parked at a checkpoint for a later resume.
        assert ckpt.exists()

    def test_fail_fast_raises_typed_error(self, spark_model):
        source = FlakySource(
            IterableSource(_spark_records(seed=61)), fail_first=10**6
        )
        resilience = ResilienceConfig(
            retry_attempts=2, failed_after=4, fail_fast=True, **FAST
        )
        runtime = self._runtime(
            spark_model, source, resilience=resilience
        )
        with pytest.raises(StreamFailedError):
            runtime.run(once=True)

    def test_flaky_sink_parks_reports_in_outbox_then_delivers(
        self, spark_model
    ):
        records = _spark_records(seed=61)
        sink = FlakySink(ListSink(), fail_first=4)
        runtime = self._runtime(
            spark_model, IterableSource(records), sink=sink
        )
        stats = runtime.run(once=True)
        # Retries + outbox redelivery: every report arrives exactly once.
        batch = spark_model.detect_job(split_sessions(records))
        assert len(sink.inner.reports) == len(batch.sessions)
        fids = sink.inner.emitted_ids()
        assert len(fids) == len(set(fids))
        assert stats.health in ("healthy", "degraded")


def _spark_records(seed: int):
    from repro.simulators import WorkloadGenerator

    gen = WorkloadGenerator(seed=seed)
    jobs = gen.run_batch("spark", 2)
    records = [r for job in jobs for r in job.records]
    records.sort(key=lambda r: r.timestamp)
    return records


# -- exactly-once finalization across kill/resume --------------------------


class TestExactlyOnce:
    def _run(self, model, records, ckpt, out, max_records=None,
             checkpoint_every=50):
        runtime = StreamRuntime(
            model,
            IterableSource(records),
            sink=JsonLinesSink(out),
            tracker=PARITY_TRACKER,
            checkpoint_path=ckpt,
            checkpoint_every=checkpoint_every,
            resilience=ResilienceConfig(**FAST),
            **NO_SLEEP,
        )
        stats = runtime.run(once=True, max_records=max_records)
        return runtime, stats

    def test_kill_resume_emits_every_report_exactly_once(
        self, spark_model, tmp_path
    ):
        records = _spark_records(seed=67)
        ckpt = tmp_path / "ckpt.json"
        out = tmp_path / "reports.jsonl"
        # "Kill" mid-job: pause after half the records (state is only
        # what the checkpoint captured), then resume in a new runtime.
        self._run(spark_model, records, ckpt, out,
                  max_records=len(records) // 2)
        runtime2, _ = self._run(spark_model, records, ckpt, out)
        assert runtime2.resumed and runtime2.resume_origin == "checkpoint"

        payloads = stream_reports_from_jsonl(out)
        fids = [p["finalization_id"] for p in payloads]
        assert len(fids) == len(set(fids)), "a report was emitted twice"
        batch = spark_model.detect_job(split_sessions(records))
        assert {p["session_id"] for p in payloads} == {
            s.session_id for s in batch.sessions
        }
        by_sid = {
            p["session_id"]: strip_delivery_keys(p) for p in payloads
        }
        assert by_sid == {
            s.session_id: s.to_dict() for s in batch.sessions
        }

    def test_corrupt_checkpoint_resume_still_exactly_once(
        self, spark_model, tmp_path
    ):
        records = _spark_records(seed=67)
        ckpt = tmp_path / "ckpt.json"
        out = tmp_path / "reports.jsonl"
        # Small checkpoint_every so a .bak exists by the pause point.
        self._run(spark_model, records, ckpt, out,
                  max_records=len(records) * 2 // 3, checkpoint_every=20)
        assert backup_checkpoint_path(ckpt).exists()
        corrupt_checkpoint(
            ckpt, np.random.default_rng(CHAOS_SEED), "garble"
        )
        runtime2, _ = self._run(spark_model, records, ckpt, out)
        assert runtime2.resume_origin == "backup"
        assert runtime2.resume_notes

        payloads = stream_reports_from_jsonl(out)
        fids = [p["finalization_id"] for p in payloads]
        assert len(fids) == len(set(fids)), (
            "backup rewind re-emitted a report"
        )
        batch = spark_model.detect_job(split_sessions(records))
        assert {p["session_id"] for p in payloads} == {
            s.session_id for s in batch.sessions
        }

    def test_cold_start_dedupes_via_sink_delivery_log(
        self, spark_model, tmp_path
    ):
        records = _spark_records(seed=67)
        ckpt = tmp_path / "ckpt.json"
        out = tmp_path / "reports.jsonl"
        self._run(spark_model, records, ckpt, out, checkpoint_every=20)
        first = stream_reports_from_jsonl(out)
        assert first
        # Lose BOTH checkpoint and backup: full cold-start replay.
        rng = np.random.default_rng(CHAOS_SEED)
        corrupt_checkpoint(ckpt, rng, "truncate")
        corrupt_checkpoint(backup_checkpoint_path(ckpt), rng, "truncate")
        runtime2, stats2 = self._run(spark_model, records, ckpt, out)
        assert runtime2.resume_origin == "cold"
        # The sink's own output is the delivery log: the replay is
        # suppressed entirely.
        payloads = stream_reports_from_jsonl(out)
        fids = [p["finalization_id"] for p in payloads]
        assert len(fids) == len(set(fids))
        assert len(payloads) == len(first)
        assert stats2.deduped_reports == len(first)


# -- simulator log-fault kinds ---------------------------------------------


class TestLogFaultKinds:
    def test_corrupt_log_lines_truncate(self):
        rng = np.random.default_rng(CHAOS_SEED)
        lines = [f"line number {i} with some text" for i in range(6)]
        out = corrupt_log_lines(lines, LOG_TRUNCATE, rng)
        assert len(out) == len(lines)
        assert out[:-1] == lines[:-1]
        assert lines[-1].startswith(out[-1]) and out[-1] != lines[-1]

    def test_corrupt_log_lines_duplicate(self):
        rng = np.random.default_rng(CHAOS_SEED)
        lines = [f"line number {i}" for i in range(6)]
        out = corrupt_log_lines(lines, LOG_DUPLICATE, rng)
        assert len(out) > len(lines)
        # Same multiset plus the duplicated chunk; order preserved.
        assert [l for l in out if out.count(l) == 1] == [
            l for l in lines if out.count(l) == 1
        ]

    def test_corrupt_log_lines_torn(self):
        rng = np.random.default_rng(CHAOS_SEED)
        lines = [f"line number {i} padding padding" for i in range(6)]
        out = corrupt_log_lines(lines, LOG_TORN, rng)
        assert len(out) == len(lines) - 1
        merged = [l for l in out if l not in lines]
        assert len(merged) == 1
        # The fused line is a short prefix of one line + all of the next.
        idx = out.index(merged[0])
        assert merged[0].endswith(lines[idx + 1])

    def test_corrupt_log_lines_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown log fault"):
            corrupt_log_lines(["x"], "sigkill",
                              np.random.default_rng(CHAOS_SEED))

    def test_fault_plan_picks_log_victim(self):
        sim = MapReduceSimulator(seed=CHAOS_SEED)
        for kind in LOG_KINDS:
            job = sim.run_job(
                "wordcount", MapReduceConfig(input_gb=1.0),
                fault=FaultSpec(kind),
            )
            assert job.fault == kind
            assert len(job.affected_sessions) == 1
            # Log faults damage files, not processes: the victim's
            # in-memory session still ran to completion.
            victim = next(iter(job.affected_sessions))
            assert any(
                s.session_id == victim and len(s.records) > 0
                for s in job.sessions
            )

    def test_fault_spec_accepts_log_kinds(self):
        for kind in LOG_KINDS:
            assert FaultSpec(kind).kind == kind

    def test_fault_plan_query_api(self):
        plan = FaultPlan(
            FaultSpec(LOG_TORN), np.random.default_rng(CHAOS_SEED)
        )
        assert plan.log_victim is None
        assert plan.affected_session_ids() == set()


# -- end-to-end chaos run --------------------------------------------------


class TestChaosEndToEnd:
    def test_seeded_chaos_run_holds_all_invariants(
        self, hadoop_model, detect_lines, tmp_path
    ):
        rng = np.random.default_rng(CHAOS_SEED)
        log_path = tmp_path / "chaos.log"
        writer = ChaosLogWriter(
            log_path, rng,
            torn_rate=0.015, duplicate_rate=0.015,
            binary_rate=0.01, encoding_rate=0.01,
        )
        writer.write_lines(detect_lines)

        qpath = tmp_path / "quarantine.jsonl"
        out = tmp_path / "reports.jsonl"
        source = FlakySource(
            FileFollowSource(
                log_path, formatter="hadoop",
                quarantine=JsonLinesQuarantine(qpath),
            ),
            rng=rng, fail_rate=0.05,
        )
        sink = FlakySink(JsonLinesSink(out), rng=rng, fail_rate=0.05)
        runtime = StreamRuntime(
            hadoop_model, source, sink=sink,
            tracker=PARITY_TRACKER,
            checkpoint_path=tmp_path / "ckpt.json",
            resilience=ResilienceConfig(
                retry_attempts=4, failed_after=50, **FAST
            ),
            **NO_SLEEP,
        )
        stats = runtime.run(once=True)  # invariant 1: never crashes
        _artifact(f"chaos-seed{CHAOS_SEED}.log", log_path)
        _artifact(f"quarantine-seed{CHAOS_SEED}.jsonl", qpath)
        _artifact(f"reports-seed{CHAOS_SEED}.jsonl", out)

        assert stats.health != "failed"
        assert sum(writer.injected.values()) > 0, (
            "chaos run injected nothing — raise rates or line count"
        )

        # Invariant 2: injected garbage is quarantined with a reason,
        # never folded into a session or silently dropped.
        counts = stats.quarantined
        assert counts.get("binary", 0) == writer.injected["binary"]
        assert counts.get("decode_error", 0) == \
            writer.injected["encoding"]

        # Invariant 3: exactly-once delivery despite the flaky sink.
        payloads = stream_reports_from_jsonl(out)
        fids = [p["finalization_id"] for p in payloads]
        assert len(fids) == len(set(fids))
        assert stats.undelivered_reports == 0

        # Invariant 4: sessions untouched by injected faults match the
        # batch pipeline byte-for-byte.
        batch = batch_reports(hadoop_model, detect_lines)
        clean = set(batch) - writer.affected_sessions
        assert clean, "every session was hit — lower the fault rates"
        streamed = {
            p["session_id"]: strip_delivery_keys(p) for p in payloads
            if p["session_id"] in clean
        }
        assert streamed == {sid: batch[sid] for sid in clean}

    def test_chaos_truncated_tail_is_quarantined(
        self, hadoop_model, detect_lines, tmp_path
    ):
        rng = np.random.default_rng(CHAOS_SEED + 1000)
        log_path = tmp_path / "chaos.log"
        writer = ChaosLogWriter(log_path, rng, torn_rate=0.0,
                                duplicate_rate=0.0, binary_rate=0.0,
                                encoding_rate=0.0)
        writer.write_lines(detect_lines)
        writer.truncate_tail(30)  # writer crashed mid-record

        quarantine = ListQuarantine()
        source = FileFollowSource(
            log_path, formatter="hadoop", quarantine=quarantine
        )
        runtime = StreamRuntime(
            hadoop_model, source, sink=ListSink(),
            tracker=PARITY_TRACKER, **NO_SLEEP,
        )
        stats = runtime.run(once=True)
        assert quarantine.counts.get("truncated_record") == 1
        assert stats.quarantined.get("truncated_record") == 1
        # Only the torn session differs from batch.
        batch = batch_reports(hadoop_model, detect_lines)
        clean = set(batch) - writer.affected_sessions
        streamed = {
            c.session.session_id: r.to_dict()
            for r, c in zip(runtime.sink.reports, runtime.sink.closures)
            if c.session.session_id in clean
        }
        assert streamed == {sid: batch[sid] for sid in clean}


# -- outbox parking: O(1) dedup + checkpoint-consistent parked set ---------


class TestOutboxParking:
    """Regression for the O(outbox) duplicate scan in ``_finalize``.

    Parked finalization ids are mirrored in a set kept consistent with
    the outbox across delivery, drain and checkpoint resume, so replayed
    closures dedup without walking every parked entry.
    """

    def _runtime(self, model, records, sink, ckpt=None):
        return StreamRuntime(
            model, IterableSource(records), sink=sink,
            tracker=PARITY_TRACKER,
            checkpoint_path=ckpt,
            resilience=ResilienceConfig(
                retry_attempts=2, failed_after=10**6, **FAST
            ),
            **NO_SLEEP,
        )

    def test_outage_parks_every_report_and_dedups_in_constant_time(
        self, spark_model, tmp_path
    ):
        from repro.stream import ClosedSession

        records = _spark_records(seed=67)
        ckpt = tmp_path / "ckpt.json"
        sink = FlakySink(ListSink(), fail_first=10**6)  # permanent outage
        runtime = self._runtime(spark_model, records, sink, ckpt)
        stats = runtime.run(once=True)

        batch = spark_model.detect_job(split_sessions(records))
        assert len(batch.sessions) > 1
        assert not sink.inner.reports  # nothing got through
        assert stats.undelivered_reports == len(batch.sessions)
        # The parked set mirrors the outbox exactly.
        assert runtime._parked_fids == {
            e["finalization_id"] for e in runtime._outbox
        }

        # Replay a closure for a session whose report is parked: the
        # duplicate must be suppressed via the parked-fid set without
        # touching the outbox or emitting anything.
        deduped = stats.deduped_reports
        outbox_len = len(runtime._outbox)
        for session in split_sessions(records):
            runtime._finalize(
                ClosedSession(session=session, reason="flush")
            )
        assert len(runtime._outbox) == outbox_len
        assert runtime.stats.deduped_reports == deduped + len(
            batch.sessions
        )

    def test_parked_set_rebuilt_on_resume_then_drained(
        self, spark_model, tmp_path
    ):
        records = _spark_records(seed=67)
        ckpt = tmp_path / "ckpt.json"
        outage = FlakySink(ListSink(), fail_first=10**6)
        runtime = self._runtime(spark_model, records, outage, ckpt)
        runtime.run(once=True)
        parked = set(runtime._parked_fids)
        assert parked
        runtime.checkpoint()

        # Resume with a healthy sink: the parked set is rebuilt from the
        # checkpointed outbox, then emptied as the outbox drains.
        healthy = ListSink()
        runtime2 = self._runtime(spark_model, [], healthy, ckpt)
        assert runtime2.resumed
        assert runtime2._parked_fids == {
            e["finalization_id"] for e in runtime2._outbox
        }
        assert runtime2._parked_fids == parked
        runtime2.run(once=True)
        assert not runtime2._outbox
        assert not runtime2._parked_fids
        fids = healthy.emitted_ids()
        assert sorted(fids) == sorted(parked)
        assert len(fids) == len(set(fids))
