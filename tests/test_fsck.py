"""Tests for registry crash-consistency checking (``repro.serve.fsck``).

Each test crafts the exact debris a crash leaves at one point of the
journaled publish/swap protocol — intent with artifact but no index
entry, legacy orphaned artifact, dangling index version, torn intent,
corrupt index, stray temp files — and asserts fsck's verdict and
repair: roll *forward* when the artifact is durable, roll *back* when
it is not, and refuse to guess when the index itself is unreadable.
Also covers the ``repro fsck`` CLI exit codes and the automatic
startup fsck in ``DetectionService``.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.query.store import ModelStore
from repro.serve import (
    DetectionService,
    ModelRegistry,
    RegistryError,
    RegistryFsck,
    run_fsck,
)


@pytest.fixture()
def store_v1(spark_model) -> ModelStore:
    return ModelStore.from_intellog(spark_model)


@pytest.fixture()
def store_v2(spark_training_jobs) -> ModelStore:
    from repro import IntelLog
    from repro.simulators import sessions_of

    intellog = IntelLog()
    intellog.train(sessions_of(spark_training_jobs[:6]))
    return ModelStore.from_intellog(intellog)


def _crash_after_artifact(root, reg, store, name="m") -> str:
    """Leave the debris of a crash between artifact write and index
    append: intent on disk, artifact on disk, no index entry."""
    digest = store.digest()
    reg.intent_path(name, digest).write_text(json.dumps(
        {"op": "publish", "name": name, "digest": digest},
        sort_keys=True,
    ))
    reg.artifact_path(digest).write_bytes(store.canonical_bytes())
    return digest


class TestFsckRepair:
    def test_clean_registry_scans_clean(self, tmp_path, store_v1):
        reg = ModelRegistry(tmp_path / "reg")
        reg.publish(store_v1, "m")
        report = run_fsck(tmp_path / "reg")
        assert report.clean and report.ok

    def test_crash_after_artifact_rolls_forward(
        self, tmp_path, store_v1, store_v2
    ):
        root = tmp_path / "reg"
        reg = ModelRegistry(root)
        reg.publish(store_v1, "m")
        digest2 = _crash_after_artifact(root, reg, store_v2)

        scan = run_fsck(root)
        assert [f.kind for f in scan.findings] == ["intent_rollforward"]
        assert not scan.ok  # found but not repaired

        repaired = run_fsck(root, repair=True)
        assert repaired.ok
        fresh = ModelRegistry(root)
        assert fresh.resolve("m") == (2, digest2)
        assert run_fsck(root).clean

    def test_crash_before_artifact_rolls_back(
        self, tmp_path, store_v1, store_v2
    ):
        root = tmp_path / "reg"
        reg = ModelRegistry(root)
        reg.publish(store_v1, "m")
        digest2 = store_v2.digest()
        intent = reg.intent_path("m", digest2)
        intent.write_text(json.dumps(
            {"op": "publish", "name": "m", "digest": digest2},
            sort_keys=True,
        ))  # crashed before the artifact landed
        repaired = run_fsck(root, repair=True)
        assert [f.kind for f in repaired.findings] == ["intent_rollback"]
        assert repaired.ok
        assert not intent.exists()
        fresh = ModelRegistry(root)
        assert fresh.resolve("m")[0] == 1  # v2 never happened

    def test_legacy_orphan_artifact_is_reclaimed(
        self, tmp_path, store_v1, store_v2
    ):
        # The known pre-journal bug: artifact written, crash before the
        # index append, no intent to witness it.  fsck must reclaim it
        # rather than leak it forever.
        root = tmp_path / "reg"
        reg = ModelRegistry(root)
        reg.publish(store_v1, "m")
        orphan = reg.artifact_path(store_v2.digest())
        orphan.write_bytes(store_v2.canonical_bytes())

        repaired = run_fsck(root, repair=True)
        assert [f.kind for f in repaired.findings] == ["orphan_artifact"]
        assert repaired.ok
        assert not orphan.exists()
        assert ModelRegistry(root).resolve("m")[0] == 1

    def test_dangling_version_is_dropped(self, tmp_path, store_v1, store_v2):
        root = tmp_path / "reg"
        reg = ModelRegistry(root)
        reg.publish(store_v1, "m")
        _, digest2 = reg.publish(store_v2, "m")
        reg.artifact_path(digest2).unlink()  # artifact lost

        repaired = run_fsck(root, repair=True)
        assert "dangling_version" in [f.kind for f in repaired.findings]
        assert repaired.ok
        fresh = ModelRegistry(root)
        assert fresh.resolve("m")[0] == 1
        with pytest.raises(RegistryError):
            fresh.resolve("m", 2)

    def test_torn_intent_is_removed(self, tmp_path, store_v1):
        root = tmp_path / "reg"
        reg = ModelRegistry(root)
        reg.publish(store_v1, "m")
        torn = root / "intents" / "deadbeef-0000.intent.json"
        torn.write_text('{"op": "publ')  # crash mid-journal-write
        repaired = run_fsck(root, repair=True)
        assert [f.kind for f in repaired.findings] == ["intent_torn"]
        assert repaired.ok
        assert not torn.exists()

    def test_stray_tmp_files_are_removed(self, tmp_path, store_v1):
        root = tmp_path / "reg"
        reg = ModelRegistry(root)
        reg.publish(store_v1, "m")
        stray = root / "artifacts" / "abc.json.tmp"
        stray.write_bytes(b"partial")
        repaired = run_fsck(root, repair=True)
        assert [f.kind for f in repaired.findings] == ["stray_tmp"]
        assert not stray.exists()

    def test_corrupt_index_disables_destructive_repair(
        self, tmp_path, store_v1, store_v2
    ):
        root = tmp_path / "reg"
        reg = ModelRegistry(root)
        reg.publish(store_v1, "m")
        _crash_after_artifact(root, reg, store_v2)
        (root / "index.json").write_text("{{{ not json")

        repaired = run_fsck(root, repair=True)
        kinds = {f.kind for f in repaired.findings}
        assert "index_corrupt" in kinds
        assert not repaired.ok  # needs a human: fsck refuses to guess
        # With no readable index nothing can be proven unreferenced:
        # the artifact survives, the intent stays as a witness.
        assert reg.artifact_path(store_v2.digest()).exists()
        assert "orphan_artifact" not in kinds

    def test_checkpoint_dir_scan_clears_swap_intent(
        self, tmp_path, store_v1
    ):
        root = tmp_path / "reg"
        ModelRegistry(root).publish(store_v1, "m")
        ckpt = tmp_path / "ckpt"
        ckpt.mkdir()
        (ckpt / "model.t1.stream-ckpt.json.tmp").write_text("torn")
        (ckpt / "model.t1.swap-intent.json").write_text(json.dumps(
            {"op": "swap", "tenant": "t1", "from": 1, "to": 2}
        ))
        repaired = run_fsck(root, checkpoint_dir=ckpt, repair=True)
        kinds = sorted(f.kind for f in repaired.findings)
        assert kinds == ["checkpoint_stray_tmp", "swap_intent"]
        assert repaired.ok
        assert list(ckpt.iterdir()) == []

    def test_fsck_report_is_json_serialisable(self, tmp_path, store_v1):
        root = tmp_path / "reg"
        reg = ModelRegistry(root)
        reg.publish(store_v1, "m")
        (root / "artifacts" / "junk.json.tmp").write_text("x")
        report = RegistryFsck(root).scan()
        doc = json.loads(json.dumps(report.to_dict()))
        assert doc["clean"] is False
        assert doc["findings"][0]["kind"] == "stray_tmp"


class TestStartupFsck:
    def test_service_repairs_crashed_publish_on_startup(
        self, tmp_path, store_v1, store_v2
    ):
        root = tmp_path / "reg"
        reg = ModelRegistry(root)
        reg.publish(store_v1, "m")
        digest2 = _crash_after_artifact(root, reg, store_v2)

        registry = ModelRegistry(root)  # reopens: index still at v1
        svc = DetectionService(registry, checkpoint_dir=tmp_path / "ck")
        assert svc.startup_fsck is not None
        assert not svc.startup_fsck.clean
        assert svc.startup_fsck.ok
        # The roll-forward is visible to the reopened registry.
        assert registry.resolve("m") == (2, digest2)
        assert svc.tenants_status()["startup_fsck"]["clean"] is False

    def test_fsck_on_start_can_be_disabled(self, tmp_path, store_v1):
        root = tmp_path / "reg"
        ModelRegistry(root).publish(store_v1, "m")
        svc = DetectionService(
            ModelRegistry(root), fsck_on_start=False
        )
        assert svc.startup_fsck is None
        assert "startup_fsck" not in svc.tenants_status()


class TestFsckCli:
    def test_scan_exits_1_on_findings_repair_exits_0(
        self, tmp_path, store_v1, store_v2, capsys
    ):
        root = tmp_path / "reg"
        reg = ModelRegistry(root)
        reg.publish(store_v1, "m")
        _crash_after_artifact(root, reg, store_v2)

        assert cli_main(["fsck", "--registry", str(root)]) == 1
        out = capsys.readouterr().out
        assert "intent_rollforward" in out and "NOT repaired" in out

        assert cli_main(
            ["fsck", "--registry", str(root), "--repair"]
        ) == 0
        assert cli_main(["fsck", "--registry", str(root)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_json_report(self, tmp_path, store_v1, capsys):
        root = tmp_path / "reg"
        ModelRegistry(root).publish(store_v1, "m")
        assert cli_main(
            ["fsck", "--registry", str(root), "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["clean"] is True and doc["ok"] is True
