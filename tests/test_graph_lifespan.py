"""Tests for lifespan relations (paper §4.1, Figure 6)."""

from repro.graph.lifespan import (
    BEFORE,
    CHILD,
    PARALLEL,
    PARENT,
    Lifespan,
    RelationMatrix,
    session_lifespans,
)


def observe(matrix, spans):
    matrix.observe_session(
        {name: Lifespan(start, end) for name, (start, end) in spans.items()}
    )


class TestLifespan:
    def test_contains(self):
        assert Lifespan(0, 10).contains(Lifespan(2, 8))
        assert not Lifespan(2, 8).contains(Lifespan(0, 10))

    def test_strict_containment_excludes_equal(self):
        assert not Lifespan(0, 10).strictly_contains(Lifespan(0, 10))
        assert Lifespan(0, 10).strictly_contains(Lifespan(0, 9))

    def test_precedes(self):
        assert Lifespan(0, 5).precedes(Lifespan(5, 9))
        assert not Lifespan(0, 6).precedes(Lifespan(5, 9))


class TestRelationMatrix:
    def test_parent_when_always_contained(self):
        matrix = RelationMatrix(min_support=1)
        for _ in range(3):
            observe(matrix, {"a": (0, 10), "b": (2, 8)})
        assert matrix.relation("a", "b") == PARENT
        assert matrix.relation("b", "a") == CHILD

    def test_before_when_always_ordered(self):
        matrix = RelationMatrix(min_support=1)
        for _ in range(3):
            observe(matrix, {"a": (0, 4), "b": (5, 9)})
        assert matrix.relation("a", "b") == BEFORE

    def test_disagreement_collapses_to_parallel(self):
        # Figure 6: PARENT/BEFORE only if satisfied in *every* session.
        matrix = RelationMatrix(min_support=1)
        observe(matrix, {"a": (0, 10), "b": (2, 8)})
        observe(matrix, {"a": (0, 5), "b": (2, 8)})
        assert matrix.relation("a", "b") == PARALLEL

    def test_touching_boundary_trains_before(self):
        # Regression: observe_session used a strict ``end < start``
        # comparison while ``precedes`` accepts the shared boundary
        # (``end <= start``), so a handoff where one group's last message
        # shares its timestamp with the next group's first was trained
        # PARALLEL instead of BEFORE.  Both paths now agree.
        matrix = RelationMatrix(min_support=1)
        for _ in range(3):
            observe(matrix, {"a": (0, 5), "b": (5, 9)})
        assert Lifespan(0, 5).precedes(Lifespan(5, 9))
        assert matrix.relation("a", "b") == BEFORE
        assert matrix.relation("b", "a") == "AFTER"

    def test_zero_width_equal_is_not_before(self):
        # Regression: two single-message groups at the same timestamp must
        # not read as an ordering.
        matrix = RelationMatrix(min_support=1)
        observe(matrix, {"a": (5, 5), "b": (5, 5)})
        assert matrix.relation("a", "b") == PARALLEL

    def test_equal_spans_do_not_break_parent_votes(self):
        matrix = RelationMatrix(min_support=1)
        observe(matrix, {"a": (0, 10), "b": (2, 8)})
        observe(matrix, {"a": (1, 6), "b": (1, 6)})
        assert matrix.relation("a", "b") == PARENT

    def test_min_support_guards_scarce_pairs(self):
        matrix = RelationMatrix(min_support=5)
        for _ in range(4):
            observe(matrix, {"a": (0, 4), "b": (5, 9)})
        assert matrix.relation("a", "b") == PARALLEL
        observe(matrix, {"a": (0, 4), "b": (5, 9)})
        assert matrix.relation("a", "b") == BEFORE

    def test_never_cooccurring_is_parallel(self):
        matrix = RelationMatrix(min_support=1)
        observe(matrix, {"a": (0, 4)})
        observe(matrix, {"b": (0, 4)})
        assert matrix.relation("a", "b") == PARALLEL

    def test_self_relation(self):
        matrix = RelationMatrix()
        assert matrix.relation("a", "a") == "SELF"

    def test_relations_of(self):
        matrix = RelationMatrix(min_support=1)
        observe(matrix, {"a": (0, 10), "b": (2, 8), "c": (12, 15)})
        relations = matrix.relations_of("a")
        assert relations["b"] == PARENT
        assert relations["c"] == BEFORE


class TestSessionLifespans:
    def test_built_from_timestamps(self):
        spans = session_lifespans({"g": [3.0, 1.0, 2.0]})
        assert spans["g"] == Lifespan(1.0, 3.0)

    def test_empty_group_skipped(self):
        assert session_lifespans({"g": []}) == {}
