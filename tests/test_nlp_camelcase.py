"""Tests for the camel-case name filter (paper §3.1)."""

from repro.nlp.camelcase import (
    FilterChain,
    camel_filter,
    is_camel_case,
    make_default_chain,
    snake_filter,
    split_camel_case,
)


class TestDetection:
    def test_simple_camel(self):
        assert is_camel_case("MapTask")
        assert is_camel_case("BlockManager")

    def test_lower_camel(self):
        assert is_camel_case("blockManager")

    def test_plain_words_rejected(self):
        assert not is_camel_case("task")
        assert not is_camel_case("Task")

    def test_all_caps_rejected(self):
        assert not is_camel_case("HDFS")

    def test_non_alnum_rejected(self):
        assert not is_camel_case("map-output")

    def test_short_rejected(self):
        assert not is_camel_case("A")


class TestSplitting:
    def test_paper_example(self):
        # §3.1: "'MapTask' is transformed to 'map task'".
        assert split_camel_case("MapTask") == ["map", "task"]

    def test_three_parts(self):
        assert split_camel_case("BlockManagerEndpoint") == [
            "block", "manager", "endpoint",
        ]

    def test_acronym_prefix(self):
        assert split_camel_case("HTTPServer") == ["http", "server"]

    def test_digits_split(self):
        assert split_camel_case("task0Output") == ["task", "0", "output"]


class TestFilters:
    def test_camel_filter_matches(self):
        assert camel_filter("MapTask") == ["map", "task"]

    def test_camel_filter_rejects_digits(self):
        # "task0" is an identifier, not a class-name entity.
        assert camel_filter("Task0") is None

    def test_camel_filter_rejects_plain(self):
        assert camel_filter("task") is None

    def test_snake_filter(self):
        assert snake_filter("block_manager") == ["block", "manager"]

    def test_snake_filter_rejects_identifiers(self):
        assert snake_filter("attempt_01") is None

    def test_chain_first_match_wins(self):
        chain = FilterChain([camel_filter, snake_filter])
        assert chain.split("MapTask") == ["map", "task"]
        assert chain.split("block_manager") == ["block", "manager"]

    def test_chain_user_extension(self):
        # §3.1: users can define their own filters.
        def kebab(word):
            if "-" in word.strip("-"):
                parts = [p for p in word.split("-") if p]
                if all(p.isalpha() for p in parts) and len(parts) > 1:
                    return [p.lower() for p in parts]
            return None

        chain = make_default_chain()
        assert chain.split("map-output") is None
        chain.add(kebab)
        assert chain.split("map-output") == ["map", "output"]

    def test_default_chain_is_camel_only(self):
        chain = make_default_chain()
        assert chain.split("block_manager") is None
