"""Tests for the simulated targeted systems."""

import pytest

from repro.parsing.records import split_sessions
from repro.simulators import (
    FaultSpec,
    MapReduceConfig,
    MapReduceSimulator,
    SparkConfig,
    SparkSimulator,
    TezConfig,
    TezSimulator,
    WorkloadGenerator,
    YarnCluster,
    generate_nova_records,
    generate_yarn_records,
    mapreduce_catalog,
    sessions_of,
    spark_catalog,
    tez_catalog,
)
from repro.simulators.events import Simulation
from repro.simulators.groundtruth import Role, Template


class TestTemplates:
    def test_catalogs_have_distinct_ids(self):
        for catalog in (mapreduce_catalog(), spark_catalog(),
                        tez_catalog()):
            ids = [t.template_id for t in catalog.all()]
            assert len(ids) == len(set(ids))

    def test_placeholder_roles_enforced(self):
        with pytest.raises(ValueError):
            Template("t.bad", "value is {x}")

    def test_render_records_field_roles(self):
        template = Template(
            "t.ok", "task {tid} read {n} bytes",
            roles={"tid": Role.IDENTIFIER, "n": Role.VALUE},
        )
        message, truth = template.render(tid="task_01", n=17)
        assert message == "task task_01 read 17 bytes"
        assert truth.fields == {"task_01": "identifier", "17": "value"}

    def test_missing_value_raises(self):
        template = Template(
            "t.miss", "task {tid}", roles={"tid": Role.IDENTIFIER}
        )
        with pytest.raises(KeyError):
            template.render()

    def test_paper_figure1_templates_present(self):
        catalog = mapreduce_catalog()
        assert "mr.fetch.shuffle" in catalog
        assert "mr.fetch.read" in catalog
        assert "mr.fetch.freed" in catalog

    def test_paper_vague_tez_keys_present(self):
        catalog = tez_catalog()
        close_done = catalog.get("tz.op.close.done")
        assert "Close done" in close_done.text

    def test_role_counts(self):
        counts = mapreduce_catalog().role_counts()
        assert counts[Role.IDENTIFIER] > 10
        assert counts[Role.VALUE] > 10
        assert counts[Role.LOCALITY] > 3


class TestEventEngine:
    def test_ordering(self):
        sim = Simulation(rng=0)
        order = []
        sim.schedule(2.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.run()
        assert order == ["a", "b"]

    def test_fifo_at_same_time(self):
        sim = Simulation(rng=0)
        order = []
        sim.schedule(1.0, lambda: order.append(1))
        sim.schedule(1.0, lambda: order.append(2))
        sim.run()
        assert order == [1, 2]

    def test_jitter_positive(self):
        sim = Simulation(rng=0)
        for _ in range(100):
            assert sim.jitter(0.5) > 0

    def test_negative_delay_rejected(self):
        sim = Simulation(rng=0)
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_run_until(self):
        sim = Simulation(rng=0)
        hits = []
        sim.schedule(1.0, lambda: hits.append(1))
        sim.schedule(10.0, lambda: hits.append(2))
        sim.run(until=5.0)
        assert hits == [1]


class TestCluster:
    def test_container_ids_unique(self):
        cluster = YarnCluster(nodes=4, rng=1)
        ids = {
            cluster.allocate("application_1_0001", "map").container_id
            for _ in range(10)
        }
        assert len(ids) == 10

    def test_sessions_sorted(self):
        cluster = YarnCluster(nodes=4, rng=1)
        container = cluster.allocate("application_1_0001", "map")
        from repro.parsing.records import LogRecord

        container.session.append(
            LogRecord(timestamp=2.0, level="INFO", source="X", message="b")
        )
        container.session.append(
            LogRecord(timestamp=1.0, level="INFO", source="X", message="a")
        )
        sessions = cluster.sessions()
        assert sessions[0].records[0].message == "a"


class TestMapReduceSimulator:
    def test_session_count_scales_with_input(self):
        sim = MapReduceSimulator(seed=1)
        small = sim.run_job("wordcount", MapReduceConfig(input_gb=1.0))
        large = sim.run_job("wordcount", MapReduceConfig(input_gb=8.0))
        assert len(large.sessions) > len(small.sessions)

    def test_sessions_are_per_container(self):
        sim = MapReduceSimulator(seed=1)
        job = sim.run_job("wordcount", MapReduceConfig(input_gb=2.0))
        ids = [s.session_id for s in job.sessions]
        assert len(ids) == len(set(ids))

    def test_ground_truth_attached(self):
        sim = MapReduceSimulator(seed=1)
        job = sim.run_job("wordcount", MapReduceConfig(input_gb=1.0))
        assert all(
            r.truth is not None for s in job.sessions for r in s.records
        )

    def test_clean_run_has_no_anomalous_templates(self):
        sim = MapReduceSimulator(seed=1)
        job = sim.run_job("wordcount", MapReduceConfig(input_gb=2.0))
        assert not any(
            r.truth.anomalous for s in job.sessions for r in s.records
        )

    def test_low_memory_triggers_spills(self):
        sim = MapReduceSimulator(seed=1)
        job = sim.run_job(
            "wordcount",
            MapReduceConfig(input_gb=4.0, io_sort_mb=16,
                            reduce_memory_mb=512),
        )
        spill_msgs = [
            r
            for s in job.sessions
            for r in s.records
            if r.truth.template_id in ("mr.map.spill.pressure",
                                       "mr.reduce.spill.disk")
        ]
        assert spill_msgs

    def test_interleaved_fetcher_orders_vary(self):
        # §2.2: parallel executions cause interchangeable orders.
        sim = MapReduceSimulator(seed=1)
        orders = set()
        for i in range(4):
            job = sim.run_job(
                "wordcount", MapReduceConfig(input_gb=2.0),
                base_time=i * 1e4,
            )
            reduce_sessions = [
                s for s in job.sessions if s.role == "reduce"
            ]
            for session in reduce_sessions:
                fetch_order = tuple(
                    r.truth.fields and r.message.split()[-1]
                    for r in session.records
                    if r.truth.template_id == "mr.fetch.shuffle"
                )
                orders.add(fetch_order)
        assert len(orders) > 1


class TestFaultInjection:
    def test_sigkill_truncates_victim(self):
        sim = MapReduceSimulator(seed=3)
        job = sim.run_job(
            "wordcount",
            MapReduceConfig(input_gb=4.0),
            fault=FaultSpec("sigkill", at_fraction=0.2),
        )
        assert job.fault == "sigkill"
        assert job.affected_sessions

    def test_network_failure_emits_retries(self):
        sim = MapReduceSimulator(seed=3)
        job = sim.run_job(
            "wordcount",
            MapReduceConfig(input_gb=4.0),
            fault=FaultSpec("network"),
        )
        anomalous = [
            r.truth.template_id
            for s in job.sessions
            for r in s.records
            if r.truth.anomalous
        ]
        assert "mr.fetch.failed" in anomalous or (
            "mr.fetch.retry" in anomalous
        )

    def test_node_failure_kills_colocated(self):
        sim = MapReduceSimulator(seed=3)
        job = sim.run_job(
            "wordcount",
            MapReduceConfig(input_gb=6.0),
            fault=FaultSpec("node_failure", at_fraction=0.3),
        )
        assert job.fault == "node_failure"

    def test_invalid_fault_kind(self):
        with pytest.raises(ValueError):
            FaultSpec("meteor")

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            FaultSpec("sigkill", at_fraction=1.5)


class TestSparkSimulator:
    def test_driver_plus_executor_sessions(self):
        sim = SparkSimulator(seed=2)
        job = sim.run_job("wordcount", SparkConfig(executors=3))
        roles = [s.role for s in job.sessions]
        assert roles.count("driver") == 1
        assert roles.count("executor") == 3

    def test_idle_executor_bug(self):
        # Case study 3 (SPARK-19731): executors without tasks.
        sim = SparkSimulator(seed=2)
        job = sim.run_job(
            "wordcount",
            SparkConfig(input_gb=1.0, executors=8),
            idle_executor_bug=True,
        )
        task_counts = []
        for session in job.sessions:
            if session.role != "executor":
                continue
            tasks = [
                r for r in session.records
                if r.truth.template_id == "sp.task.running"
            ]
            task_counts.append(len(tasks))
        assert any(count == 0 for count in task_counts)

    def test_memory_pressure_spills(self):
        sim = SparkSimulator(seed=2)
        job = sim.run_job(
            "kmeans",
            SparkConfig(input_gb=8.0, executor_memory_mb=512,
                        executor_cores=4),
        )
        spills = [
            r for s in job.sessions for r in s.records
            if r.truth.template_id.startswith("sp.spill")
        ]
        assert spills


class TestTezSimulator:
    def test_query_profile_drives_vertices(self):
        sim = TezSimulator(seed=2)
        q6 = sim.run_job("q6", TezConfig(input_gb=2.0))
        q8 = sim.run_job("q8", TezConfig(input_gb=2.0))
        assert q8.config["vertices"] > q6.config["vertices"]

    def test_spill_under_low_memory(self):
        sim = TezSimulator(seed=2)
        job = sim.run_job("q8", TezConfig(task_memory_mb=256))
        spills = [
            r for s in job.sessions for r in s.records
            if r.truth.template_id == "tz.task.spill"
        ]
        assert spills

    def test_vague_operator_keys_emitted(self):
        sim = TezSimulator(seed=2)
        job = sim.run_job("q1", TezConfig(input_gb=1.0))
        ids = {
            r.truth.template_id
            for s in job.sessions for r in s.records
        }
        assert "tz.op.close.done" in ids
        assert "tz.op.finished.closing" in ids


class TestWorkloadGenerator:
    def test_batch_runs(self):
        gen = WorkloadGenerator(seed=1)
        jobs = gen.run_batch("mapreduce", 3)
        assert len(jobs) == 3
        assert all(j.system == "mapreduce" for j in jobs)

    def test_detection_campaign_shape(self):
        gen = WorkloadGenerator(seed=1)
        campaign = gen.detection_campaign("mapreduce")
        # §6.4: 5 configs x (3 injected + 3 clean) = 30 jobs, 15 faulty.
        assert len(campaign) == 30
        assert sum(1 for _, faulty in campaign if faulty) == 15

    def test_unknown_system_rejected(self):
        gen = WorkloadGenerator(seed=1)
        with pytest.raises(ValueError):
            gen.random_spec("flink")

    def test_sessions_of_flattens(self):
        gen = WorkloadGenerator(seed=1)
        jobs = gen.run_batch("tez", 2)
        sessions = sessions_of(jobs)
        assert len(sessions) == sum(len(j.sessions) for j in jobs)


class TestInfraGenerators:
    def test_yarn_stream_mostly_nl(self):
        records = generate_yarn_records(n_apps=10, seed=1)
        assert records
        kv = [r for r in records
              if r.truth.template_id == "yn.nm.heartbeat.kv"]
        nl = [r for r in records
              if r.truth.template_id != "yn.nm.heartbeat.kv"]
        assert len(nl) > len(kv) * 5

    def test_nova_requests_fixed_short_sessions(self):
        # §2.2: OpenStack requests generate short fixed-length sequences.
        records = generate_nova_records(n_requests=20, seed=1)
        sessions = split_sessions(records)
        lengths = {len(s) for s in sessions}
        assert max(lengths) <= 5

    def test_nova_audit_excluded_by_default(self):
        records = generate_nova_records(n_requests=10, seed=1)
        assert not any(
            r.truth.template_id == "nv.audit.kv" for r in records
        )
