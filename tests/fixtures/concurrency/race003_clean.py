"""Known-clean: only plain data crosses the process boundary."""

from concurrent.futures import ProcessPoolExecutor


def square(n: int) -> int:
    return n * n


def run() -> list[int]:
    jobs = [1, 2, 3]
    with ProcessPoolExecutor(max_workers=2) as pool:
        futures = [pool.submit(square, job) for job in jobs]
    return [f.result() for f in futures]
