"""Known-racy: object handed to a thread, then mutated by the giver.

After ``Thread(args=(box,)).start()`` the consumer owns ``box``;
the publisher appending to ``box.items`` afterwards races the
consumer's reads without any common lock.
"""

import threading


class Box:
    def __init__(self) -> None:
        self.items: list[int] = []


def consume(box: Box) -> None:
    for item in box.items:
        print(item)


def publish() -> None:
    box = Box()
    worker = threading.Thread(target=consume, args=(box,))
    worker.start()
    box.items.append(1)
