"""Known-clean: a private helper writes without the lock, but every one
of its intra-class call sites already holds it (guard propagation)."""

import threading


class Buffer:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._items: list[int] = []

    def push(self, item: int) -> None:
        with self._lock:
            self._store(item)

    def push_two(self, a: int, b: int) -> None:
        with self._lock:
            self._store(a)
            self._store(b)

    def _store(self, item: int) -> None:
        self._items = self._items + [item]
