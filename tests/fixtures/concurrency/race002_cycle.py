"""Known-racy: lock-order cycle across two classes.

``Producer.flush`` holds Producer._lock and calls into
``Consumer.accept`` (takes Consumer._lock); ``Consumer.drain`` holds
Consumer._lock and calls back into ``Producer.ack`` (takes
Producer._lock).  Two threads running flush/drain deadlock.
"""

import threading


class Producer:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.partner = Consumer(self)
        self.pending = 0

    def flush(self) -> None:
        with self._lock:
            self.partner.accept()

    def ack(self) -> None:
        with self._lock:
            self.pending = 0


class Consumer:
    def __init__(self, origin: Producer) -> None:
        self._lock = threading.Lock()
        self.origin = origin
        self.seen = 0

    def accept(self) -> None:
        with self._lock:
            self.seen += 1

    def drain(self) -> None:
        with self._lock:
            self.origin.ack()
