"""Known-racy: a registry-style swap writing the lease map bare.

Models the serve-layer bug class the lint gate exists to catch: a model
registry whose acquire path guards its refcount map, while the
hot-swap path — called from the control-plane thread under load —
reassigns the same map without the lock.
"""

import threading


class SwapRegistry:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._leases = {}

    def acquire(self, digest: str) -> None:
        with self._lock:
            self._leases[digest] = self._leases.get(digest, 0) + 1

    def swap_all(self, digest: str) -> None:
        # Racy: rebinds the map while acquire() mutates it under _lock.
        self._leases = {digest: sum(self._leases.values())}
