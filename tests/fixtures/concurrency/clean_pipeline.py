"""Known-clean control: ordinary locked class + process pool on data.

Nothing here should trip any RACE code: one leaf lock guarding all
writes, no nesting, no blocking under the lock, plain tuples into
the executor, nothing mutated after handoff.
"""

import threading
from concurrent.futures import ProcessPoolExecutor


class Ledger:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: list[tuple[str, int]] = []

    def post(self, key: str, amount: int) -> None:
        with self._lock:
            self._entries = self._entries + [(key, amount)]

    def total(self) -> int:
        with self._lock:
            return sum(amount for _, amount in self._entries)


def weigh(item: tuple[str, int]) -> int:
    return item[1] * 2


def run(items: list[tuple[str, int]]) -> list[int]:
    with ProcessPoolExecutor(max_workers=2) as pool:
        return list(pool.map(weigh, items))
