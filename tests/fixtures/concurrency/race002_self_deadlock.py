"""Known-racy: a non-reentrant Lock re-acquired on the same thread.

``PlainGate.outer`` holds the plain ``Lock`` and calls ``_inner``,
which tries to take it again -- instant self-deadlock.  The RLock
twin below is the known-clean control: reentrant acquisition is fine.
"""

import threading


class PlainGate:
    def __init__(self) -> None:
        self._lock = threading.Lock()

    def outer(self) -> None:
        with self._lock:
            self._inner()

    def _inner(self) -> None:
        with self._lock:
            pass


class ReentrantGate:
    def __init__(self) -> None:
        self._lock = threading.RLock()

    def outer(self) -> None:
        with self._lock:
            self._inner()

    def _inner(self) -> None:
        with self._lock:
            pass
