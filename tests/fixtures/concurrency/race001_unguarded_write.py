"""Known-racy: attribute guarded in one method, bare in another."""

import threading


class Counter:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._count = 0

    def incr(self) -> None:
        with self._lock:
            self._count += 1

    def reset(self) -> None:
        # Racy: every other writer takes ``_lock`` first.
        self._count = 0


class AcqRelCounter:
    """Same bug, with explicit acquire()/release() instead of ``with``."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._total = 0

    def add(self, n: int) -> None:
        self._lock.acquire()
        self._total += n
        self._lock.release()

    def clear(self) -> None:
        self._total = 0
