"""Known-racy: a lock-holding object shipped into a process pool.

``Tracker`` owns a ``threading.Lock``; pickling it into a
``ProcessPoolExecutor`` worker forks/spawns with a copy whose lock
state is meaningless (and on fork-start, possibly held forever).
"""

import threading
from concurrent.futures import ProcessPoolExecutor


class Tracker:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.hits = 0

    def record(self) -> None:
        with self._lock:
            self.hits += 1


def work(tracker: Tracker) -> int:
    tracker.record()
    return tracker.hits


def run() -> None:
    tracker = Tracker()
    with ProcessPoolExecutor(max_workers=2) as pool:
        pool.submit(work, tracker)
