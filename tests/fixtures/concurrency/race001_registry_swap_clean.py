"""Known-clean control for the registry swap-under-load fixture."""

import threading


class SwapRegistry:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._leases = {}

    def acquire(self, digest: str) -> None:
        with self._lock:
            self._leases[digest] = self._leases.get(digest, 0) + 1

    def swap_all(self, digest: str) -> None:
        with self._lock:
            self._leases = {digest: sum(self._leases.values())}
