"""Known-clean: every non-__init__ write happens under the class lock."""

import threading


class Counter:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._count = 0

    def incr(self) -> None:
        with self._lock:
            self._count += 1

    def reset(self) -> None:
        with self._lock:
            self._count = 0
