"""Known-racy: blocking calls made while a lock is held.

``tick`` sleeps under the lock, stalling every other thread that
wants it; ``log`` does file IO under the lock, coupling lock hold
time to disk latency.
"""

import threading
import time


class Slow:
    def __init__(self, path: str) -> None:
        self._lock = threading.Lock()
        self._fp = open(path, "a")
        self._n = 0

    def tick(self) -> None:
        with self._lock:
            time.sleep(0.1)
            self._n += 1

    def log(self, line: str) -> None:
        with self._lock:
            self._fp.write(line)
