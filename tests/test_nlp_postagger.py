"""Tests for the Penn Treebank POS tagger."""

from repro.nlp.postagger import tag
from repro.nlp.tags import coarse, is_noun, is_verb


def tags_of(text):
    return [(t.text, t.tag) for t in tag(text)]


class TestBasicTagging:
    def test_figure3_example(self):
        # Paper Figure 3: "Starting MapTask metrics system".
        tagged = tag("Starting MapTask metrics system")
        assert tagged[0].tag == "VBG"
        assert is_noun(tagged[2].tag)  # metrics
        assert is_noun(tagged[3].tag)  # system

    def test_numbers_are_cd(self):
        tagged = tag("read 2264 bytes")
        assert tagged[1].tag == "CD"

    def test_identifiers_are_sym(self):
        tagged = tag("output of map attempt_01")
        assert tagged[-1].tag == "SYM"

    def test_star_is_sym(self):
        tagged = tag("freed by fetcher # * in")
        stars = [t for t in tagged if t.text == "*"]
        assert stars[0].tag == "SYM"

    def test_hostport_is_sym(self):
        tagged = tag("host1:13562 freed by fetcher")
        assert tagged[0].tag == "SYM"

    def test_preposition(self):
        tagged = tag("output of map")
        assert tagged[1].tag == "IN"

    def test_determiner(self):
        tagged = tag("the driver commanded a shutdown")
        assert tagged[0].tag == "DT"
        assert tagged[3].tag == "DT"

    def test_modal_then_base_verb(self):
        tagged = tag("the task will run")
        assert tagged[2].tag == "MD"
        assert tagged[3].tag == "VB"

    def test_to_plus_verb(self):
        tagged = tag("about to shuffle output")
        assert tagged[1].tag == "TO"
        assert tagged[2].tag == "VB"


class TestNounVerbDisambiguation:
    def test_map_as_noun_in_compound(self):
        # "map output" is a noun-noun compound.
        tagged = tag("Starting flush of map output")
        by_text = {t.text: t.tag for t in tagged}
        assert is_noun(by_text["map"])
        assert is_noun(by_text["output"])

    def test_block_sentence_initial_is_noun(self):
        tagged = tag("Block rdd_0_1 stored as values in memory")
        assert is_noun(tagged[0].tag)

    def test_starting_sentence_initial_is_verb(self):
        assert tag("Starting task")[0].tag == "VBG"

    def test_registered_sentence_initial_is_participle(self):
        assert tag("Registered BlockManager")[0].tag in ("VBN", "VBD")

    def test_verb_after_subject(self):
        tagged = tag("fetcher reads bytes")
        assert is_verb(tagged[1].tag)

    def test_noun_after_determiner(self):
        tagged = tag("the fetch completed")
        assert is_noun(tagged[1].tag)

    def test_noun_after_preposition(self):
        tagged = tag("output of map")
        assert is_noun(tagged[2].tag)

    def test_be_plus_participle(self):
        tagged = tag("the task is done")
        assert tagged[3].tag in ("VBN", "JJ")


class TestUnknownWords:
    def test_camel_case_is_nnp(self):
        assert tag("BlockManagerMasterEndpoint")[0].tag == "NNP"

    def test_ly_suffix_is_adverb(self):
        tagged = tag("successfully registered blockwise")
        assert tagged[0].tag == "RB"

    def test_tion_suffix_is_noun(self):
        tagged = tag("the prelocalization finished")
        assert is_noun(tagged[1].tag)

    def test_ing_suffix_unknown_verb(self):
        assert tag("Blorping the queue")[0].tag == "VBG"

    def test_capitalized_unknown_is_nnp(self):
        tagged = tag("stopping Zorkmid now")
        assert tagged[1].tag == "NNP"


class TestCoarseMapping:
    def test_noun_tags_coarsen(self):
        for fine in ("NN", "NNS", "NNP", "NNPS"):
            assert coarse(fine) == "NN"

    def test_adjective_tags_coarsen(self):
        for fine in ("JJ", "JJR", "JJS"):
            assert coarse(fine) == "JJ"

    def test_verb_tags_coarsen(self):
        for fine in ("VB", "VBD", "VBG", "VBN", "VBP", "VBZ"):
            assert coarse(fine) == "VB"

    def test_other_tags_pass_through(self):
        assert coarse("IN") == "IN"
        assert coarse("CD") == "CD"
