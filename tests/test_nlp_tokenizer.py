"""Tests for the log-aware tokenizer."""

from repro.nlp.tokenizer import Token, detokenize, tokenize, words


class TestAtomPreservation:
    def test_identifier_with_underscore_survives(self):
        assert "attempt_01" in words("output of map attempt_01")

    def test_long_hadoop_attempt_id_survives(self):
        text = "Task attempt_1528077349332_0001_m_000000_0 done"
        assert "attempt_1528077349332_0001_m_000000_0" in words(text)

    def test_host_port_survives(self):
        tokens = tokenize("host1:13562 freed by fetcher")
        assert tokens[0].text == "host1:13562"
        assert tokens[0].kind == "hostport"

    def test_ipv4_with_port(self):
        tokens = tokenize("connecting to 10.0.0.3:8020 now")
        kinds = {t.text: t.kind for t in tokens}
        assert kinds["10.0.0.3:8020"] == "hostport"

    def test_ipv4_without_port(self):
        tokens = tokenize("ping 192.168.1.1 ok")
        assert any(
            t.text == "192.168.1.1" and t.kind == "hostport"
            for t in tokens
        )

    def test_absolute_path(self):
        tokens = tokenize("Deleting directory /tmp/spark-abc/blockmgr-1")
        assert any(t.kind == "path" for t in tokens)

    def test_hdfs_uri(self):
        tokens = tokenize("Saved to hdfs://host0:8020/user/root/output")
        path_tokens = [t for t in tokens if t.kind == "path"]
        assert len(path_tokens) == 1
        assert path_tokens[0].text.startswith("hdfs://")

    def test_number_with_decimal(self):
        tokens = tokenize("Finished task 1.0 in stage 0.0")
        numbers = [t.text for t in tokens if t.kind == "number"]
        assert numbers == ["1.0", "0.0"]

    def test_glued_unit_splits(self):
        # "4ms" must split into the number and its unit.
        texts = words("freed by fetcher in 4ms")
        assert "4" in texts and "ms" in texts

    def test_star_is_its_own_kind(self):
        tokens = tokenize("fetcher # * about to shuffle")
        star = [t for t in tokens if t.kind == "star"]
        assert len(star) == 1


class TestWordsAndPunct:
    def test_simple_sentence(self):
        assert words("Starting MapTask metrics system") == [
            "Starting", "MapTask", "metrics", "system",
        ]

    def test_brackets_are_single_tokens(self):
        tokens = tokenize("[fetcher#1] read bytes")
        assert tokens[0].text == "["
        assert tokens[0].kind == "punct"

    def test_hyphenated_word_stays_joined(self):
        assert "map-output" in words("read 10 bytes from map-output")

    def test_apostrophe_word(self):
        assert "don't" in words("we don't retry")

    def test_empty_string(self):
        assert words("") == []

    def test_whitespace_only(self):
        assert words("   \t  ") == []

    def test_offsets_are_correct(self):
        text = "freed by fetcher"
        for token in tokenize(text):
            assert text[token.start:token.end] == token.text


class TestDetokenize:
    def test_round_trip_token_objects(self):
        tokens = tokenize("Starting flush of map output")
        assert detokenize(tokens) == "Starting flush of map output"

    def test_round_trip_strings(self):
        assert detokenize(["a", "b", "c"]) == "a b c"

    def test_token_end_property(self):
        token = Token("abc", "word", 4)
        assert token.end == 7
