"""Disk-fault injection tests (``repro.core.fsio.FaultyFS``).

``FaultyFS`` raises real ``OSError`` values (ENOSPC, EIO, fsync
failure, torn writes) on exactly the Nth call of an operation, so the
durability code paths are exercised the way a full disk would exercise
them — deterministically and without monkeypatching builtins.  Covers
the shim's own semantics, graceful degradation under disk pressure
(checkpoints defer with a bounded-loss warning while serving
continues), the journaled publish rolling back cleanly on a live
``OSError`` at every write step, and a seeded randomized leg
(``REPRO_FAULT_SEED``, CI runs seeds 1-3) asserting the global
invariant: whatever single fault is injected, a publish either
completes and resolves, or raises and leaves the registry fsck-clean.
"""

from __future__ import annotations

import errno
import os
import random

import pytest

from repro.core.fsio import FAULT_OPS, FaultRule, FaultyFS, atomic_replace_write
from repro.query.store import ModelStore
from repro.serve import ModelRegistry, RegistryError, run_fsck
from repro.simulators import WorkloadGenerator
from repro.stream import IterableSource, ListSink, StreamRuntime, TrackerConfig

UNBOUNDED = TrackerConfig(idle_timeout=1e12, max_open_sessions=10**9)


@pytest.fixture()
def store_v1(spark_model) -> ModelStore:
    return ModelStore.from_intellog(spark_model)


@pytest.fixture()
def store_v2(spark_training_jobs) -> ModelStore:
    from repro import IntelLog
    from repro.simulators import sessions_of

    intellog = IntelLog()
    intellog.train(sessions_of(spark_training_jobs[:6]))
    return ModelStore.from_intellog(intellog)


def stream_records(seed: int = 55):
    gen = WorkloadGenerator(seed=seed)
    batch = gen.run_batch("spark", 2)
    records = [r for job in batch for r in job.records]
    records.sort(key=lambda r: r.timestamp)
    return records


class TestFaultyFS:
    def test_fails_exactly_the_nth_call(self, tmp_path):
        fs = FaultyFS().fail("write", at=2)
        fs.write_bytes(tmp_path / "a", b"one")
        with pytest.raises(OSError) as err:
            fs.write_bytes(tmp_path / "b", b"two")
        assert err.value.errno == errno.ENOSPC
        fs.write_bytes(tmp_path / "c", b"three")  # window passed
        assert fs.injected == 1
        assert fs.calls["write"] == 3

    def test_count_zero_fails_forever_from_at(self, tmp_path):
        fs = FaultyFS([FaultRule(op="write", at=2, count=0)])
        fs.write_bytes(tmp_path / "a", b"x")
        for _ in range(3):
            with pytest.raises(OSError):
                fs.write_bytes(tmp_path / "a", b"x")

    def test_counters_are_per_operation(self, tmp_path):
        fs = FaultyFS().fail("fsync", at=1, errno_code=errno.EIO)
        path = tmp_path / "f"
        fs.write_bytes(path, b"data")  # write counter, untouched
        with pytest.raises(OSError) as err:
            fs.fsync_file(path)
        assert err.value.errno == errno.EIO

    def test_torn_write_keeps_a_prefix(self, tmp_path):
        fs = FaultyFS().torn(at=1, keep=0.5)
        path = tmp_path / "torn"
        with pytest.raises(OSError) as err:
            fs.write_bytes(path, b"0123456789")
        assert err.value.errno == errno.EIO
        assert path.read_bytes() == b"01234"  # half landed: torn

    def test_atomic_replace_write_never_tears_the_target(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_replace_write(path, b"v1")
        fs = FaultyFS().torn(at=1, keep=0.3)
        with pytest.raises(OSError):
            atomic_replace_write(path, b"v2-much-longer", fs=fs)
        # The torn bytes hit the temp sibling; the target is intact.
        assert path.read_bytes() == b"v1"


class TestPublishUnderDiskFaults:
    @pytest.mark.parametrize("write_at", [1, 2, 3])
    def test_enospc_at_each_write_step_rolls_back(
        self, tmp_path, store_v1, store_v2, write_at
    ):
        # Publish writes, in order: intent (1), artifact tmp (2),
        # index tmp (3).  A live OSError at any of them must roll back
        # completely: no journal entry, no orphan, v1 untouched.
        root = tmp_path / "reg"
        ModelRegistry(root).publish(store_v1, "m")
        faulty = FaultyFS().fail("write", at=write_at)
        reg = ModelRegistry(root, fs=faulty)
        with pytest.raises(RegistryError):
            reg.publish(store_v2, "m")
        assert faulty.injected == 1
        assert reg.resolve("m")[0] == 1
        report = run_fsck(root)
        assert report.clean, [f.kind for f in report.findings]
        # The failed publish retries cleanly once the disk recovers.
        assert ModelRegistry(root).publish(store_v2, "m")[0] == 2

    def test_fsync_failure_with_durability_rolls_back(
        self, tmp_path, store_v1, store_v2
    ):
        from repro.core import DurabilityConfig

        root = tmp_path / "reg"
        ModelRegistry(root).publish(store_v1, "m")
        faulty = FaultyFS().fail("fsync", at=1, errno_code=errno.EIO)
        reg = ModelRegistry(
            root, durability=DurabilityConfig.durable(), fs=faulty
        )
        with pytest.raises(RegistryError):
            reg.publish(store_v2, "m")
        assert reg.resolve("m")[0] == 1
        assert run_fsck(root).clean


class TestGracefulDegradation:
    def test_checkpoint_defers_under_enospc_and_recovers(
        self, tmp_path, spark_model, caplog
    ):
        records = stream_records()
        faulty = FaultyFS([FaultRule(op="write", at=1, count=0)])
        runtime = StreamRuntime(
            spark_model,
            IterableSource(records),
            sink=ListSink(),
            tracker=UNBOUNDED,
            checkpoint_path=tmp_path / "ckpt.json",
            fs=faulty,
        )
        with caplog.at_level("WARNING", logger="repro.stream.runtime"):
            runtime.drain()
            runtime.checkpoint()
            runtime.checkpoint()
        assert runtime.stats.deferred_checkpoints >= 2
        assert not (tmp_path / "ckpt.json").exists()
        # Serving continued: every session still reported.
        assert runtime.stats.reports > 0
        assert runtime.stats.health != "failed"
        warnings = [
            r for r in caplog.records if "checkpoint deferred" in r.message
        ]
        assert len(warnings) == 1  # once per outage spell, not per try
        assert "replay up to" in warnings[0].getMessage()
        # Disk recovers: the next checkpoint is durable again.
        faulty.rules.clear()
        runtime.checkpoint()
        assert (tmp_path / "ckpt.json").exists()

    def test_deferral_metric_is_exported(self, tmp_path, spark_model):
        faulty = FaultyFS([FaultRule(op="write", at=1, count=0)])
        runtime = StreamRuntime(
            spark_model,
            IterableSource(stream_records()),
            sink=ListSink(),
            tracker=UNBOUNDED,
            checkpoint_path=tmp_path / "c.json",
            fs=faulty,
        )
        runtime.checkpoint()
        [(_, value)] = runtime.registry.get(
            "stream_deferred_checkpoints_total"
        ).samples()
        assert value == 1


class TestSeededFaultSweep:
    def test_any_single_fault_leaves_a_consistent_registry(
        self, tmp_path, store_v1, store_v2
    ):
        """Randomized (seeded) leg: one fault anywhere in the publish
        protocol, invariant checked after every trial.  CI runs this
        under REPRO_FAULT_SEED=1..3."""
        seed = int(os.environ.get("REPRO_FAULT_SEED", "1"))
        rng = random.Random(seed)
        for trial in range(12):
            root = tmp_path / f"reg-{trial}"
            ModelRegistry(root).publish(store_v1, "m")
            op = rng.choice(FAULT_OPS)
            rule = FaultRule(
                op=op,
                at=rng.randint(1, 4),
                errno_code=rng.choice(
                    [errno.ENOSPC, errno.EIO, errno.EDQUOT]
                ),
                keep=(
                    rng.random() if op == "write" and rng.random() < 0.3
                    else None
                ),
            )
            faulty = FaultyFS([rule])
            reg = ModelRegistry(root, fs=faulty)
            try:
                version, digest = reg.publish(store_v2, "m")
                assert (version, digest) == reg.resolve("m")
            except RegistryError:
                assert reg.resolve("m")[0] == 1
                report = run_fsck(root)
                assert report.clean, (
                    trial, rule, [f.kind for f in report.findings],
                )
            # Either way the registry must accept the next publish.
            final = ModelRegistry(root).publish(store_v2, "m")
            assert final[0] == 2
