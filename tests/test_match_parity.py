"""Differential parity harness for the trie-indexed match path.

The match rewrite (``parsing/index.py`` + the tiered
``SpellParser._find_best_idx``) is only safe if it is *extensionally
identical* to the scan implementation it replaced.  This module freezes
the old algorithm — candidate-set scan with greedy-alignment fast path
and LCS fallback, full-key-set fallback on an empty candidate union —
as a reference implementation, and asserts the live parser returns the
same ``MatchResult`` (key, parameters, misaligned flag):

* on every record of every golden detect-report corpus (real simulator
  traffic for all four genres), and
* on hypothesis-generated corpora covering drifted templates, all-star
  messages, shared-prefix keys and tau edge cases.

It also pins the miss-path fix (an unknown message must not trigger a
full LCS scan) and ``match_batch``'s per-message equivalence.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import MetricsRegistry
from repro.parsing.records import Session
from repro.parsing.spell import (
    STAR,
    LogKey,
    MatchResult,
    SpellParser,
    extract_parameters,
    lcs_length,
    mask_message,
)

GOLDEN_DIR = Path(__file__).parent / "golden" / "detect_reports"
GENRES = ["mapreduce", "spark", "tez", "tensorflow"]


# -- frozen reference implementation (the pre-index scan matcher) --------


def _reference_find_best(parser: SpellParser, seq: list[str]) -> LogKey | None:
    """The old ``_find_best``: candidate scan + LCS fallback.

    Candidate iteration is ascending by key index (the tie-break the
    old small-int set iteration produced in practice and the new code
    guarantees); an empty posting union falls back to *all* keys,
    exactly like the old ``_candidates``.
    """
    cands: set[int] = set()
    for token in seq:
        cands |= parser._token_index.get(token, set())
    candidates = sorted(cands) if cands else range(len(parser._keys))

    aligned: LogKey | None = None
    aligned_consts = 0
    for idx in candidates:
        key = parser._keys[idx]
        n_consts = len(key.constant_tokens())
        if n_consts == 0:
            continue
        if extract_parameters(key.tokens, seq) is not None:
            if n_consts > aligned_consts:
                aligned, aligned_consts = key, n_consts
    if aligned is not None:
        return aligned

    best_key: LogKey | None = None
    best_len = 0
    for idx in candidates:
        key = parser._keys[idx]
        consts = key.constant_tokens()
        if min(len(consts), len(seq)) <= best_len:
            continue
        common = lcs_length(consts, seq)
        threshold = min(len(seq), len(key.tokens)) / parser.tau
        if common >= threshold and common > best_len:
            best_key, best_len = key, common
    return best_key


def _reference_match(
    parser: SpellParser, message: str
) -> tuple[str, list[str], bool] | None:
    """The old ``_match_uninstrumented``, reduced to a comparable tuple."""
    masked, raw = mask_message(message)
    if not [t for t in masked if t != STAR]:
        reserved = next(
            (k for k in parser._keys if not k.constant_tokens()), None
        )
        if reserved is None:
            return None
        return (reserved.key_id, list(raw), False)
    key = _reference_find_best(parser, masked)
    if key is None:
        return None
    params = extract_parameters(key.tokens, raw)
    if params is None:
        return (key.key_id, [], True)
    return (key.key_id, params, False)


def _as_tuple(
    result: MatchResult | None,
) -> tuple[str, list[str], bool] | None:
    if result is None:
        return None
    return (result.key.key_id, result.parameters, result.misaligned)


def _assert_parity(parser: SpellParser, messages: list[str]) -> None:
    batch = parser.match_batch(messages)
    for message, batched in zip(messages, batch):
        expected = _reference_match(parser, message)
        got = _as_tuple(parser.match(message))
        assert got == expected, (
            f"match() diverged from scan reference on {message!r}: "
            f"{got} != {expected}"
        )
        assert _as_tuple(batched) == expected, (
            f"match_batch() diverged from scan reference on "
            f"{message!r}: {_as_tuple(batched)} != {expected}"
        )


# -- golden-corpus differential (real traffic, all genres) ---------------


def _fixture(genre: str) -> dict:
    return json.loads((GOLDEN_DIR / f"{genre}.json").read_text())


def _messages(session_dicts: list[dict]) -> list[str]:
    return [
        record.message
        for data in session_dicts
        for record in Session.from_dict(data)
    ]


@pytest.mark.parametrize("genre", GENRES)
def test_parity_on_golden_corpus(genre: str) -> None:
    fixture = _fixture(genre)
    parser = SpellParser()
    for message in _messages(fixture["train_sessions"]):
        parser.consume(message)
    _assert_parity(parser, _messages(fixture["detect_sessions"]))


@pytest.mark.parametrize("genre", GENRES)
def test_parity_on_training_corpus_itself(genre: str) -> None:
    """Every training message must resolve identically too (these hit
    the exact path almost exclusively — the trie's bread and butter)."""
    fixture = _fixture(genre)
    parser = SpellParser()
    train = _messages(fixture["train_sessions"])
    for message in train:
        parser.consume(message)
    _assert_parity(parser, train[:500])


# -- hypothesis property tests ------------------------------------------

#: Constant words (tokenize as "word" — survive masking) and variable
#: tokens (ident/number/hostport/path — masked to ``*``).
_CONSTANTS = ["alpha", "beta", "gamma", "delta", "epsilon", "commit"]
_VARIABLES = ["17", "badger42", "10.0.0.1:8020", "/tmp/part-0", "3.14"]

_token = st.sampled_from(_CONSTANTS + _VARIABLES)
_message = st.lists(_token, min_size=1, max_size=8).map(" ".join)
_corpus = st.lists(_message, min_size=1, max_size=25)
_queries = st.lists(_message, min_size=1, max_size=15)
_tau = st.sampled_from([1.05, 1.3, 1.7, 2.5, 4.0])


def _trained(corpus: list[str], tau: float) -> SpellParser:
    parser = SpellParser(tau=tau)
    for message in corpus:
        parser.consume(message)
    return parser


@settings(max_examples=120, deadline=None)
@given(corpus=_corpus, queries=_queries, tau=_tau)
def test_parity_random_corpora(
    corpus: list[str], queries: list[str], tau: float
) -> None:
    """Drifted templates: consume() merges mutate templates mid-stream,
    and every query (plus the corpus itself) must still match exactly
    like the scan reference — across tau edge cases."""
    parser = _trained(corpus, tau)
    _assert_parity(parser, queries + corpus)


@settings(max_examples=60, deadline=None)
@given(
    corpus=_corpus,
    queries=st.lists(
        st.lists(st.sampled_from(_VARIABLES), min_size=1, max_size=5).map(
            " ".join
        ),
        min_size=1,
        max_size=8,
    ),
)
def test_parity_all_star_messages(
    corpus: list[str], queries: list[str]
) -> None:
    """All-variable messages exercise the reserved-key branch — with
    and without a reserved key in the trained set."""
    parser = _trained(corpus, 1.7)
    _assert_parity(parser, queries)


@settings(max_examples=60, deadline=None)
@given(
    suffixes=st.lists(
        st.lists(_token, min_size=0, max_size=4), min_size=1, max_size=8
    ),
    queries=_queries,
)
def test_parity_shared_prefix_keys(
    suffixes: list[list[str]], queries: list[str]
) -> None:
    """Keys sharing a long constant prefix stress the trie's branching
    (one walk must surface every alignable key, most-specific wins)."""
    prefix = "alpha beta gamma"
    corpus = [" ".join([prefix] + tail) for tail in suffixes]
    parser = _trained(corpus, 1.7)
    _assert_parity(
        parser, queries + corpus + [prefix, prefix + " 99 delta"]
    )


# -- miss-path regression (satellite: no candidate explosion) ------------


def test_miss_path_runs_no_lcs_scan() -> None:
    """A message sharing no constant token with any key provably cannot
    match; the old code degenerated to a full-key LCS scan here, the
    index proves the miss without a single LCS call."""
    registry = MetricsRegistry()
    parser = SpellParser().instrument(registry)
    for i in range(50):
        parser.consume(f"alpha beta task {i} finished in {i} ms")
        parser.consume(f"gamma delta stage {i} commit")
    assert parser.match("zork quux unrelated phrase") is None
    lcs = registry.get("spell_lcs_comparisons_total")
    assert lcs is not None and int(lcs.value) == 0
    paths = {
        labels["path"]: int(value)
        for labels, value in registry.get(
            "spell_index_hits_total"
        ).samples()
    }
    assert paths.get("miss") == 1


def test_lcs_fallback_bounded_by_candidates() -> None:
    """When a drifted message does share tokens, the LCS scan touches at
    most the posting-union candidates — never the whole key set."""
    registry = MetricsRegistry()
    parser = SpellParser().instrument(registry)
    for i in range(40):
        parser.consume(f"noise{i:02d} filler{i:02d} payload line")
    parser.consume("alpha beta gamma delta epsilon")
    # Shares only "alpha" (1 key's postings) but cannot align exactly.
    result = parser.match("alpha zork quux")
    lcs = registry.get("spell_lcs_comparisons_total")
    assert int(lcs.value) <= 1, (
        "LCS fallback scanned beyond the candidate set"
    )
    expected = _reference_match(parser, "alpha zork quux")
    assert _as_tuple(result) == expected
