"""Integration tests: trained Spark and Tez models end to end."""

import pytest

from repro.detection.report import AnomalyKind
from repro.simulators import FaultSpec, SparkConfig, TezConfig


class TestSparkModel:
    def test_figure8_groups_exist(self, spark_model):
        graph = spark_model.hw_graph()
        for label in ("acl", "block", "task", "driver", "memory",
                      "directory", "shutdown"):
            assert label in graph.groups, sorted(graph.groups)

    def test_block_group_has_three_subroutine_kinds(self, spark_model):
        block = spark_model.hw_graph().groups["block"]
        signatures = set(block.model.subroutines)
        assert () in signatures  # s3: no identifier
        assert any(sig for sig in signatures)  # identifier-keyed s1/s2

    def test_task_group_keyed_by_tid(self, spark_model):
        task = spark_model.hw_graph().groups["task"]
        assert any(
            "TID" in sig for sig in task.model.subroutines
        )

    def test_clean_spark_job_passes(self, spark_model, spark_simulator):
        job = spark_simulator.run_job(
            "sort", SparkConfig(input_gb=2.0), base_time=7e5
        )
        report = spark_model.detect_job(job.sessions, job.app_id)
        assert not report.anomalous

    @pytest.mark.parametrize("kind", ["network", "sigkill"])
    def test_spark_fault_detected(self, spark_model, spark_simulator,
                                  kind):
        job = spark_simulator.run_job(
            "sort",
            SparkConfig(input_gb=2.0),
            fault=FaultSpec(kind, at_fraction=0.4),
            base_time=8e5,
        )
        report = spark_model.detect_job(job.sessions, job.app_id)
        assert report.anomalous

    def test_idle_executor_bug_reported(self, spark_model,
                                        spark_simulator):
        # Case 3: sessions lacking the 'task' group are erroneous
        # HW-graph instances even though no unexpected message appears.
        job = spark_simulator.run_job(
            "wordcount",
            SparkConfig(input_gb=1.0, executors=8),
            base_time=9e5,
            idle_executor_bug=True,
        )
        report = spark_model.detect_job(job.sessions, job.app_id)
        missing = [
            anomaly
            for session in report.sessions
            for anomaly in session.by_kind(AnomalyKind.MISSING_GROUP)
        ]
        assert any(a.group == "task" for a in missing)

    def test_spill_reported_as_unexpected(self, spark_model,
                                          spark_simulator):
        job = spark_simulator.run_job(
            "kmeans",
            SparkConfig(input_gb=8.0, executor_memory_mb=512,
                        executor_cores=4),
            base_time=10e5,
        )
        report = spark_model.detect_job(job.sessions, job.app_id)
        unexpected = [
            anomaly
            for session in report.sessions
            for anomaly in session.by_kind(
                AnomalyKind.UNEXPECTED_MESSAGE
            )
        ]
        assert any(
            "spill" in (a.message or "").lower() for a in unexpected
        )


class TestTezModel:
    def test_core_groups_exist(self, tez_model):
        graph = tez_model.hw_graph()
        assert "vertex" in graph.groups or "dag" in graph.groups
        assert "task" in graph.groups

    def test_clean_query_passes(self, tez_model, tez_simulator):
        job = tez_simulator.run_job(
            "q3", TezConfig(input_gb=2.0), base_time=7e5
        )
        report = tez_model.detect_job(job.sessions, job.app_id)
        assert not report.anomalous

    def test_tez_network_fault_detected(self, tez_model, tez_simulator):
        job = tez_simulator.run_job(
            "q8",
            TezConfig(input_gb=4.0),
            fault=FaultSpec("network", at_fraction=0.4),
            base_time=8e5,
        )
        report = tez_model.detect_job(job.sessions, job.app_id)
        assert report.anomalous

    def test_tez_spill_detected(self, tez_model, tez_simulator):
        job = tez_simulator.run_job(
            "q8", TezConfig(input_gb=5.0, task_memory_mb=256),
            base_time=9e5,
        )
        report = tez_model.detect_job(job.sessions, job.app_id)
        assert report.anomalous

    def test_vague_operator_keys_do_not_alarm(self, tez_model,
                                              tez_simulator):
        # '6 Close done' style keys are learned during training and must
        # not trigger unexpected-message reports on clean queries.
        job = tez_simulator.run_job(
            "q1", TezConfig(input_gb=1.0), base_time=10e5
        )
        report = tez_model.detect_job(job.sessions, job.app_id)
        unexpected = [
            anomaly
            for session in report.sessions
            for anomaly in session.by_kind(
                AnomalyKind.UNEXPECTED_MESSAGE
            )
            if "Close done" in (anomaly.message or "")
        ]
        assert not unexpected
