"""Tests for the self-healing layer (``repro.serve.supervisor``).

Covers the supervisor policy in isolation (deterministic seeded
backoff, rolling restart budget, quarantine escalation) and wired into
``DetectionService``: a transient-error tenant auto-restarts with
backoff and keeps its exactly-once guarantees; a persistent offender
lands in ``quarantined`` with the exception type and traceback tail on
``/tenants``; a fully quarantined fleet stops the serve loop and exits
the CLI with status 2 (the satellite regression for silent ``str(exc)``
failure notes lives here too).
"""

from __future__ import annotations

import json

import pytest

from repro.core import ServeConfig, SupervisorConfig
from repro.parsing.records import LogRecord
from repro.query.store import ModelStore
from repro.serve import (
    DetectionService,
    ModelRegistry,
    TenantSpec,
    TenantSupervisor,
    apply_tenants,
)
from repro.serve.supervisor import BACKOFF, QUARANTINED, RUNNING
from repro.simulators import WorkloadGenerator
from repro.stream import IterableSource, ListSink

UNBOUNDED = dict(idle_timeout=1e12, max_open_sessions=10**9)


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def spark_records(seed: int, jobs: int = 2) -> list[LogRecord]:
    gen = WorkloadGenerator(seed=seed)
    batch = gen.run_batch("spark", jobs)
    records = [r for job in batch for r in job.records]
    records.sort(key=lambda r: r.timestamp)
    return records


class FlakySource:
    """Raises for the first ``failures`` polls, then streams cleanly."""

    def __init__(self, records, failures: int = 1) -> None:
        self._inner = IterableSource(records)
        self.failures = failures
        self.polls = 0

    def poll(self, max_records):
        self.polls += 1
        if self.polls <= self.failures:
            raise RuntimeError(f"transient blip #{self.polls}")
        return self._inner.poll(max_records)

    def exhausted(self):
        return self._inner.exhausted()

    def backlog(self):
        return self._inner.backlog()

    def position(self):
        return self._inner.position()

    def seek(self, position):
        self._inner.seek(position)


@pytest.fixture()
def registry(tmp_path, spark_model) -> ModelRegistry:
    reg = ModelRegistry(tmp_path / "registry")
    reg.publish(ModelStore.from_intellog(spark_model), "spark-prod")
    return reg


def service_with(registry, clock, **sup) -> DetectionService:
    return DetectionService(
        registry,
        ServeConfig(workers=0, quantum=64, poll_interval=1.0),
        supervisor=TenantSupervisor(
            SupervisorConfig(**sup), clock=clock
        ),
        clock=clock,
        sleep=lambda s: clock.advance(s),
    )


class TestSupervisorPolicy:
    def test_backoff_is_deterministic_per_tenant(self):
        clock = FakeClock()
        cfg = SupervisorConfig(backoff_base=1.0, backoff_seed=42)
        a = TenantSupervisor(cfg, clock=clock)
        b = TenantSupervisor(cfg, clock=clock)
        a.record_failure("t1", "x")
        b.record_failure("t1", "x")
        assert (
            a.status("t1")["next_restart_in"]
            == b.status("t1")["next_restart_in"]
        )
        # Different tenants get de-synchronized (different seeds).
        b.record_failure("t2", "x")
        history_t1 = b.status("t1")["restart_history"][0]["delay_s"]
        history_t2 = b.status("t2")["restart_history"][0]["delay_s"]
        assert history_t1 != history_t2

    def test_consecutive_failures_grow_the_delay(self):
        clock = FakeClock()
        sup = TenantSupervisor(
            SupervisorConfig(
                backoff_base=1.0, backoff_jitter=0.0, restart_budget=10
            ),
            clock=clock,
        )
        delays = []
        for _ in range(4):
            sup.record_failure("t1", "x")
            delays.append(
                sup.status("t1")["restart_history"][-1]["delay_s"]
            )
            sup.record_restart("t1")
            clock.advance(0.001)
        assert delays == sorted(delays)
        assert delays[-1] > delays[0]

    def test_due_only_after_backoff_elapses(self):
        clock = FakeClock()
        sup = TenantSupervisor(
            SupervisorConfig(backoff_base=1.0), clock=clock
        )
        sup.record_failure("t1", "x")
        assert sup.due() == []
        clock.advance(2.0)  # past base * (1 + jitter)
        assert sup.due() == ["t1"]
        sup.record_restart("t1")
        assert sup.state("t1") == RUNNING
        assert sup.total_restarts() == 1

    def test_budget_exhaustion_quarantines_with_reason_and_trace(self):
        clock = FakeClock()
        sup = TenantSupervisor(
            SupervisorConfig(restart_budget=2, restart_window=100.0),
            clock=clock,
        )
        assert sup.record_failure("t1", "boom 1", "tb1") == BACKOFF
        clock.advance(1.0)
        assert sup.record_failure("t1", "boom 2", "tb2") == BACKOFF
        clock.advance(1.0)
        state = sup.record_failure("t1", "boom 3", "tb3")
        assert state == QUARANTINED
        status = sup.status("t1")
        assert status["state"] == QUARANTINED
        assert status["quarantine_reason"] == "boom 3"
        assert status["quarantine_trace"] == "tb3"
        assert sup.quarantined() == ["t1"]
        assert sup.due() == []  # quarantined tenants never come due

    def test_window_pruning_forgives_old_failures(self):
        clock = FakeClock()
        sup = TenantSupervisor(
            SupervisorConfig(restart_budget=2, restart_window=10.0),
            clock=clock,
        )
        for _ in range(5):  # one failure every 60s: never quarantines
            assert sup.record_failure("t1", "x") == BACKOFF
            sup.record_restart("t1")
            clock.advance(60.0)
        assert sup.state("t1") == RUNNING

    def test_success_resets_backoff_exponent_not_window(self):
        clock = FakeClock()
        sup = TenantSupervisor(
            SupervisorConfig(
                backoff_base=1.0,
                backoff_jitter=0.0,
                restart_budget=2,
                restart_window=1000.0,
            ),
            clock=clock,
        )
        sup.record_failure("t1", "x")
        sup.record_restart("t1")
        sup.record_success("t1")
        clock.advance(1.0)
        sup.record_failure("t1", "x")
        # Exponent reset: second spell starts back at the base delay.
        history = sup.status("t1")["restart_history"]
        delays = [
            e["delay_s"] for e in history if e["event"] == "backoff"
        ]
        assert delays[0] == delays[1]
        # Window not reset: a third failure still exhausts the budget.
        sup.record_restart("t1")
        clock.advance(1.0)
        assert sup.record_failure("t1", "x") == QUARANTINED

    def test_forget_drops_all_state(self):
        sup = TenantSupervisor(SupervisorConfig(), clock=FakeClock())
        sup.record_failure("t1", "x")
        sup.forget("t1")
        assert sup.state("t1") == RUNNING
        assert sup.status("t1")["restarts"] == 0


class TestServiceSelfHealing:
    def test_transient_failure_restarts_with_backoff(self, registry):
        clock = FakeClock()
        svc = service_with(
            registry, clock, backoff_base=1.0, restart_budget=5
        )
        records = spark_records(55)
        sink = ListSink()
        spec = TenantSpec(
            tenant_id="flaky", model="spark-prod", **UNBOUNDED
        )
        svc.attach(
            spec, source=FlakySource(records, failures=1), sink=sink
        )
        svc.cycle()  # pump raises -> failure recorded, backoff starts
        tenant = svc.tenant("flaky")
        assert tenant.failure is not None
        assert svc.supervisor.state("flaky") == BACKOFF
        svc.cycle()  # backoff not elapsed: tenant stays parked
        assert tenant.restarts == 0
        clock.advance(3.0)
        svc.cycle()  # due -> restart -> healthy pump
        assert tenant.restarts == 1
        assert tenant.failure is None
        assert svc.supervisor.state("flaky") == RUNNING
        svc.drain()
        assert {r.session_id for r in sink.reports} == {
            r.session_id for r in records
        }
        fids = sink.emitted_ids()
        assert len(fids) == len(set(fids))
        [(labels, value)] = svc.metrics.get(
            "serve_restarts_total"
        ).samples()
        assert labels == {"tenant": "flaky"} and value == 1
        status = svc.tenants_status()
        sup = status["tenants"][0]["supervisor"]
        assert sup["restarts"] == 1
        events = [e["event"] for e in sup["restart_history"]]
        assert events == ["backoff", "restart"]

    def test_budget_exhaustion_lands_in_quarantine_with_traceback(
        self, registry
    ):
        clock = FakeClock()
        svc = service_with(
            registry, clock,
            backoff_base=1.0, restart_budget=2, restart_window=1000.0,
        )
        spec = TenantSpec(
            tenant_id="doomed", model="spark-prod", **UNBOUNDED
        )
        svc.attach(
            spec,
            source=FlakySource(spark_records(55), failures=10**9),
            sink=ListSink(),
        )
        for _ in range(12):
            svc.cycle()
            clock.advance(5.0)
        tenant = svc.tenant("doomed")
        assert tenant.quarantined is not None
        status = svc.tenants_status()
        entry = status["tenants"][0]
        assert entry["health"] == "quarantined"
        assert "RuntimeError" in entry["failure"]
        assert "RuntimeError" in entry["failure_trace"]
        sup = entry["supervisor"]
        assert sup["state"] == QUARANTINED
        assert "RuntimeError" in sup["quarantine_trace"]
        assert status["fleet"]["quarantined"] == ["doomed"]
        [(_, value)] = svc.metrics.get(
            "serve_quarantined_tenants"
        ).samples()
        assert value == 1
        # Quarantine is permanent: no further restarts are scheduled.
        restarts = tenant.restarts
        clock.advance(1000.0)
        svc.cycle()
        assert tenant.restarts == restarts

    def test_pump_failure_keeps_exception_type_and_trace(
        self, registry
    ):
        # Regression: the failure note used to be the bare str(exc),
        # which for ValueError("") rendered as 'pump: ' — type gone,
        # traceback gone, /tenants useless for diagnosis.
        clock = FakeClock()
        svc = service_with(registry, clock)

        class _Empty(Exception):
            pass

        class _Source(IterableSource):
            def poll(self, max_records):
                raise _Empty("")

        spec = TenantSpec(
            tenant_id="t1", model="spark-prod", **UNBOUNDED
        )
        svc.attach(spec, source=_Source([]), sink=ListSink())
        svc.cycle()
        tenant = svc.tenant("t1")
        assert tenant.failure.startswith("pump: _Empty:")
        assert "_Empty" in tenant.failure_trace
        assert tenant.status()["failure_trace"] == tenant.failure_trace

    def test_all_quarantined_stops_the_run_loop(self, registry):
        clock = FakeClock()
        svc = service_with(
            registry, clock,
            backoff_base=0.5, restart_budget=1, restart_window=1000.0,
        )
        spec = TenantSpec(
            tenant_id="t1", model="spark-prod", **UNBOUNDED
        )
        svc.attach(
            spec,
            source=FlakySource(spark_records(55), failures=10**9),
            sink=ListSink(),
        )
        status = svc.run(max_cycles=100)
        assert svc.fleet_dead
        assert status["fleet"]["dead"] is True
        assert status["fleet"]["quarantined"] == ["t1"]

    def test_changed_spec_revives_a_quarantined_tenant(
        self, registry, spark_training_jobs, tmp_path
    ):
        from repro import IntelLog
        from repro.simulators import sessions_of

        # A byte-distinct v2 so the reload sees a real version change.
        v2_model = IntelLog()
        v2_model.train(sessions_of(spark_training_jobs[:6]))
        registry.publish(
            ModelStore.from_intellog(v2_model), "spark-prod"
        )
        clock = FakeClock()
        svc = service_with(registry, clock, restart_budget=1)
        spec = TenantSpec(
            tenant_id="t1", model="spark-prod", version=1, **UNBOUNDED
        )
        svc.attach(
            spec,
            source=FlakySource(spark_records(55), failures=10**9),
            sink=ListSink(),
        )
        for _ in range(6):
            svc.cycle()
            clock.advance(5.0)
        assert svc.tenant("t1").quarantined is not None
        log_path = tmp_path / "t1.log"
        log_path.write_text("")
        new_spec = TenantSpec(
            tenant_id="t1", model="spark-prod", version=2,
            log_path=str(log_path), **UNBOUNDED
        )
        summary = apply_tenants(svc, [new_spec])
        assert set(summary) == {
            "attached", "detached", "swapped", "kept"
        }
        tenant = svc.tenant("t1")
        assert tenant.quarantined is None
        assert svc.supervisor.state("t1") == RUNNING


class TestServeExitCodes:
    def test_dead_fleet_exits_2_with_fleet_line(
        self, tmp_path, spark_model, monkeypatch, capsys
    ):
        from repro.cli import main
        from repro.serve.tenant import Tenant

        reg = ModelRegistry(tmp_path / "registry")
        reg.publish(ModelStore.from_intellog(spark_model), "prod")
        log_path = tmp_path / "app.log"
        log_path.write_text("")
        tenants = tmp_path / "tenants.json"
        tenants.write_text(json.dumps({
            "tenants": [{
                "id": "t1", "model": "prod",
                "log": str(log_path),
                "reports": str(tmp_path / "t1.jsonl"),
            }],
        }))

        def explode(self, quantum):
            raise RuntimeError("wedged")

        monkeypatch.setattr(Tenant, "pump", explode)
        code = main([
            "serve",
            "--tenants", str(tenants),
            "--registry", str(tmp_path / "registry"),
            "--drain", "--workers", "0",
            "--restart-budget", "1",
            "--poll-interval", "0.01",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "FLEET dead" in err
        assert "error: tenant t1 is parked" in err
