"""Golden-corpus regression suite: the serialized model is byte-stable.

A frozen corpus (``tests/golden/corpus.jsonl``) is trained and the
canonical serialized model (:meth:`ModelStore.canonical_bytes`) must hash
to the pinned digest in ``tests/golden/expected.json`` — across repeated
runs, across ``workers=1`` vs ``workers=4``, and across interpreter hash
randomisation (``PYTHONHASHSEED``).  A digest change means the trained
model changed: if intentional, regenerate with
``python tools/regen_golden.py`` and commit the diff; if not, this suite
just caught a regression (or nondeterminism).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import IntelLog
from repro.parsing.records import Session
from repro.query.store import ModelStore

GOLDEN_DIR = Path(__file__).parent / "golden"
CORPUS_PATH = GOLDEN_DIR / "corpus.jsonl"
EXPECTED_PATH = GOLDEN_DIR / "expected.json"

REGEN_HINT = (
    "golden model drifted — if the change is intentional, run "
    "`python tools/regen_golden.py` and commit the updated expected.json"
)


def load_corpus() -> list[Session]:
    return [
        Session.from_dict(json.loads(line))
        for line in CORPUS_PATH.read_text().splitlines()
        if line.strip()
    ]


@pytest.fixture(scope="module")
def expected() -> dict:
    return json.loads(EXPECTED_PATH.read_text())


@pytest.fixture(scope="module")
def corpus() -> list[Session]:
    return load_corpus()


def train_digest(corpus, **train_kwargs) -> tuple[str, object]:
    intellog = IntelLog()
    summary = intellog.train(corpus, **train_kwargs)
    return ModelStore.from_intellog(intellog).digest(), summary


class TestGoldenModel:
    def test_serial_matches_pinned_digest(self, corpus, expected):
        digest, summary = train_digest(corpus)
        assert digest == expected["digest"], REGEN_HINT
        assert summary.sessions == expected["summary"]["sessions"]
        assert summary.messages == expected["summary"]["messages"]
        assert summary.log_keys == expected["summary"]["log_keys"]
        assert summary.intel_keys == expected["summary"]["intel_keys"]
        assert (
            summary.entity_groups == expected["summary"]["entity_groups"]
        )
        assert (
            summary.critical_groups
            == expected["summary"]["critical_groups"]
        )
        assert summary.ignored_keys == expected["summary"]["ignored_keys"]

    def test_repeated_runs_are_byte_identical(self, corpus):
        first, _ = train_digest(corpus)
        second, _ = train_digest(corpus)
        assert first == second

    def test_parallel_workers_match_pinned_digest(self, corpus, expected):
        """workers=1 (inline pipeline), workers=2 and workers=4 (real
        process pools over the default size-targeted batch layout) all
        reproduce the serial model byte-for-byte."""
        for workers in (1, 2, 4):
            digest, _ = train_digest(corpus, workers=workers)
            assert digest == expected["digest"], (
                f"workers={workers}: {REGEN_HINT}"
            )

    def test_batch_layout_cannot_move_the_digest(self, corpus, expected):
        """Batching is purely a distribution knob: extreme layouts
        (per-session batches, one giant batch) leave the model bytes
        untouched."""
        for batch_records in (1, 10**9):
            digest, _ = train_digest(
                corpus, workers=2, batch_records=batch_records
            )
            assert digest == expected["digest"], (
                f"batch_records={batch_records}: {REGEN_HINT}"
            )

    @pytest.mark.parametrize("hash_seed", ["0", "42"])
    def test_digest_stable_under_hash_randomisation(
        self, expected, hash_seed
    ):
        """Fresh interpreters with different PYTHONHASHSEED values agree:
        no set/dict iteration order leaks into the serialized model."""
        script = (
            "import json, sys; "
            "sys.path.insert(0, {src!r}); "
            "from tests.test_golden_model import load_corpus, "
            "train_digest; "
            "print(train_digest(load_corpus())[0])"
        ).format(src=str(Path(__file__).parents[1] / "src"))
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hash_seed
        env["PYTHONPATH"] = os.pathsep.join(
            p
            for p in (
                str(Path(__file__).parents[1] / "src"),
                str(Path(__file__).parents[1]),
                env.get("PYTHONPATH", ""),
            )
            if p
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        assert result.stdout.strip() == expected["digest"], REGEN_HINT


class TestCanonicalSerialization:
    def test_canonical_bytes_round_trip(self, corpus):
        intellog = IntelLog()
        intellog.train(corpus)
        store = ModelStore.from_intellog(intellog)
        restored = ModelStore.from_json(
            store.canonical_bytes().decode("ascii")
        )
        assert restored.digest() == store.digest()

    def test_restored_model_serializes_identically(self, corpus, expected):
        """Save → load → save is a fixed point of the serialization."""
        intellog = IntelLog()
        intellog.train(corpus)
        store = ModelStore.from_intellog(intellog)
        again = ModelStore.from_intellog(store.to_intellog())
        assert again.digest() == store.digest() == expected["digest"]
