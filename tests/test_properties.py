"""Property-based tests (hypothesis) on core data structures and
invariants."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import DetectionCounts, score_predictions
from repro.graph.grouping import (
    group_entities,
    longest_common_phrase,
    longest_common_word_substring,
)
from repro.graph.lifespan import Lifespan, RelationMatrix
from repro.graph.subroutine import Subroutine
from repro.nlp.lemmatizer import singularize
from repro.nlp.tokenizer import tokenize, words
from repro.parsing.spell import (
    STAR,
    SpellParser,
    extract_parameters,
    lcs_length,
    lcs_merge,
)

tokens = st.text(
    alphabet=string.ascii_lowercase, min_size=1, max_size=6
)
token_lists = st.lists(tokens, min_size=0, max_size=12)
printable_text = st.text(
    alphabet=string.ascii_letters + string.digits + " .:_-/#",
    max_size=80,
)


class TestTokenizerProperties:
    @given(printable_text)
    @settings(max_examples=200)
    def test_offsets_always_match_source(self, text):
        for token in tokenize(text):
            assert text[token.start:token.end] == token.text

    @given(printable_text)
    def test_no_empty_tokens(self, text):
        assert all(t.text for t in tokenize(text))

    @given(printable_text)
    def test_tokens_cover_non_whitespace(self, text):
        covered = sum(len(t.text) for t in tokenize(text))
        non_ws = len("".join(text.split()))
        assert covered == non_ws


class TestLcsProperties:
    @given(token_lists, token_lists)
    def test_symmetric(self, a, b):
        assert lcs_length(a, b) == lcs_length(b, a)

    @given(token_lists, token_lists)
    def test_bounded_by_shorter(self, a, b):
        assert lcs_length(a, b) <= min(len(a), len(b))

    @given(token_lists)
    def test_self_lcs_is_length(self, a):
        assert lcs_length(a, a) == len(a)

    @given(token_lists, token_lists)
    def test_merge_matches_both_inputs(self, a, b):
        merged = lcs_merge(a, b)
        # Every constant of the merge appears in both inputs in order.
        constants = [t for t in merged if t != STAR]
        assert lcs_length(constants, [t for t in a if t != STAR]) == len(
            constants
        )
        assert lcs_length(constants, [t for t in b if t != STAR]) == len(
            constants
        )

    @given(token_lists)
    def test_merge_idempotent_on_equal(self, a):
        assert lcs_merge(a, a) == list(a) or STAR in a


class TestExtractParametersProperties:
    @given(token_lists)
    def test_exact_template_matches_itself(self, seq):
        template = [t for t in seq if t != STAR]
        assert extract_parameters(template, template) == []

    @given(
        st.lists(tokens, min_size=1, max_size=6),
        st.lists(tokens, min_size=0, max_size=3),
    )
    def test_star_captures_inserted_tokens(self, template, inserted):
        # Build template "t0 * t1 t2..." and a message with tokens
        # inserted at the star; the capture must equal the insertion.
        if any(t in template for t in inserted):
            return  # anchor ambiguity is allowed to capture differently
        full_template = [template[0], STAR, *template[1:]]
        message = [template[0], *inserted, *template[1:]]
        params = extract_parameters(full_template, message)
        assert params == [" ".join(inserted)]


class TestSpellProperties:
    @given(st.lists(printable_text.filter(lambda s: s.strip()),
                    min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_every_training_message_matches_some_key(self, messages):
        parser = SpellParser()
        for message in messages:
            parser.consume(message)
        for message in messages:
            if not words(message):
                continue
            assert parser.match(message) is not None

    @given(st.lists(printable_text, min_size=0, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_key_count_bounded_by_messages(self, messages):
        parser = SpellParser()
        for message in messages:
            parser.consume(message)
        assert len(parser) <= max(len(messages), 0 if messages else 0)
        if messages:
            # Repeats of one message always collapse to a single key.
            repeat = SpellParser()
            for _ in range(5):
                repeat.consume(messages[0])
            assert len(repeat) == 1


class TestGroupingProperties:
    @given(st.lists(st.lists(tokens, min_size=1, max_size=3),
                    min_size=0, max_size=15))
    @settings(max_examples=100)
    def test_every_entity_lands_in_some_group(self, phrases):
        result = group_entities(phrases)
        for phrase in {tuple(p) for p in phrases if p}:
            assert result.groups_for(phrase)

    @given(st.lists(tokens, min_size=1, max_size=4),
           st.lists(tokens, min_size=1, max_size=4))
    def test_lcp_is_contiguous_in_both(self, a, b):
        common = longest_common_phrase(a, b)
        if common:
            assert longest_common_word_substring(a, b) == common

    @given(st.lists(tokens, min_size=1, max_size=4))
    def test_lcs_substring_self(self, a):
        assert longest_common_word_substring(a, a) == tuple(a)


class TestSubroutineProperties:
    @given(st.lists(
        st.lists(st.sampled_from("ABCDE"), min_size=1, max_size=5),
        min_size=1, max_size=10,
    ))
    def test_critical_keys_appear_in_all_instances(self, sequences):
        sub = Subroutine(signature=())
        for seq in sequences:
            sub.update(seq)
        for key in sub.critical_keys:
            assert all(key in seq for seq in sequences)

    @given(st.lists(
        st.lists(st.sampled_from("ABCDE"), min_size=1, max_size=5),
        min_size=1, max_size=10,
    ))
    def test_before_relations_hold_in_every_sequence(self, sequences):
        sub = Subroutine(signature=())
        for seq in sequences:
            sub.update(seq)
        for a, b in sub.before:
            for seq in sequences:
                if a in seq and b in seq:
                    assert seq.index(a) <= seq.index(b)

    @given(st.lists(st.sampled_from("ABCDE"), min_size=1, max_size=8))
    def test_training_sequence_validates_against_itself(self, seq):
        sub = Subroutine(signature=())
        sub.update(seq)
        assert sub.check_instance(seq) == []


class TestLifespanProperties:
    spans = st.tuples(
        st.floats(min_value=0, max_value=100, allow_nan=False),
        st.floats(min_value=0, max_value=100, allow_nan=False),
    ).map(lambda p: Lifespan(min(p), max(p)))

    @given(spans, spans)
    def test_relation_antisymmetry(self, a, b):
        matrix = RelationMatrix(min_support=1)
        matrix.observe_session({"a": a, "b": b})
        rel_ab = matrix.relation("a", "b")
        rel_ba = matrix.relation("b", "a")
        inverse = {"PARENT": "CHILD", "CHILD": "PARENT",
                   "BEFORE": "AFTER", "AFTER": "BEFORE",
                   "PARALLEL": "PARALLEL"}
        assert rel_ba == inverse[rel_ab]


class TestMetricsProperties:
    @given(st.lists(st.tuples(st.booleans(), st.booleans()), max_size=50))
    def test_counts_partition_population(self, pairs):
        labels = [t for t, _ in pairs]
        preds = [p for _, p in pairs]
        counts = score_predictions(labels, preds)
        total = (counts.true_positives + counts.false_positives
                 + counts.false_negatives + counts.true_negatives)
        assert total == len(pairs)

    @given(st.integers(0, 100), st.integers(0, 100), st.integers(0, 100))
    def test_scores_bounded(self, tp, fp, fn):
        counts = DetectionCounts(tp, fp, fn, 0)
        assert 0.0 <= counts.precision <= 1.0
        assert 0.0 <= counts.recall <= 1.0
        assert 0.0 <= counts.f_measure <= 1.0


class TestLemmatizerProperties:
    @given(tokens)
    def test_singularize_idempotent(self, word):
        once = singularize(word)
        assert singularize(once) == once
