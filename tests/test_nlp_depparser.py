"""Tests for the shallow UD dependency parser (paper §3.2, Table 3)."""

from repro.nlp.depparser import contains_clause, parse


def arcs_by_relation(parse_result):
    out = {}
    for arc in parse_result.arcs:
        out.setdefault(arc.relation, []).append(arc)
    return out


def token_text(parse_result, index):
    return parse_result.tokens[index].text


class TestRootDetection:
    def test_simple_active_clause(self):
        result = parse("fetcher reads bytes")
        assert token_text(result, result.root) == "reads"

    def test_sentence_initial_participle(self):
        result = parse("Registered BlockManager")
        assert token_text(result, result.root) == "Registered"

    def test_sentence_initial_gerund(self):
        result = parse("Starting MapTask metrics system")
        assert token_text(result, result.root) == "Starting"

    def test_infinitive_after_about_to(self):
        result = parse("fetcher#1 about to shuffle output of map attempt_01")
        assert token_text(result, result.root) == "shuffle"

    def test_no_clause_no_root(self):
        result = parse("memoryLimit 12345 mergeThreshold 99")
        assert result.root is None


class TestSubjects:
    def test_nsubj_active(self):
        result = parse("fetcher reads bytes")
        rels = arcs_by_relation(result)
        assert token_text(result, rels["nsubj"][0].dep) == "fetcher"

    def test_nsubjpass_with_by_phrase(self):
        # Figure 1 line 3: "host1:13562 freed by fetcher#1 in 4ms".
        result = parse("host1:13562 freed by fetcher#1 in 4ms")
        rels = arcs_by_relation(result)
        assert "nsubjpass" in rels
        assert token_text(result, rels["nsubjpass"][0].dep) == "host1:13562"

    def test_agent_in_nmod(self):
        result = parse("host1:13562 freed by fetcher in 4ms")
        rels = arcs_by_relation(result)
        nmod_texts = [token_text(result, a.dep) for a in rels["nmod"]]
        assert "fetcher" in nmod_texts


class TestObjects:
    def test_dobj(self):
        result = parse("fetcher reads bytes")
        rels = arcs_by_relation(result)
        assert token_text(result, rels["dobj"][0].dep) == "bytes"

    def test_nmod_after_preposition(self):
        result = parse("read 2264 bytes from map-output for attempt_01")
        rels = arcs_by_relation(result)
        nmods = [token_text(result, a.dep) for a in rels["nmod"]]
        assert "map-output" in nmods

    def test_multi_sentence_two_roots(self):
        # Figure 4's two-clause log key yields two ROOT arcs.
        result = parse(
            "Finished task 1.0 in stage 0.0 ( TID 4 ) . "
            "2010 bytes result sent to driver"
        )
        roots = [a for a in result.arcs if a.relation == "ROOT"]
        assert len(roots) == 2
        texts = {token_text(result, a.dep) for a in roots}
        assert texts == {"Finished", "sent"}

    def test_second_clause_subject(self):
        result = parse(
            "Finished task 1.0 in stage 0.0 . 2010 bytes result sent to "
            "driver"
        )
        rels = arcs_by_relation(result)
        subj_texts = [
            token_text(result, a.dep)
            for a in rels.get("nsubj", []) + rels.get("nsubjpass", [])
        ]
        assert "result" in subj_texts


class TestClauseDetection:
    def test_natural_language_message(self):
        # §2.2: a message is NL if it contains at least one clause.
        assert contains_clause("fetcher#1 about to shuffle output of map")
        assert contains_clause("Registered BlockManager")
        assert contains_clause("the task is done")

    def test_kv_dump_is_not_clause(self):
        assert not contains_clause("bufstart 0 kvstart 26214396")

    def test_empty_string(self):
        assert not contains_clause("")
