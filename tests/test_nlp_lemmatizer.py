"""Tests for the rule-based lemmatizer."""

from repro.nlp.lemmatizer import (
    lemmatize,
    lemmatize_phrase,
    singularize,
    verb_base,
)


class TestSingularize:
    def test_regular_plural(self):
        assert singularize("tasks") == "task"
        assert singularize("blocks") == "block"
        assert singularize("fetchers") == "fetcher"

    def test_ies_plural(self):
        assert singularize("directories") == "directory"
        assert singularize("retries") == "retry"

    def test_es_plural(self):
        assert singularize("caches") == "cache"
        assert singularize("processes") == "process"

    def test_irregular(self):
        assert singularize("vertices") == "vertex"
        assert singularize("indices") == "index"
        assert singularize("children") == "child"

    def test_s_final_singulars_untouched(self):
        assert singularize("status") == "status"
        assert singularize("progress") == "progress"
        assert singularize("class") == "class"

    def test_already_singular(self):
        assert singularize("task") == "task"

    def test_lowercases(self):
        assert singularize("Tasks") == "task"

    def test_invariant_mass_nouns(self):
        assert singularize("data") == "data"
        assert singularize("metrics") == "metrics"


class TestVerbBase:
    def test_gerund(self):
        assert verb_base("starting") == "start"
        assert verb_base("shuffling") == "shuffle"
        assert verb_base("registering") == "register"

    def test_gerund_doubled_consonant(self):
        assert verb_base("committing") == "commit"
        assert verb_base("spilling") == "spill"

    def test_past_regular(self):
        assert verb_base("finished") == "finish"
        assert verb_base("assigned") == "assign"

    def test_past_with_final_e(self):
        assert verb_base("stored") == "store"
        assert verb_base("created") == "create"
        assert verb_base("initialized") == "initialize"

    def test_irregular_past(self):
        assert verb_base("sent") == "send"
        assert verb_base("wrote") == "write"
        assert verb_base("ran") == "run"

    def test_irregular_participle(self):
        assert verb_base("written") == "write"
        assert verb_base("held") == "hold"

    def test_third_person(self):
        assert verb_base("reads") == "read"
        assert verb_base("frees") == "free"

    def test_auxiliaries(self):
        assert verb_base("is") == "be"
        assert verb_base("was") == "be"
        assert verb_base("has") == "have"

    def test_base_unchanged(self):
        assert verb_base("shuffle") == "shuffle"


class TestLemmatizeDispatch:
    def test_noun_tag_singularizes(self):
        assert lemmatize("tasks", "NNS") == "task"

    def test_verb_tag_gets_base(self):
        assert lemmatize("started", "VBD") == "start"

    def test_other_tags_lowercase_only(self):
        assert lemmatize("Remote", "JJ") == "remote"


class TestLemmatizePhrase:
    def test_head_noun_singularized(self):
        # Only the head of the phrase is singularized.
        assert lemmatize_phrase(
            ["map", "completion", "events"], ["NN", "NN", "NNS"]
        ) == ["map", "completion", "event"]

    def test_non_head_words_kept(self):
        assert lemmatize_phrase(
            ["metrics", "system"], ["NNS", "NN"]
        ) == ["metrics", "system"]

    def test_empty_phrase(self):
        assert lemmatize_phrase([], []) == []

    def test_single_noun(self):
        assert lemmatize_phrase(["blocks"], ["NNS"]) == ["block"]
