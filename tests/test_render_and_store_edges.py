"""Edge-case tests for rendering, the message store and reports."""

import json

from repro.extraction.intelkey import IntelMessage
from repro.graph.render import render_summary, render_tree, to_json
from repro.query import MessageStore


class TestRenderEdges:
    def test_empty_graph(self):
        from repro.graph.hwgraph import HWGraph

        graph = HWGraph()
        assert render_tree(graph) == ""
        assert "groups: 0" in render_summary(graph)
        assert json.loads(to_json(graph))["groups"] == {}

    def test_critical_only_filter(self, mr_model):
        graph = mr_model.hw_graph()
        full = render_tree(graph)
        filtered = render_tree(graph, critical_only=True)
        assert len(filtered.splitlines()) <= len(full.splitlines())
        # Every critical group still appears.
        for label in graph.critical_groups():
            assert label in filtered

    def test_subroutine_rendering(self, mr_model):
        graph = mr_model.hw_graph()
        tree = render_tree(graph, show_subroutines=True)
        assert "s{" in tree

    def test_fetcher_subroutine_in_tree(self, mr_model):
        # Figure 1's subroutine surfaces under the 'fetcher' group with
        # its three operations.
        graph = mr_model.hw_graph()
        fetcher = graph.groups.get("fetcher")
        assert fetcher is not None
        assert fetcher.critical
        signatures = set(fetcher.model.subroutines)
        assert any(
            "FETCHER" in sig or "ATTEMPT" in sig for sig in signatures
        )


class TestStoreEdges:
    def test_empty_store(self):
        store = MessageStore()
        assert len(store) == 0
        assert store.group_by_identifier("X") == {}
        assert store.value_series("bytes") == []
        assert MessageStore.from_json(store.to_json()).all() == []

    def test_filter_chaining(self):
        store = MessageStore([
            IntelMessage(key_id="K1", timestamp=1.0, session_id="a",
                         message="m1",
                         identifiers={"T": ["1"]}),
            IntelMessage(key_id="K1", timestamp=2.0, session_id="b",
                         message="m2",
                         identifiers={"T": ["2"]}),
            IntelMessage(key_id="K2", timestamp=3.0, session_id="a",
                         message="m3"),
        ])
        result = store.with_key("K1").in_session("a")
        assert len(result) == 1
        assert result.all()[0].message == "m1"

    def test_group_by_custom_key(self):
        store = MessageStore([
            IntelMessage(key_id=f"K{i}", timestamp=float(i),
                         session_id="s", message=f"m{i}")
            for i in range(4)
        ])
        groups = store.group_by(
            lambda m: ("even" if int(m.timestamp) % 2 == 0 else "odd",)
        )
        assert len(groups["even"]) == 2
        assert len(groups["odd"]) == 2

    def test_multivalued_identifiers_fan_out(self):
        store = MessageStore([
            IntelMessage(key_id="K", timestamp=0.0, session_id="s",
                         message="m",
                         identifiers={"T": ["1", "2"]}),
        ])
        groups = store.group_by_identifier("T")
        assert set(groups) == {"1", "2"}


class TestWorkloadConfigs:
    def test_five_configs_are_five(self):
        from repro.simulators import WorkloadGenerator

        for system in ("mapreduce", "spark", "tez"):
            configs = WorkloadGenerator.five_configs(system)
            assert len(configs) == 5
            assert all(gb > 0 and mb >= 1024 for gb, mb in configs)

    def test_cluster_colocated_lookup(self):
        from repro.simulators import YarnCluster

        cluster = YarnCluster(nodes=2, rng=0)
        a = cluster.allocate("application_1_0001", "map",
                             node=cluster.nodes[0])
        b = cluster.allocate("application_1_0001", "map",
                             node=cluster.nodes[0])
        c = cluster.allocate("application_1_0001", "map",
                             node=cluster.nodes[1])
        colocated = cluster.containers_on(cluster.nodes[0])
        assert {x.container_id for x in colocated} == {
            a.container_id, b.container_id,
        }
        assert c not in colocated
