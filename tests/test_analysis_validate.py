"""Static validation of HW-graph artifacts (repro.analysis.validate).

Property-style mutation tests: take a trained HW-graph from the Spark
simulator, apply one seeded structural corruption, and assert the exact
diagnostic code it triggers.  A clean trained model must report zero
diagnostics (the acceptance bar for ``repro lint-model``).
"""

from __future__ import annotations

import copy

import pytest

from repro import IntelLog, IntelLogConfig
from repro.analysis import (
    DIAGNOSTIC_CODES,
    Severity,
    validate_graph,
    validate_model_dict,
    validate_round_trip,
)
from repro.core.errors import ModelValidationError, ModelValidationWarning
from repro.extraction.intelkey import FieldSpec
from repro.graph.hwgraph import HWGraph
from repro.graph.lifespan import PARENT
from repro.query import ModelStore
from repro.simulators import WorkloadGenerator, sessions_of


@pytest.fixture()
def graph(spark_model):
    """A mutable deep copy of the trained Spark HW-graph."""
    return copy.deepcopy(spark_model.hw_graph())


def codes(graph):
    return validate_graph(graph).codes


class TestCleanModel:
    def test_trained_graph_has_zero_diagnostics(self, spark_model):
        report = validate_graph(spark_model.hw_graph())
        assert len(report) == 0, report.render()

    def test_mr_and_tez_graphs_clean_too(self, mr_model, tez_model):
        for model in (mr_model, tez_model):
            report = validate_graph(model.hw_graph())
            assert len(report) == 0, report.render()

    def test_round_trip_validates_clean(self, spark_model):
        report = validate_round_trip(spark_model.hw_graph())
        assert len(report) == 0, report.render()

    def test_serialized_dict_validates_clean(self, spark_model):
        data = spark_model.hw_graph().to_dict()
        report = validate_model_dict(data)
        assert len(report) == 0, report.render()

    def test_graph_is_nontrivial(self, spark_model):
        # The zero-diagnostics assertions above are only meaningful if the
        # graph actually has hierarchy, ordering and subroutines to check.
        graph = spark_model.hw_graph()
        assert any(n.children for n in graph.groups.values())
        assert any(n.before for n in graph.groups.values())
        assert any(n.model.subroutines for n in graph.groups.values())


class TestMutations:
    """Each seeded corruption triggers its documented diagnostic code."""

    def test_hw001_dropped_group_leaves_dangling_edges(self, graph):
        victim = next(
            label for label, node in graph.groups.items()
            if node.parent or node.children or node.before
        )
        graph.groups.pop(victim)
        report = validate_graph(graph)
        assert "HW001" in report.codes
        assert all(d.severity is Severity.ERROR
                   for d in report.with_code("HW001"))

    def test_hw001_unknown_intel_key_in_group(self, graph):
        label = next(iter(sorted(graph.groups)))
        graph.groups[label].key_ids.add("K9999")
        assert "HW001" in codes(graph)

    def test_hw002_before_back_edge_makes_cycle(self, graph):
        src = next(
            label for label, node in sorted(graph.groups.items())
            if node.before
        )
        tgt = sorted(graph.groups[src].before)[0]
        graph.groups[tgt].before.add(src)
        assert "HW002" in codes(graph)

    def test_hw003_child_listed_without_parent_pointer(self, graph):
        parent = next(
            label for label, node in sorted(graph.groups.items())
            if node.children
        )
        stray = next(
            label for label in sorted(graph.groups)
            if label != parent
            and label not in graph.groups[parent].children
        )
        graph.groups[parent].children.append(stray)
        assert "HW003" in codes(graph)

    def test_hw003_duplicate_child_entry(self, graph):
        parent = next(
            label for label, node in sorted(graph.groups.items())
            if node.children
        )
        graph.groups[parent].children.append(
            graph.groups[parent].children[0]
        )
        assert "HW003" in codes(graph)

    def test_hw004_parent_not_backed_by_lifespans(self, graph):
        child = next(
            label for label, node in sorted(graph.groups.items())
            if node.parent
        )
        old_parent = graph.groups[child].parent
        new_parent = next(
            label for label in sorted(graph.groups)
            if label not in (child, old_parent)
            and label not in graph.descendants(child)
            and graph.relations.relation(label, child) != PARENT
        )
        graph.groups[old_parent].children.remove(child)
        graph.groups[child].parent = new_parent
        graph.groups[new_parent].children.append(child)
        report = validate_graph(graph)
        assert "HW004" in report.codes
        # A consistent (if wrong) tree: the forest check stays quiet.
        assert "HW003" not in report.codes

    def test_hw005_subroutine_references_foreign_key(self, graph):
        label = next(
            label for label, node in sorted(graph.groups.items())
            if node.model.subroutines
        )
        sub = next(iter(graph.groups[label].model.subroutines.values()))
        sub.keys.append("K9999")
        assert "HW005" in codes(graph)

    def test_hw006_critical_group_unreachable(self, graph):
        crit = graph.critical_groups()[0]
        node = graph.groups[crit]
        if node.parent is not None:
            graph.groups[node.parent].children.remove(crit)
        node.parent = "ghost-root"
        found = codes(graph)
        assert "HW006" in found
        assert "HW001" in found  # the dangling parent itself

    def test_ik001_field_position_out_of_range(self, graph):
        key_id, key = next(
            (k, v) for k, v in sorted(graph.intel_keys.items())
            if v.fields
        )
        bad = FieldSpec(position=999, role=key.fields[0].role,
                        name=key.fields[0].name)
        key.fields = key.fields + (bad,)
        assert "IK001" in codes(graph)

    def test_ik001_duplicate_slot_assignment(self, graph):
        key_id, key = next(
            (k, v) for k, v in sorted(graph.intel_keys.items())
            if v.fields
        )
        key.fields = key.fields + (key.fields[0],)
        assert "IK001" in codes(graph)

    def test_sr001_corrupted_signature(self, graph):
        label = next(
            label for label, node in sorted(graph.groups.items())
            if any(sig for sig in node.model.subroutines)
        )
        model = graph.groups[label].model
        sig = next(sig for sig in model.subroutines if sig)
        sub = model.subroutines.pop(sig)
        bad_sig = sig + sig  # duplicated types: non-deterministic
        sub.signature = bad_sig
        model.subroutines[bad_sig] = sub
        assert "SR001" in codes(graph)

    def test_sr001_empty_subroutine_model(self, graph):
        label = next(
            label for label, node in sorted(graph.groups.items())
            if node.model.subroutines
        )
        sub = next(iter(graph.groups[label].model.subroutines.values()))
        sub.keys = []
        sub.key_counts = {}
        assert "SR001" in codes(graph)

    def test_every_mutation_code_is_registered(self):
        for code in ("HW001", "HW002", "HW003", "HW004", "HW005",
                     "HW006", "IK001", "SR001", "RT001"):
            assert code in DIAGNOSTIC_CODES


class TestSerializationRoundTrip:
    def test_to_dict_store_load_validates_clean(self, spark_model,
                                                tmp_path):
        path = tmp_path / "model.json"
        ModelStore.from_intellog(spark_model).save(path)
        store = ModelStore.load_path(path)
        report = store.validate()
        assert len(report) == 0, report.render()

    def test_reloaded_graph_matches_original(self, spark_model, tmp_path):
        original = spark_model.hw_graph()
        path = tmp_path / "model.json"
        ModelStore.from_intellog(spark_model).save(path)
        reloaded = HWGraph.from_dict(
            ModelStore.load_path(path).hw_graph
        )
        assert reloaded.to_dict() == original.to_dict()
        assert set(reloaded.groups) == set(original.groups)
        assert reloaded.critical_groups() == original.critical_groups()
        assert reloaded.training_sessions == original.training_sessions
        # Statistics survive: criticality and relations, not just shape.
        for label, node in original.groups.items():
            twin = reloaded.groups[label]
            assert twin.critical == node.critical
            assert twin.session_count == node.session_count

    def test_reloaded_model_detects_like_original(self, spark_model,
                                                  tmp_path):
        gen = WorkloadGenerator(seed=99)
        sessions = list(sessions_of(gen.run_batch("spark", 1)))
        path = tmp_path / "model.json"
        ModelStore.from_intellog(spark_model).save(path)
        restored = ModelStore.load_path(path).to_intellog()
        original_report = spark_model.detect_job(sessions, job_id="j")
        restored_report = restored.detect_job(sessions, job_id="j")
        assert (restored_report.to_dict()
                == original_report.to_dict())

    def test_corrupted_dict_reports_rt001(self):
        report = validate_model_dict({"groups": "not-a-mapping"})
        assert report.codes == {"RT001"}

    def test_dangling_reference_survives_serialization(self, graph):
        victim = next(
            label for label, node in graph.groups.items()
            if node.parent or node.children or node.before
        )
        graph.groups.pop(victim)
        data = graph.to_dict()
        report = validate_model_dict(data)
        assert "HW001" in report.codes


class TestTrainWiring:
    """validate_model config: warn-by-default, strict raises."""

    def _tiny_training(self):
        gen = WorkloadGenerator(seed=3)
        return list(sessions_of(gen.run_batch("spark", 6)))

    def test_clean_training_emits_no_warnings(self, recwarn):
        intellog = IntelLog()
        intellog.train(self._tiny_training())
        assert not [
            w for w in recwarn.list
            if issubclass(w.category, ModelValidationWarning)
        ]

    def test_corrupt_graph_warns_in_default_mode(self, spark_model):
        intellog = IntelLog()
        intellog.graph = copy.deepcopy(spark_model.hw_graph())
        victim = next(
            label for label, node in intellog.graph.groups.items()
            if node.parent or node.children
        )
        intellog.graph.groups.pop(victim)
        with pytest.warns(ModelValidationWarning):
            intellog._validate_graph()

    def test_corrupt_graph_raises_in_strict_mode(self, spark_model):
        config = IntelLogConfig(strict_validation=True)
        intellog = IntelLog(config)
        intellog.graph = copy.deepcopy(spark_model.hw_graph())
        victim = next(
            label for label, node in intellog.graph.groups.items()
            if node.parent or node.children
        )
        intellog.graph.groups.pop(victim)
        with pytest.raises(ModelValidationError) as excinfo:
            intellog._validate_graph()
        assert excinfo.value.diagnostics
        assert any(d.code == "HW001" for d in excinfo.value.diagnostics)

    def test_validation_can_be_disabled(self, spark_model):
        config = IntelLogConfig(validate_model=False)
        intellog = IntelLog(config)
        summary = intellog.train(self._tiny_training())
        assert summary.entity_groups > 0
