"""Tests for the online streaming runtime (``repro.stream``).

Covers the ISSUE checklist: batch-vs-stream report parity on seeded
simulator logs, out-of-order timestamps within a session, idle-timeout
vs. end-marker closure, LRU eviction under the session cap, and the
checkpoint/resume round-trip — plus the file-follower source and the
``split_sessions`` default-bucket regression.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import IntelLog, split_sessions
from repro.parsing.records import LogRecord, session_bucket
from repro.simulators import WorkloadGenerator
from repro.stream import (
    FileFollowSource,
    IterableSource,
    ListSink,
    SessionTracker,
    StreamRuntime,
    TrackerConfig,
)

#: Tracker settings that never close early — for exact-parity tests.
#: (End markers stay off: in an arbitrarily reordered stream a marker
#: can arrive mid-session and legitimately split it; the markers get
#: their own parity test on time-ordered input.)
UNBOUNDED = dict(
    idle_timeout=1e12, max_open_sessions=10**9, end_markers=(),
)


def record(ts, message, sid="", app=""):
    return LogRecord(timestamp=float(ts), level="INFO", source="T",
                     message=message, session_id=sid, app_id=app)


@pytest.fixture(scope="module")
def detection_records(spark_model):
    """Seeded detection workload: three Spark jobs, time-interleaved."""
    gen = WorkloadGenerator(seed=77)
    jobs = gen.run_batch("spark", 3)
    records = [r for job in jobs for r in job.records]
    records.sort(key=lambda r: r.timestamp)
    return records


def run_stream(model, records, **tracker_kwargs):
    sink = ListSink()
    runtime = StreamRuntime(
        model, IterableSource(records), sink=sink,
        tracker=TrackerConfig(**tracker_kwargs),
    )
    stats = runtime.run(once=True)
    return sink, stats


def reports_by_session(reports):
    return {r.session_id: r.to_dict() for r in reports}


class TestBatchParity:
    def test_stream_equals_batch_reports(self, spark_model,
                                         detection_records):
        batch = spark_model.detect_job(split_sessions(detection_records))
        sink, stats = run_stream(spark_model, detection_records,
                                 **UNBOUNDED)
        assert reports_by_session(sink.reports) == reports_by_session(
            batch.sessions
        )
        assert stats.reports == len(batch.sessions)

    def test_parity_with_default_end_markers(self, spark_model,
                                             detection_records):
        """Built-in end markers must only fire on true final messages,
        so they close sessions early without ever splitting one."""
        batch = spark_model.detect_job(split_sessions(detection_records))
        sink, stats = run_stream(spark_model, detection_records,
                                 idle_timeout=1e12)
        assert reports_by_session(sink.reports) == reports_by_session(
            batch.sessions
        )
        assert stats.closed_by_reason.get("end_marker", 0) > 0

    def test_out_of_order_timestamps_within_session(self, spark_model,
                                                    detection_records):
        """Records arriving out of order still yield batch-identical
        reports: sessions are time-sorted at close, exactly like
        ``split_sessions`` sorts its buckets."""
        rng = np.random.default_rng(5)
        shuffled = list(detection_records)
        rng.shuffle(shuffled)
        batch = spark_model.detect_job(split_sessions(shuffled))
        sink, _ = run_stream(spark_model, shuffled, **UNBOUNDED)
        assert reports_by_session(sink.reports) == reports_by_session(
            batch.sessions
        )


class TestSessionTracker:
    def test_end_marker_closes_immediately(self):
        tracker = SessionTracker(TrackerConfig(
            idle_timeout=1e9, end_markers=(r"session over",),
        ))
        assert tracker.observe(record(1.0, "working", sid="a")) == []
        closed = tracker.observe(record(2.0, "session over", sid="a"))
        assert [c.reason for c in closed] == ["end_marker"]
        assert closed[0].session.session_id == "a"
        assert len(closed[0].session) == 2
        assert tracker.open_count == 0

    def test_idle_timeout_closes_in_event_time(self):
        tracker = SessionTracker(TrackerConfig(
            idle_timeout=10.0, end_markers=(),
        ))
        tracker.observe(record(0.0, "m1", sid="a"))
        tracker.observe(record(5.0, "m1", sid="b"))
        # Watermark jumps far past a's last activity; b stays fresh.
        closed = tracker.observe(record(100.0, "m2", sid="b"))
        assert [c.session.session_id for c in closed] == ["a"]
        assert [c.reason for c in closed] == ["idle"]
        assert tracker.open_count == 1

    def test_idle_scan_handles_lru_order_mismatch(self):
        """A session can be LRU-recent but event-time stale (late replay
        of an old record); the idle scan must still find older entries
        behind it."""
        tracker = SessionTracker(TrackerConfig(
            idle_timeout=10.0, end_markers=(),
        ))
        tracker.observe(record(100.0, "new", sid="fresh"))
        # "stale" is most-recently-active in LRU terms but already
        # beyond the event-time horizon; a front-of-LRU-only scan would
        # miss it behind the fresh session.
        closed = tracker.observe(record(1.0, "old straggler", sid="stale"))
        assert [c.session.session_id for c in closed] == ["stale"]
        assert [c.reason for c in closed] == ["idle"]
        assert tracker.open_count == 1

    def test_eviction_keeps_open_sessions_under_cap(self):
        cap = 5
        tracker = SessionTracker(TrackerConfig(
            idle_timeout=1e9, max_open_sessions=cap, end_markers=(),
        ))
        closed = []
        for i in range(50):
            closed += tracker.observe(
                record(float(i), "m", sid=f"s{i:02d}")
            )
        assert tracker.peak_open <= cap
        assert tracker.open_count == cap
        assert tracker.evictions == 45
        assert all(c.reason == "evicted" for c in closed)
        # Least-recently-active evicted first.
        assert closed[0].session.session_id == "s00"

    def test_sessions_sorted_at_close(self):
        tracker = SessionTracker(TrackerConfig(end_markers=()))
        tracker.observe(record(3.0, "c", sid="a"))
        tracker.observe(record(1.0, "a", sid="a"))
        tracker.observe(record(2.0, "b", sid="a"))
        (closed,) = tracker.flush()
        assert [r.message for r in closed.session] == ["a", "b", "c"]

    def test_state_roundtrip(self):
        tracker = SessionTracker(TrackerConfig(end_markers=()))
        tracker.observe(record(1.0, "x", sid="a", app="app1"))
        tracker.observe(record(2.0, "y", sid="b"))
        restored = SessionTracker(TrackerConfig(end_markers=()))
        restored.load_state(tracker.state_dict())
        assert restored.open_count == 2
        assert restored.watermark == tracker.watermark
        a, b = (c.session for c in restored.flush())
        assert (a.session_id, a.app_id) == ("a", "app1")
        assert [r.message for r in b] == ["y"]


class TestBoundedMemory:
    def test_peak_sessions_bounded_under_10x_load(self, spark_model,
                                                  detection_records):
        """Acceptance: with 10x more containers than the cap, the
        runtime's peak tracked-session count stays under the cap."""
        n_sessions = len(split_sessions(detection_records))
        cap = max(1, n_sessions // 10)
        sink, stats = run_stream(
            spark_model, detection_records,
            idle_timeout=1e12, max_open_sessions=cap, end_markers=(),
        )
        assert n_sessions >= 10 * cap
        assert stats.peak_open_sessions <= cap
        assert stats.evictions > 0
        # Every session still gets at least one report (evicted slices
        # re-open), and every record is accounted for.
        assert sum(
            r.message_count for r in sink.reports
        ) == len(detection_records)


class TestCheckpointResume:
    def test_pause_resume_roundtrip(self, spark_model, detection_records,
                                    tmp_path):
        ckpt = tmp_path / "model.stream-ckpt.json"
        batch = spark_model.detect_job(split_sessions(detection_records))

        sink1 = ListSink()
        first = StreamRuntime(
            spark_model, IterableSource(detection_records), sink=sink1,
            tracker=TrackerConfig(**UNBOUNDED), checkpoint_path=ckpt,
        )
        assert not first.resumed
        half = len(detection_records) // 2
        first.run(once=True, max_records=half)
        assert first.stats.records == half
        assert first.tracker.open_count > 0  # paused mid-job, not flushed

        # A brand-new process: fresh runtime over the same input file.
        sink2 = ListSink()
        second = StreamRuntime(
            spark_model, IterableSource(detection_records), sink=sink2,
            tracker=TrackerConfig(**UNBOUNDED), checkpoint_path=ckpt,
        )
        assert second.resumed
        stats = second.run(once=True)

        # No record replayed, no report re-emitted, exact batch parity.
        assert stats.records == len(detection_records)
        combined = sink1.reports + sink2.reports
        assert len(combined) == len(batch.sessions)
        assert reports_by_session(combined) == reports_by_session(
            batch.sessions
        )

    def test_resume_without_checkpoint_file_starts_fresh(
        self, spark_model, detection_records, tmp_path
    ):
        runtime = StreamRuntime(
            spark_model, IterableSource(detection_records),
            checkpoint_path=tmp_path / "none.json",
        )
        assert not runtime.resumed


class TestLiveAlerts:
    def test_unexpected_message_alerts_immediately(self, spark_model,
                                                   detection_records):
        alerts = []
        novel = record(
            detection_records[-1].timestamp + 1.0,
            "flux capacitor desynchronized beyond repair",
            sid=detection_records[-1].session_id,
        )
        runtime = StreamRuntime(
            spark_model, IterableSource(detection_records + [novel]),
            tracker=TrackerConfig(**UNBOUNDED),
            on_alert=alerts.append,
        )
        stats = runtime.run(once=True)
        assert stats.live_alerts == len(alerts) == 1
        assert alerts[0].kind == "unexpected_message"
        assert "flux capacitor" in alerts[0].message
        # The authoritative anomaly also lands in the session report.
        assert stats.anomalies_by_kind.get("unexpected_message", 0) >= 1


class TestFileFollowSource:
    HEADER = "2019-06-22 10:15:{s:02d},000 INFO [t] org.x.Worker: {msg}"

    def test_follow_parses_appends_and_attributes_sessions(self, tmp_path):
        path = tmp_path / "app.log"
        path.write_text(
            self.HEADER.format(s=1, msg="start container_e01_0001") + "\n"
        )
        source = FileFollowSource(path, formatter="hadoop")
        assert source.poll(10) == []  # record held back for continuations
        with path.open("a") as fp:
            fp.write(
                "  at java.lang.Thread.run(Thread.java:748)\n"
                + self.HEADER.format(s=2, msg="done container_e01_0001")
                + "\n"
            )
        (first,) = source.poll(10)
        assert first.session_id == "container_e01_0001"
        assert "Thread.run" in first.message  # continuation folded in
        (second,) = source.flush_pending()
        assert second.message == "done container_e01_0001"

    def test_partial_lines_wait_for_newline(self, tmp_path):
        path = tmp_path / "app.log"
        path.write_text(self.HEADER.format(s=1, msg="one") + "\n")
        source = FileFollowSource(path, formatter="hadoop")
        source.poll(10)
        with path.open("a") as fp:
            fp.write(self.HEADER.format(s=2, msg="tw"))  # no newline yet
        assert source.poll(10) == []
        assert source.flush_pending()[0].message == "one"
        with path.open("a") as fp:
            fp.write("o\n" + self.HEADER.format(s=3, msg="three") + "\n")
        (two,) = source.poll(10)
        assert two.message == "two"

    def test_position_seek_roundtrip(self, tmp_path):
        path = tmp_path / "app.log"
        lines = [self.HEADER.format(s=i, msg=f"m{i}") for i in range(5)]
        path.write_text("\n".join(lines) + "\n")
        source = FileFollowSource(path, formatter="hadoop")
        got = source.poll(2)
        position = source.position()
        resumed = FileFollowSource(path, formatter="hadoop")
        resumed.seek(position)
        rest = resumed.poll(10) + resumed.flush_pending()
        assert [r.message for r in got + rest] == [
            f"m{i}" for i in range(5)
        ]


class TestSplitSessionsDefaultBucket:
    def test_default_bucket_keyed_by_app(self):
        """Regression: empty session_ids from different apps must not be
        merged into one ``<default>`` session."""
        records = [
            record(1.0, "a1", app="app_1"),
            record(2.0, "b1", app="app_2"),
            record(3.0, "a2", app="app_1"),
            record(4.0, "c1"),  # no app either
        ]
        sessions = {s.session_id: s for s in split_sessions(records)}
        assert set(sessions) == {
            "<default:app_1>", "<default:app_2>", "<default>",
        }
        assert sessions["<default:app_1>"].messages() == ["a1", "a2"]
        assert sessions["<default:app_1>"].app_id == "app_1"
        assert sessions["<default>"].messages() == ["c1"]

    def test_tracker_uses_same_bucketing(self):
        records = [
            record(1.0, "a1", app="app_1"),
            record(2.0, "b1", app="app_2"),
        ]
        tracker = SessionTracker(TrackerConfig(end_markers=()))
        for r in records:
            assert tracker.observe(r) == []
        stream_ids = sorted(
            c.session.session_id for c in tracker.flush()
        )
        batch_ids = sorted(
            s.session_id for s in split_sessions(records)
        )
        assert stream_ids == batch_ids

    def test_explicit_session_ids_unchanged(self):
        records = [
            record(1.0, "x", sid="c1", app="app_1"),
            record(2.0, "y", sid="c1", app="app_2"),
        ]
        (session,) = split_sessions(records)
        assert session.session_id == "c1"
        assert session_bucket(records[0]) == (("", "c1"), "c1")


class TestIdleStats:
    class _IdleSource:
        """Always-empty source that exhausts after a few sleeps."""

        def __init__(self):
            self.sleeps = 0
            self._done = False

        def poll(self, max_records):
            return []

        def exhausted(self):
            return self._done

        def backlog(self):
            return 0

        def position(self):
            return {"kind": "idle"}

        def seek(self, position):
            pass

    def test_idle_polls_do_not_spam_stats(self, spark_model):
        source = self._IdleSource()

        def fake_sleep(_interval):
            source.sleeps += 1
            if source.sleeps >= 5:
                source._done = True

        emissions = []
        runtime = StreamRuntime(
            spark_model, source,
            stats_callback=lambda stats: emissions.append(stats.records),
            sleep=fake_sleep,
        )
        runtime.run()
        # Five idle polls produce one quiet-stream emission (plus the
        # unconditional end-of-run one) — not one line per poll.
        assert source.sleeps == 5
        assert len(emissions) == 2


class TestModelAccessor:
    def test_untrained_detector_raises(self):
        from repro import NotTrainedError

        with pytest.raises(NotTrainedError):
            IntelLog().detector()

    def test_runtime_accepts_raw_detector(self, spark_model,
                                          detection_records):
        sink = ListSink()
        runtime = StreamRuntime(
            spark_model.detector(),
            IterableSource(detection_records[:50]),
            sink=sink, tracker=TrackerConfig(**UNBOUNDED),
        )
        runtime.run(once=True)
        assert sink.reports
