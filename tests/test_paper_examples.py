"""End-to-end reproductions of the paper's worked examples.

Each test class walks one of the paper's figures with the exact snippets
quoted in the text, asserting that this implementation produces the
structures the figures show.
"""

import pytest

from repro.extraction import FieldRole, InformationExtractor
from repro.graph.grouping import group_entities
from repro.graph.subroutine import Subroutine
from repro.parsing.spell import SpellParser

from conftest import FIGURE1_SNIPPET


class TestFigure1:
    """Figure 1: the MapReduce fetcher subroutine instance."""

    @pytest.fixture()
    def keys(self):
        parser = SpellParser()
        # Two instances so variable fields generalise.
        for fid, attempt, host, n, ms in (
            (1, "attempt_01", "host1:13562", 2264, 4),
            (2, "attempt_02", "host2:13562", 999, 7),
        ):
            parser.consume(
                f"fetcher#{fid} about to shuffle output of map {attempt}"
            )
            parser.consume(
                f"fetcher#{fid} read {n} bytes from map-output for "
                f"{attempt}"
            )
            parser.consume(f"{host} freed by fetcher#{fid} in {ms}ms")
        extractor = InformationExtractor()
        return {
            key.key_id: extractor.build_intel_key(key)
            for key in parser.keys()
        }, parser

    def test_three_log_keys(self, keys):
        intel_keys, parser = keys
        assert len(intel_keys) == 3

    def test_snippet_messages_match_their_keys(self, keys):
        _, parser = keys
        matched = [parser.match(m) for m in FIGURE1_SNIPPET]
        assert all(m is not None for m in matched)
        # The three lines hit three distinct keys.
        assert len({m.key.key_id for m in matched}) == 3

    def test_colour_coding(self, keys):
        """The figure marks entities red, identifiers blue, values green,
        localities purple; check each key captures its colours."""
        intel_keys, parser = keys
        shuffle = next(
            k for k in intel_keys.values() if "shuffle" in k.template_text
        )
        assert "fetcher" in shuffle.entities
        assert len(shuffle.fields_with_role(FieldRole.IDENTIFIER)) == 2

        read = next(
            k for k in intel_keys.values() if "read" in k.template_text
        )
        assert [f.name for f in read.fields_with_role(FieldRole.VALUE)] \
            == ["bytes"]

        freed = next(
            k for k in intel_keys.values() if "freed" in k.template_text
        )
        assert freed.fields_with_role(FieldRole.LOCALITY)
        assert freed.fields_with_role(FieldRole.VALUE)


class TestFigure3:
    """Figure 3: POS tagging uses a sample message, not the starred key."""

    def test_metrics_system_key(self):
        parser = SpellParser()
        parser.consume("Starting MapTask metrics system")
        parser.consume("MapTask metrics system started")
        key = parser.keys()[0]
        # The figure's log key: '* MapTask metrics system' (modulo the
        # trailing star from the merged 'started').
        assert "MapTask" in key.tokens
        assert "metrics" in key.tokens
        extractor = InformationExtractor()
        intel_key = extractor.build_intel_key(key)
        assert "map task" in intel_key.entities
        assert "metrics system" in intel_key.entities


class TestSection41GroupingExamples:
    def test_spark_block_nomenclature(self):
        # §4.1: block / block manager / block manager endpoint correlate.
        result = group_entities([
            "block", "block manager", "block manager endpoint",
            "security manager",
        ])
        block_groups = result.groups_for("block manager endpoint")
        assert any(g.label == "block" for g in block_groups)
        security = result.groups_for("security manager")
        assert all(g.label != "block" for g in security)

    def test_container_identifier_types(self):
        # §4.1: container_01 and container_02 have type CONTAINER.
        from repro.extraction.idvalue import identifier_type

        assert identifier_type("container_01", None) == "CONTAINER"
        assert identifier_type("container_02", None) == "CONTAINER"


class TestFigure5Narrative:
    """Figure 5 drives Algorithm 2's UpdateSubroutine step by step."""

    def test_full_walkthrough(self):
        sub = Subroutine(signature=("ID_1", "ID_2"))
        # Session 1: Seq1 and Seq2, both A B C D.
        sub.update(list("ABCD"))
        sub.update(list("ABCD"))
        assert sub.ordered_keys() == list("ABCD")
        assert sub.critical_keys == set("ABCD")

        # Session 2: Seq3 arrives with B and C interchanged.
        sub.update(list("ACBD"))
        assert sub.relation("B", "C") == "PARALLEL"
        assert sub.relation("A", "D") == "BEFORE"
        assert sub.critical_keys == set("ABCD")

        # Seq4 lacks D: D stops being critical.
        sub.update(list("ABC"))
        assert sub.critical_keys == set("ABC")
        assert "D" in sub.keys  # still part of the subroutine


class TestTable2Examples:
    """Every example phrase from Table 2 must be extractable."""

    @pytest.mark.parametrize("text,expected", [
        ("the task finished", "task"),
        ("connected to the remote process", "remote process"),
        ("the event fetcher started", "event fetcher"),
        ("cleanup temporary folders finished", "cleanup temporary folder"),
        ("received 3 map completion events", "map completion event"),
        ("about to shuffle output of map", "output of map"),
    ])
    def test_phrase(self, text, expected):
        from repro.extraction.entities import extract_entities
        from repro.nlp.postagger import tag

        phrases = [e.phrase for e in extract_entities(tag(text))]
        assert expected in phrases, phrases
