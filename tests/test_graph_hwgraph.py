"""Tests for HW-graph construction (paper §4.1, Figures 7-8)."""

import json

from repro.extraction.intelkey import FieldSpec, IntelKey, IntelMessage
from repro.extraction.idvalue import FieldRole
from repro.graph.hwgraph import HWGraphBuilder
from repro.graph.render import render_summary, render_tree, to_json


def make_key(key_id, entities, natural=True):
    return IntelKey(
        key_id=key_id,
        template=tuple(key_id.split()),
        sample=key_id,
        entities=tuple(entities),
        natural_language=natural,
    )


def make_msg(key_id, t, identifiers=None):
    message = IntelMessage(
        key_id=key_id, timestamp=t, session_id="s", message=key_id
    )
    if identifiers:
        message.identifiers = {k: list(v) for k, v in identifiers.items()}
    return message


def figure7_builder(sessions=6):
    """A synthetic system realising Figure 7's relations:

    * group a is the parent of b and d; b is BEFORE d; c runs PARALLEL
      with a.
    """
    keys = {
        "KA": make_key("KA", ["alpha service"]),
        "KB": make_key("KB", ["beta worker"]),
        "KD": make_key("KD", ["delta handler"]),
        "KC": make_key("KC", ["gamma monitor"]),
    }
    builder = HWGraphBuilder(keys)
    for i in range(sessions):
        builder.train_session([
            make_msg("KA", 0.0),
            make_msg("KC", 1.0),
            make_msg("KB", 2.0),
            make_msg("KB", 3.0),
            make_msg("KD", 5.0),
            make_msg("KD", 6.0),
            make_msg("KC", 20.0),
            make_msg("KA", 10.0),
        ])
    return builder


class TestFigure7Hierarchy:
    def test_parent_child_edges(self):
        graph = figure7_builder().build()
        alpha = graph.groups["alpha service"]
        assert set(alpha.children) == {"beta worker", "delta handler"}
        assert graph.groups["beta worker"].parent == "alpha service"

    def test_parallel_group_is_root(self):
        graph = figure7_builder().build()
        assert graph.groups["gamma monitor"].parent is None
        assert "gamma monitor" in graph.roots

    def test_sibling_before_edge(self):
        graph = figure7_builder().build()
        beta = graph.groups["beta worker"]
        assert "delta handler" in beta.before

    def test_roots(self):
        graph = figure7_builder().build()
        assert set(graph.roots) == {"alpha service", "gamma monitor"}


class TestCriticalGroups:
    def test_multi_key_group_is_critical(self):
        keys = {
            "K1": make_key("K1", ["block"]),
            "K2": make_key("K2", ["block manager"]),
        }
        builder = HWGraphBuilder(keys)
        builder.train_session([make_msg("K1", 0.0), make_msg("K2", 1.0)])
        graph = builder.build()
        assert graph.groups["block"].critical

    def test_repeating_key_group_is_critical(self):
        # §6.3 criterion 2: one Intel Key with multiple messages in a
        # single session.
        keys = {"K1": make_key("K1", ["fetcher"])}
        builder = HWGraphBuilder(keys)
        builder.train_session(
            [make_msg("K1", float(i)) for i in range(4)]
        )
        graph = builder.build()
        assert graph.groups["fetcher"].critical

    def test_single_key_single_message_not_critical(self):
        keys = {"K1": make_key("K1", ["fetcher"])}
        builder = HWGraphBuilder(keys)
        builder.train_session([make_msg("K1", 0.0)])
        graph = builder.build()
        assert not graph.groups["fetcher"].critical


class TestKeyGrouping:
    def test_non_nl_keys_excluded(self):
        keys = {
            "K1": make_key("K1", ["task"]),
            "K2": make_key("K2", ["kvdump"], natural=False),
        }
        builder = HWGraphBuilder(keys)
        graph = builder.graph
        assert "K2" in graph.ignored_keys
        assert graph.key_groups["K2"] == set()

    def test_key_maps_to_groups_of_its_entities(self):
        keys = {
            "K1": make_key("K1", ["block", "task"]),
        }
        builder = HWGraphBuilder(keys)
        assert builder.graph.key_groups["K1"] == {"block", "task"}

    def test_untrained_groups_dropped_at_build(self):
        keys = {
            "K1": make_key("K1", ["task"]),
            "K2": make_key("K2", ["phantom entity"]),
        }
        builder = HWGraphBuilder(keys)
        builder.train_session([make_msg("K1", 0.0)])
        graph = builder.build()
        assert "phantom entity" not in graph.groups


class TestSubroutinesInGraph:
    def test_identifier_subroutines_trained(self):
        keys = {
            "K1": make_key("K1", ["task"]),
            "K2": make_key("K2", ["task"]),
        }
        builder = HWGraphBuilder(keys)
        builder.train_session([
            make_msg("K1", 0.0, {"TID": ["1"]}),
            make_msg("K2", 1.0, {"TID": ["1"]}),
            make_msg("K1", 0.5, {"TID": ["2"]}),
            make_msg("K2", 1.5, {"TID": ["2"]}),
        ])
        graph = builder.build()
        model = graph.groups["task"].model
        sub = model.subroutines[("TID",)]
        assert sub.instance_count == 2
        assert sub.critical_keys == {"K1", "K2"}


class TestRendering:
    def test_tree_marks_critical(self):
        graph = figure7_builder().build()
        tree = render_tree(graph)
        assert "alpha service" in tree

    def test_summary_counts(self):
        graph = figure7_builder(sessions=3).build()
        summary = render_summary(graph)
        assert "groups: 4" in summary
        assert "training sessions: 3" in summary

    def test_json_round_trips(self):
        graph = figure7_builder().build()
        data = json.loads(to_json(graph))
        assert set(data["groups"]) == {
            "alpha service", "beta worker", "delta handler",
            "gamma monitor",
        }
        assert data["groups"]["beta worker"]["parent"] == "alpha service"

    def test_networkx_export(self):
        graph = figure7_builder().build()
        nx_graph = graph.to_networkx()
        assert nx_graph.has_edge("alpha service", "beta worker")
        assert (
            nx_graph.edges["alpha service", "beta worker"]["relation"]
            == "PARENT"
        )
