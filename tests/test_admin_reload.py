"""Hot-reload failure paths for the control plane (``repro.serve.admin``).

The tenants-file reload runs inside a serving loop, so every failure
mode must leave the previous fleet intact: an unreadable file, a file
that turns syntactically invalid mid-run, and a reload that races a
pending (not-yet-applied) model swap.
"""

from __future__ import annotations

import json

import pytest

from repro.core import ServeConfig
from repro.parsing.records import LogRecord
from repro.query.store import ModelStore
from repro.serve import (
    DetectionService,
    ModelRegistry,
    TenantSpec,
    apply_tenants,
    apply_tenants_file,
)
from repro.simulators import WorkloadGenerator
from repro.stream import IterableSource, ListSink

UNBOUNDED = dict(idle_timeout=1e12, max_open_sessions=10**9)


def spark_records(seed: int) -> list[LogRecord]:
    gen = WorkloadGenerator(seed=seed)
    batch = gen.run_batch("spark", 2)
    records = [r for job in batch for r in job.records]
    records.sort(key=lambda r: r.timestamp)
    return records


@pytest.fixture()
def registry(tmp_path, spark_model, spark_training_jobs):
    from repro import IntelLog
    from repro.simulators import sessions_of

    reg = ModelRegistry(tmp_path / "registry")
    reg.publish(ModelStore.from_intellog(spark_model), "spark-prod")
    v2 = IntelLog()
    v2.train(sessions_of(spark_training_jobs[:6]))
    reg.publish(ModelStore.from_intellog(v2), "spark-prod")
    return reg


@pytest.fixture()
def service(registry):
    svc = DetectionService(registry, ServeConfig(workers=0, quantum=64))
    spec = TenantSpec(
        tenant_id="t1", model="spark-prod", version=1, **UNBOUNDED
    )
    svc.attach(
        spec, source=IterableSource(spark_records(55)), sink=ListSink()
    )
    return svc


class TestReloadFailurePaths:
    def test_unreadable_file_raises_and_fleet_survives(
        self, service, tmp_path
    ):
        with pytest.raises(OSError):
            apply_tenants_file(service, tmp_path / "missing.toml")
        assert service.tenant_ids == ["t1"]
        assert service.tenant("t1").failure is None

    def test_invalid_toml_mid_run_keeps_previous_fleet(
        self, service, tmp_path, registry
    ):
        # The run() loop applies a changed tenants file; when the new
        # contents are garbage the reload must log-and-keep, never
        # detach the running fleet or kill the loop.
        path = tmp_path / "tenants.toml"
        path.write_text('[[tenants]]\nid = "t1"\nmodel = "spark')
        with pytest.raises(Exception):
            apply_tenants_file(service, path)
        assert service.tenant_ids == ["t1"]
        # And through the serving loop's catch-all: mtime changed to a
        # still-broken file, loop keeps cycling.
        status = service.run(
            max_cycles=2,
            tenants_file=path,
            apply_tenants_file=apply_tenants_file,
        )
        assert [t["tenant"] for t in status["tenants"]] == ["t1"]

    def test_reload_survives_one_bad_entry(self, service, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text(json.dumps({"tenants": [
            {"id": "t1", "model": "spark-prod", "version": 1},
            {"id": "ghost", "model": "no-such-model"},
        ]}))
        summary = apply_tenants_file(service, path)
        assert summary["kept"] == ["t1"]
        assert summary["attached"] == []  # ghost failed, logged, skipped
        assert service.tenant_ids == ["t1"]

    def test_reload_racing_a_pending_swap(self, service):
        # An operator swap is parked on the tenant but not yet applied
        # (no pump ran).  A reload that *pins the same target version*
        # must not double-swap or error; the pending lease still
        # installs on the next pump.
        version, _digest = service.swap("t1", 2)
        assert version == 2
        tenant = service.tenant("t1")
        assert tenant.swap_pending
        summary = apply_tenants(service, [TenantSpec(
            tenant_id="t1", model="spark-prod", version=2, **UNBOUNDED
        )])
        assert set(summary) == {
            "attached", "detached", "swapped", "kept"
        }
        service.cycle()  # applies whichever lease won the race
        assert tenant.lease.version == 2
        assert not tenant.swap_pending
        assert tenant.failure is None

    def test_reload_with_unchanged_spec_keeps_pending_swap(
        self, service
    ):
        service.swap("t1", 2)
        summary = apply_tenants(service, [TenantSpec(
            tenant_id="t1", model="spark-prod", version=1, **UNBOUNDED
        )])
        # Spec still names v1 (the tenant's current lease): kept, and
        # the operator's pending swap is not cancelled by the reload.
        assert summary["kept"] == ["t1"]
        tenant = service.tenant("t1")
        assert tenant.swap_pending
        service.cycle()
        assert tenant.lease.version == 2
