"""Tests for ``tools/check_train_gate.py``: the train-bench honesty gate.

The checker is what stops an under-provisioned CI runner from silently
skipping the wall-speedup assertion — every accept/reject combination of
``cpu_count`` and the ``gate`` marker is pinned here.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parents[1] / "tools"))

from check_train_gate import GATE_ENFORCED, GATE_SKIPPED, check, main


def write(tmp_path: Path, payload) -> Path:
    path = tmp_path / "BENCH_train.json"
    path.write_text(
        payload if isinstance(payload, str) else json.dumps(payload)
    )
    return path


class TestCheck:
    def test_enforced_on_capable_host_ok(self, tmp_path):
        path = write(tmp_path, {"cpu_count": 8, "gate": GATE_ENFORCED})
        assert check(path) == []

    def test_skipped_on_small_host_ok(self, tmp_path):
        path = write(tmp_path, {"cpu_count": 1, "gate": GATE_SKIPPED})
        assert check(path) == []

    def test_missing_gate_marker_rejected(self, tmp_path):
        path = write(tmp_path, {"cpu_count": 1})
        problems = check(path)
        assert problems and "marker missing" in problems[0]

    def test_skip_on_capable_host_rejected(self, tmp_path):
        """The satellite case: a >= 4-core runner must never dodge the
        wall-speedup bar."""
        path = write(tmp_path, {"cpu_count": 4, "gate": GATE_SKIPPED})
        problems = check(path)
        assert problems and "dodged" in problems[0]

    def test_enforced_claim_on_small_host_rejected(self, tmp_path):
        path = write(tmp_path, {"cpu_count": 2, "gate": GATE_ENFORCED})
        problems = check(path)
        assert problems and "cannot have run" in problems[0]

    def test_unknown_marker_rejected(self, tmp_path):
        path = write(tmp_path, {"cpu_count": 8, "gate": "maybe"})
        problems = check(path)
        assert problems and "unknown gate marker" in problems[0]

    @pytest.mark.parametrize("cpu_count", [None, 0, -1, "4"])
    def test_bad_cpu_count_rejected(self, tmp_path, cpu_count):
        path = write(
            tmp_path, {"cpu_count": cpu_count, "gate": GATE_ENFORCED}
        )
        problems = check(path)
        assert problems and "cpu_count" in problems[0]

    def test_missing_file_rejected(self, tmp_path):
        assert check(tmp_path / "nope.json")

    def test_invalid_json_rejected(self, tmp_path):
        path = write(tmp_path, "{not json")
        problems = check(path)
        assert problems and "not valid JSON" in problems[0]


class TestMain:
    def test_exit_zero_on_ok(self, tmp_path, capsys):
        path = write(tmp_path, {"cpu_count": 16, "gate": GATE_ENFORCED})
        assert main(["check", str(path)]) == 0
        assert "gate ok" in capsys.readouterr().out

    def test_exit_one_on_problem(self, tmp_path, capsys):
        path = write(tmp_path, {"cpu_count": 16, "gate": GATE_SKIPPED})
        assert main(["check", str(path)]) == 1
        assert "TRAIN-GATE ERROR" in capsys.readouterr().err

    def test_checks_committed_artifact_by_default(self):
        """The repo's own refreshed BENCH_train.json must be coherent."""
        from check_train_gate import DEFAULT_PATH

        data = json.loads(DEFAULT_PATH.read_text())
        # The committed artifact must carry a known marker; whether it
        # passes `check` on *this* host depends on this host's cores,
        # so only validate artifact shape here.
        assert data["gate"] in (GATE_ENFORCED, GATE_SKIPPED)
        assert isinstance(data["cpu_count"], int)
