"""Tests for DetectorConfig toggles and detector internals."""

from repro.detection.detector import AnomalyDetector, DetectorConfig
from repro.detection.report import AnomalyKind
from repro.parsing.records import LogRecord, Session
from repro.simulators import SparkConfig


def make_session(sid, messages, t0=0.0):
    session = Session(session_id=sid)
    for i, message in enumerate(messages):
        session.append(LogRecord(
            timestamp=t0 + i, level="INFO", source="X", message=message,
        ))
    return session


class TestToggles:
    def test_missing_group_check_toggle(self, spark_model,
                                        spark_simulator):
        job = spark_simulator.run_job(
            "wordcount",
            SparkConfig(input_gb=1.0, executors=8),
            base_time=3e6,
            idle_executor_bug=True,
        )
        strict = spark_model.detect_job(job.sessions, job.app_id)
        detector = AnomalyDetector(
            spark_model.graph,
            spark_model.spell,
            spark_model.extractor,
            DetectorConfig(report_missing_groups=False),
        )
        loose = detector.detect_job(job.sessions, job.app_id)
        strict_missing = sum(
            len(s.by_kind(AnomalyKind.MISSING_GROUP))
            for s in strict.sessions
        )
        loose_missing = sum(
            len(s.by_kind(AnomalyKind.MISSING_GROUP))
            for s in loose.sessions
        )
        assert strict_missing > 0
        assert loose_missing == 0

    def test_min_session_length_guard(self, spark_model):
        # A 2-message session must not trigger missing-group reports.
        session = make_session("tiny", [
            "Shutdown hook called",
            "Deleting directory /tmp/spark-x",
        ])
        report = spark_model.detect_session(session)
        assert not report.by_kind(AnomalyKind.MISSING_GROUP)

    def test_hierarchy_toggle(self, spark_model, spark_simulator):
        job = spark_simulator.run_job(
            "sort", SparkConfig(input_gb=2.0), base_time=4e6
        )
        detector = AnomalyDetector(
            spark_model.graph,
            spark_model.spell,
            spark_model.extractor,
            DetectorConfig(check_hierarchy=False),
        )
        report = detector.detect_job(job.sessions, job.app_id)
        assert not any(
            s.by_kind(AnomalyKind.HIERARCHY_VIOLATION)
            for s in report.sessions
        )


class TestIgnoredKeys:
    def test_kv_dump_messages_not_reported(self, mr_model):
        # Key-value dumps were learned in training and must be ignored at
        # detection time instead of flagged (paper §5).
        session = make_session("kv", [
            "mapreduce.task.io.sort.mb = 256 ; soft limit = 214748364 ; "
            "bufstart = 0 ; kvstart = 26214396",
        ])
        report = mr_model.detect_session(session)
        assert not report.by_kind(AnomalyKind.UNEXPECTED_MESSAGE)


class TestUnexpectedExtraction:
    def test_extraction_has_five_fields(self, mr_model):
        session = make_session("u", [
            "Mystery subsystem florbed 977 bytes from node9:4040 for "
            "wobble_07",
        ])
        report = mr_model.detect_session(session)
        anomaly = report.by_kind(AnomalyKind.UNEXPECTED_MESSAGE)[0]
        extraction = anomaly.extraction
        for field in ("entities", "identifiers", "values", "localities",
                      "operations"):
            assert field in extraction
        assert extraction["localities"]
        assert extraction["values"].get("bytes") == [977.0]
        assert "WOBBLE" in extraction["identifiers"]
