"""Tests for entity extraction (paper §3.1, Table 2)."""

from repro.extraction.entities import POS_PATTERNS, extract_entities
from repro.nlp.postagger import tag


def phrases(text):
    return [e.phrase for e in extract_entities(tag(text))]


class TestTable2Patterns:
    def test_single_noun(self):
        assert "task" in phrases("the task finished")

    def test_adjective_noun(self):
        # Table 2 example: "remote process".
        assert "remote process" in phrases("connected to a remote process")

    def test_noun_noun(self):
        # Table 2 example: "event fetcher".
        assert "event fetcher" in phrases("the event fetcher started")

    def test_noun_noun_noun(self):
        # Table 2 example: "map completion events".
        assert "map completion event" in phrases(
            "getting 5 map completion events now"
        )

    def test_noun_preposition_noun(self):
        # Table 2 example: "output of map".
        assert "output of map" in phrases(
            "about to shuffle output of map attempt_01"
        )

    def test_all_patterns_declared(self):
        assert ("NN",) in POS_PATTERNS
        assert ("JJ", "NN") in POS_PATTERNS
        assert ("NN", "IN", "NN") in POS_PATTERNS
        assert ("JJ", "JJ", "NN") in POS_PATTERNS
        assert ("JJ", "NN", "NN") in POS_PATTERNS
        assert ("NN", "JJ", "NN") in POS_PATTERNS
        assert ("NN", "NN", "NN") in POS_PATTERNS


class TestCamelCaseEntities:
    def test_camel_split(self):
        # §3.1: "'MapTask' is transformed to 'map task'".
        assert "map task" in phrases("Starting MapTask metrics system")

    def test_camel_not_merged_into_pattern(self):
        result = phrases("Registering BlockManager BlockManagerId(x, y, 1)")
        assert "block manager" in result
        assert "block manager id" in result


class TestExclusions:
    def test_units_not_entities(self):
        # Figure 4: "omit 'bytes' since it is a unit".
        result = phrases("read 2264 bytes from map-output for attempt_01")
        assert "bytes" not in result
        assert "byte" not in result

    def test_identifiers_not_entities(self):
        result = phrases("shuffle output of map attempt_01")
        assert all("attempt" not in p for p in result)

    def test_abbreviations_extracted_as_paper_fp_class(self):
        # §6.2: IntelLog categorizes abbreviations like 'tid' as entities —
        # the paper counts them among its false positives.  Truly opaque
        # voweless tokens are skipped.
        assert "tid" in phrases("the tid 4 was freed")
        assert "rpc" not in phrases("the rpc 4 was freed")

    def test_patterns_do_not_bridge_stars(self):
        from repro.nlp.postagger import TaggedToken

        tokens = [
            TaggedToken("map", "NN", "word", 0),
            TaggedToken("*", "SYM", "star", 4),
            TaggedToken("output", "NN", "word", 6),
        ]
        result = [e.phrase for e in extract_entities(tokens)]
        assert "map output" not in result
        assert "map" in result
        assert "output" in result


class TestLemmatization:
    def test_plural_head_singularized(self):
        assert "new container" in phrases("allocating new containers today")

    def test_deduplication(self):
        entities = extract_entities(
            tag("task started and the task finished")
        )
        task_entities = [e for e in entities if e.phrase == "task"]
        assert len(task_entities) == 1

    def test_span_recorded(self):
        entities = extract_entities(tag("the event fetcher started"))
        fetcher = next(e for e in entities if e.phrase == "event fetcher")
        assert fetcher.span[1] - fetcher.span[0] == 2
