"""Tests for the core façade, config and metrics."""

import pytest

from repro import IntelLog, IntelLogConfig, NotTrainedError
from repro.core.errors import ConfigurationError
from repro.core.metrics import (
    DetectionCounts,
    ExtractionAccuracy,
    score_predictions,
)
from repro.parsing.records import LogRecord, Session


class TestConfig:
    def test_default_tau_is_paper_value(self):
        assert IntelLogConfig().spell_tau == 1.7

    def test_invalid_tau_rejected(self):
        with pytest.raises(ConfigurationError):
            IntelLog(IntelLogConfig(spell_tau=0.5))


class TestLifecycle:
    def test_detect_before_train_raises(self):
        intellog = IntelLog()
        with pytest.raises(NotTrainedError):
            intellog.detect_job([])
        with pytest.raises(NotTrainedError):
            intellog.hw_graph()

    def test_training_summary_counts(self, mr_model, mr_training_jobs):
        summary = mr_model.train.__self__  # the trained instance
        graph = mr_model.hw_graph()
        assert graph.training_sessions == sum(
            len(j.sessions) for j in mr_training_jobs
        )

    def test_train_lines_round_trip(self):
        lines = []
        base = "2019-06-22 10:15:{s:02d},000 INFO [main] " \
               "org.apache.hadoop.mapred.MapTask: "
        for s in range(30):
            lines.append(base.format(s=s % 60) +
                         f"Finished spill spill{s}")
        intellog = IntelLog(IntelLogConfig(formatter="hadoop"))
        summary = intellog.train_lines(lines)
        assert summary.messages == 30
        assert summary.log_keys == 1

    def test_intel_messages_projection(self, mr_model, mr_training_jobs):
        sessions = mr_training_jobs[0].sessions
        messages = mr_model.intel_messages(sessions)
        assert messages
        assert all(m.session_id for m in messages)


class TestDetectionCounts:
    def test_perfect(self):
        counts = DetectionCounts(10, 0, 0, 10)
        assert counts.precision == 1.0
        assert counts.recall == 1.0
        assert counts.f_measure == 1.0

    def test_paper_table8_shape(self):
        # IntelLog's Table 8 row: 87.23% precision / 91.11% recall.
        counts = DetectionCounts(41, 6, 4, 0)
        assert counts.precision == pytest.approx(0.8723, abs=1e-3)
        assert counts.recall == pytest.approx(0.9111, abs=1e-3)
        assert counts.f_measure == pytest.approx(0.8913, abs=1e-3)

    def test_zero_division_guards(self):
        counts = DetectionCounts()
        assert counts.precision == 0.0
        assert counts.recall == 0.0
        assert counts.f_measure == 0.0

    def test_addition(self):
        total = DetectionCounts(1, 2, 3, 4) + DetectionCounts(5, 6, 7, 8)
        assert total == DetectionCounts(6, 8, 10, 12)

    def test_score_predictions(self):
        counts = score_predictions(
            [True, True, False, False], [True, False, True, False]
        )
        assert counts.true_positives == 1
        assert counts.false_negatives == 1
        assert counts.false_positives == 1
        assert counts.true_negatives == 1

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            score_predictions([True], [])


class TestExtractionAccuracy:
    def test_row_format(self):
        acc = ExtractionAccuracy(63, 3, 0)
        assert acc.row() == "63 / 3 / 0"

    def test_precision_recall(self):
        acc = ExtractionAccuracy(total=10, false_positives=2,
                                 false_negatives=1)
        assert acc.recall == pytest.approx(0.9)
        assert acc.precision == pytest.approx(9 / 11)

    def test_empty(self):
        acc = ExtractionAccuracy(0, 0, 0)
        assert acc.recall == 0.0
