"""Tests for ``repro.parallel``: sharding, merge determinism, the memo
cache and the pipeline's serial equivalence.

The hypothesis suites pin the deterministic-merge invariant directly:
the merged parser state is a pure function of the corpus — independent of
the order shard results arrive in and of how many workers produced them —
and the parallel pipeline is extensionally equal to the serial trainer.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import IntelLog
from repro.parallel import (
    ExtractionCache,
    MergeError,
    ParseTask,
    StatsTask,
    compute_shard_stats,
    corpus_manifest,
    lpt_makespan,
    make_shards,
    merge_shards,
    parse_shard,
    process_cache,
    shard_hash,
    train_parallel,
)
from repro.parsing.records import LogRecord, Session

# -- corpus strategies --------------------------------------------------------
#
# Messages are drawn from a pool of parametric templates: lowercase words
# are template constants (the tokenizer masks numerals, identifiers and
# localities), so drawn corpora exercise key creation, matching and LCS
# template evolution without degenerating into all-variable noise.

TEMPLATES = (
    "worker {a} started task {b}",
    "worker {a} finished task {b} in {c} ms",
    "read {a} bytes from stream part{b}",
    "connection to host{a}:{b} established",
    "committed output of attempt_{a} to final location",
    "shuffle fetch of segment {a} failed with code {b}",
)

message_st = st.builds(
    lambda idx, a, b, c: TEMPLATES[idx].format(a=a, b=b, c=c),
    st.integers(0, len(TEMPLATES) - 1),
    st.integers(0, 30),
    st.integers(0, 30),
    st.integers(0, 30),
)


@st.composite
def corpora(draw, max_sessions: int = 4, max_records: int = 10):
    sessions = []
    n_sessions = draw(st.integers(1, max_sessions))
    for sid in range(n_sessions):
        messages = draw(
            st.lists(message_st, min_size=1, max_size=max_records)
        )
        records = [
            LogRecord(
                timestamp=float(sid * 1000 + pos),
                level="INFO",
                source="Worker",
                message=message,
                session_id=f"container_{sid:04d}",
            )
            for pos, message in enumerate(messages)
        ]
        sessions.append(
            Session(
                session_id=f"container_{sid:04d}",
                app_id="app_1",
                records=records,
            )
        )
    return sessions


def spell_state(parser):
    """Full observable Spell state (table + bookkeeping)."""
    return [
        (k.key_id, tuple(k.tokens), k.sample, k.count, tuple(k.line_ids))
        for k in parser.keys()
    ]


def model_json(intellog) -> str:
    return json.dumps(intellog.hw_graph().to_dict(), sort_keys=True)


# -- property-based: the deterministic-merge invariant ------------------------


class TestMergeProperties:
    @given(corpora(), st.randoms(use_true_random=False))
    @settings(max_examples=30, deadline=None)
    def test_shard_result_order_invariance(self, sessions, rng):
        """The merge pairs results by shard index and content hash, so the
        arrival (completion) order of shard results cannot matter."""
        shards = make_shards(sessions)
        parses = [
            parse_shard(
                ParseTask(s.index, s.content_hash, s.session)
            )
            for s in shards
        ]
        merged = merge_shards(shards, parses)
        shuffled = list(parses)
        rng.shuffle(shuffled)
        remerged = merge_shards(shards, shuffled)
        assert spell_state(remerged.spell) == spell_state(merged.spell)
        assert remerged.record_keys == merged.record_keys
        assert remerged.distinct_forms == merged.distinct_forms

    @given(corpora())
    @settings(max_examples=30, deadline=None)
    def test_merge_reproduces_streaming_spell(self, sessions):
        """Form replay == consuming every record serially: same table,
        same samples, same counts, same per-record assignment."""
        from repro.parsing.spell import SpellParser

        serial = SpellParser()
        serial_keys = [
            [serial.consume(r.message).key_id for r in session.records]
            for session in sessions
        ]
        shards = make_shards(sessions)
        merged = merge_shards(
            shards,
            [
                parse_shard(
                    ParseTask(s.index, s.content_hash, s.session)
                )
                for s in shards
            ],
        )
        assert spell_state(merged.spell) == spell_state(serial)
        assert merged.record_keys == serial_keys

    @given(corpora(), st.integers(1, 3))
    @settings(max_examples=15, deadline=None)
    def test_pipeline_equals_serial_trainer(self, sessions, workers):
        """Key tables, Intel Keys, groups and subroutines all agree with
        the serial trainer for any worker count (inline path)."""
        serial = IntelLog()
        serial.train(sessions)
        # workers>1 would spawn real processes per hypothesis example;
        # the inline path runs the identical shard/merge/apply code, and
        # the multiprocess leg is covered by the non-property tests and
        # the golden suite.
        parallel = IntelLog()
        parallel.train(sessions, workers=1)
        assert spell_state(parallel.spell) == spell_state(serial.spell)
        assert {
            k: v.to_dict() for k, v in parallel.intel_keys.items()
        } == {k: v.to_dict() for k, v in serial.intel_keys.items()}
        assert model_json(parallel) == model_json(serial)


# -- sharding ----------------------------------------------------------------


class TestSharding:
    def _sessions(self):
        return [
            Session(
                session_id=f"c{i}",
                records=[
                    LogRecord(
                        timestamp=float(i * 10 + j),
                        level="INFO",
                        source="S",
                        message=f"worker {i} started task {j}",
                    )
                    for j in range(3)
                ],
            )
            for i in range(4)
        ]

    def test_shard_partition_is_per_session(self):
        sessions = self._sessions()
        shards = make_shards(sessions)
        assert [s.index for s in shards] == [0, 1, 2, 3]
        assert [s.base_offset for s in shards] == [0, 3, 6, 9]
        assert all(len(s) == 3 for s in shards)

    def test_content_hash_tracks_content(self):
        sessions = self._sessions()
        a = shard_hash(sessions[0])
        assert a == shard_hash(sessions[0])  # deterministic
        sessions[0].records[1].message += " extra"
        assert shard_hash(sessions[0]) != a

    def test_manifest_depends_on_order_and_content(self):
        sessions = self._sessions()
        manifest = corpus_manifest(make_shards(sessions))
        assert manifest == corpus_manifest(make_shards(sessions))
        reordered = corpus_manifest(
            make_shards(list(reversed(sessions)))
        )
        assert reordered != manifest

    def test_merge_rejects_foreign_results(self):
        sessions = self._sessions()
        shards = make_shards(sessions)
        parses = [
            parse_shard(ParseTask(s.index, s.content_hash, s.session))
            for s in shards
        ]
        with pytest.raises(MergeError, match="duplicate"):
            merge_shards(shards, parses[:-1] + [parses[0]])
        with pytest.raises(MergeError, match="hash mismatch"):
            bad = parses[0]
            bad.content_hash = "0" * 64
            merge_shards(shards, parses)

    def test_merge_rejects_wrong_count(self):
        shards = make_shards(self._sessions())
        with pytest.raises(MergeError, match="expected"):
            merge_shards(shards, [])


# -- extraction cache --------------------------------------------------------


class TestExtractionCache:
    KEY = ("worker", "*", "started", "task", "*")
    SAMPLE = "worker 3 started task 7"

    def test_hit_returns_equal_key_with_requested_id(self):
        cache = ExtractionCache()
        first = cache.extract("K0", self.KEY, self.SAMPLE)
        second = cache.extract("K9", self.KEY, self.SAMPLE)
        assert cache.stats() == (1, 1)
        assert second.key_id == "K9"
        assert first.key_id == "K0"
        # Identical apart from the stamped id.
        from dataclasses import replace

        assert replace(first, key_id="") == replace(second, key_id="")

    def test_disabled_cache_always_misses(self):
        cache = ExtractionCache()
        cache.extract("K0", self.KEY, self.SAMPLE, enabled=False)
        cache.extract("K0", self.KEY, self.SAMPLE, enabled=False)
        assert cache.stats() == (0, 2)
        assert len(cache) == 0

    def test_cached_equals_cold(self):
        cache = ExtractionCache()
        warm = cache.extract("K0", self.KEY, self.SAMPLE)
        cold = cache.extract("K0", self.KEY, self.SAMPLE, enabled=False)
        assert warm == cold

    def test_process_cache_is_a_singleton(self):
        assert process_cache() is process_cache()


# -- pipeline ----------------------------------------------------------------


class TestTrainParallel:
    def _sessions(self):
        return [
            Session(
                session_id=f"c{i}",
                records=[
                    LogRecord(
                        timestamp=float(i * 100 + j),
                        level="INFO",
                        source="S",
                        message=m.format(i=i, j=j),
                    )
                    for j, m in enumerate(
                        (
                            "worker {i} started task {j}",
                            "read {j} bytes from stream part{i}",
                            "worker {i} finished task {j} in 5 ms",
                        )
                    )
                ],
            )
            for i in range(5)
        ]

    @pytest.mark.parametrize("bad", [0, -1, 2.5, True, "2"])
    def test_rejects_invalid_workers(self, bad):
        with pytest.raises(ValueError, match="positive integer"):
            train_parallel(IntelLog(), self._sessions(), workers=bad)

    def test_train_workers_kwarg_routes_to_pipeline(self):
        intellog = IntelLog()
        summary = intellog.train(self._sessions(), workers=1)
        report = intellog.last_parallel_report
        assert report is not None
        assert report.workers == 1
        assert report.shards == 5
        assert report.records == summary.messages == 15
        assert len(report.parse_shard_seconds) == 5
        assert len(report.stats_shard_seconds) == 5

    def test_serial_train_leaves_no_report(self):
        intellog = IntelLog()
        intellog.train(self._sessions())
        assert intellog.last_parallel_report is None

    def test_multiprocess_equals_serial(self):
        sessions = self._sessions()
        serial = IntelLog()
        serial.train(sessions)
        parallel = IntelLog()
        parallel.train(sessions, workers=2)
        assert spell_state(parallel.spell) == spell_state(serial.spell)
        assert model_json(parallel) == model_json(serial)

    def test_cache_off_equals_cache_on(self):
        sessions = self._sessions()
        with_cache = IntelLog()
        with_cache.train(sessions, workers=1, cache=True)
        without = IntelLog()
        without.train(sessions, workers=1, cache=False)
        assert model_json(with_cache) == model_json(without)
        assert without.last_parallel_report.cache_hits == 0

    def test_detector_works_after_parallel_training(self):
        sessions = self._sessions()
        intellog = IntelLog()
        intellog.train(sessions, workers=1)
        report = intellog.detect_job(sessions[:2], job_id="replay")
        assert report.sessions


class TestLptMakespan:
    def test_empty(self):
        assert lpt_makespan([], 4) == 0.0

    def test_single_bin_is_sum(self):
        assert lpt_makespan([3.0, 1.0, 2.0], 1) == pytest.approx(6.0)

    def test_perfect_split(self):
        assert lpt_makespan([2.0, 2.0, 2.0, 2.0], 2) == pytest.approx(4.0)

    def test_bounded_below_by_longest_task(self):
        assert lpt_makespan([5.0, 0.1, 0.1], 8) == pytest.approx(5.0)

    def test_rejects_zero_bins(self):
        with pytest.raises(ValueError):
            lpt_makespan([1.0], 0)

    def test_more_bins_never_slower(self):
        durations = [3.0, 2.5, 2.0, 1.0, 0.5, 0.5]
        spans = [lpt_makespan(durations, n) for n in range(1, 7)]
        assert spans == sorted(spans, reverse=True)


# -- shard stats task ---------------------------------------------------------


class TestShardStats:
    def test_stats_payload_matches_direct_computation(self):
        session = Session(
            session_id="c0",
            records=[
                LogRecord(
                    timestamp=float(j),
                    level="INFO",
                    source="S",
                    message=f"worker 1 started task {j}",
                )
                for j in range(3)
            ],
        )
        shards = make_shards([session])
        parses = [
            parse_shard(ParseTask(s.index, s.content_hash, s.session))
            for s in shards
        ]
        merged = merge_shards(shards, parses)
        key = merged.spell.keys()[0]
        task = StatsTask(
            index=0,
            content_hash=shards[0].content_hash,
            session=session,
            record_keys=merged.record_keys[0],
            key_table=[(key.key_id, tuple(key.tokens), key.sample)],
            key_labels={key.key_id: ("worker",)},
        )
        stats = compute_shard_stats(task)
        assert stats.content_hash == shards[0].content_hash
        assert stats.messages == 3
        [payload] = stats.groups
        assert payload[0] == "worker"  # label
        assert payload[2] == [0.0, 2.0]  # lifespan
        assert payload[3] == 3  # max_key_repeat
