"""Tests for ``repro.parallel``: sharding, merge determinism, the memo
cache and the pipeline's serial equivalence.

The hypothesis suites pin the deterministic-merge invariant directly:
the merged parser state is a pure function of the corpus — independent of
the order shard results arrive in and of how many workers produced them —
and the parallel pipeline is extensionally equal to the serial trainer.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from unittest import mock

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import IntelLog
from repro.parallel import (
    MIN_BATCH_RECORDS,
    ExtractionCache,
    MergeError,
    ParallelReport,
    ParallelWorkerError,
    ParseTask,
    StatsTask,
    batch_hash,
    compute_shard_stats,
    corpus_manifest,
    derive_batch_target,
    init_worker,
    lpt_makespan,
    make_batches,
    make_shards,
    merge_shards,
    parse_shard,
    process_cache,
    shard_hash,
    train_parallel,
)
from repro.parallel.pipeline import _run_tasks
from repro.parsing.records import LogRecord, Session

# -- corpus strategies --------------------------------------------------------
#
# Messages are drawn from a pool of parametric templates: lowercase words
# are template constants (the tokenizer masks numerals, identifiers and
# localities), so drawn corpora exercise key creation, matching and LCS
# template evolution without degenerating into all-variable noise.

TEMPLATES = (
    "worker {a} started task {b}",
    "worker {a} finished task {b} in {c} ms",
    "read {a} bytes from stream part{b}",
    "connection to host{a}:{b} established",
    "committed output of attempt_{a} to final location",
    "shuffle fetch of segment {a} failed with code {b}",
)

message_st = st.builds(
    lambda idx, a, b, c: TEMPLATES[idx].format(a=a, b=b, c=c),
    st.integers(0, len(TEMPLATES) - 1),
    st.integers(0, 30),
    st.integers(0, 30),
    st.integers(0, 30),
)


@st.composite
def corpora(draw, max_sessions: int = 4, max_records: int = 10):
    sessions = []
    n_sessions = draw(st.integers(1, max_sessions))
    for sid in range(n_sessions):
        messages = draw(
            st.lists(message_st, min_size=1, max_size=max_records)
        )
        records = [
            LogRecord(
                timestamp=float(sid * 1000 + pos),
                level="INFO",
                source="Worker",
                message=message,
                session_id=f"container_{sid:04d}",
            )
            for pos, message in enumerate(messages)
        ]
        sessions.append(
            Session(
                session_id=f"container_{sid:04d}",
                app_id="app_1",
                records=records,
            )
        )
    return sessions


def spell_state(parser):
    """Full observable Spell state (table + bookkeeping)."""
    return [
        (k.key_id, tuple(k.tokens), k.sample, k.count, tuple(k.line_ids))
        for k in parser.keys()
    ]


def model_json(intellog) -> str:
    return json.dumps(intellog.hw_graph().to_dict(), sort_keys=True)


# -- property-based: the deterministic-merge invariant ------------------------


class TestMergeProperties:
    @given(corpora(), st.randoms(use_true_random=False))
    @settings(max_examples=30, deadline=None)
    def test_shard_result_order_invariance(self, sessions, rng):
        """The merge pairs results by shard index and content hash, so the
        arrival (completion) order of shard results cannot matter."""
        shards = make_shards(sessions)
        parses = [
            parse_shard(
                ParseTask(s.index, s.content_hash, s.session)
            )
            for s in shards
        ]
        merged = merge_shards(shards, parses)
        shuffled = list(parses)
        rng.shuffle(shuffled)
        remerged = merge_shards(shards, shuffled)
        assert spell_state(remerged.spell) == spell_state(merged.spell)
        assert remerged.record_keys == merged.record_keys
        assert remerged.distinct_forms == merged.distinct_forms

    @given(corpora())
    @settings(max_examples=30, deadline=None)
    def test_merge_reproduces_streaming_spell(self, sessions):
        """Form replay == consuming every record serially: same table,
        same samples, same counts, same per-record assignment."""
        from repro.parsing.spell import SpellParser

        serial = SpellParser()
        serial_keys = [
            [serial.consume(r.message).key_id for r in session.records]
            for session in sessions
        ]
        shards = make_shards(sessions)
        merged = merge_shards(
            shards,
            [
                parse_shard(
                    ParseTask(s.index, s.content_hash, s.session)
                )
                for s in shards
            ],
        )
        assert spell_state(merged.spell) == spell_state(serial)
        assert merged.record_keys == serial_keys

    @given(corpora(), st.integers(1, 3))
    @settings(max_examples=15, deadline=None)
    def test_pipeline_equals_serial_trainer(self, sessions, workers):
        """Key tables, Intel Keys, groups and subroutines all agree with
        the serial trainer for any worker count (inline path)."""
        serial = IntelLog()
        serial.train(sessions)
        # workers>1 would spawn real processes per hypothesis example;
        # the inline path runs the identical shard/merge/apply code, and
        # the multiprocess leg is covered by the non-property tests and
        # the golden suite.
        parallel = IntelLog()
        parallel.train(sessions, workers=1)
        assert spell_state(parallel.spell) == spell_state(serial.spell)
        assert {
            k: v.to_dict() for k, v in parallel.intel_keys.items()
        } == {k: v.to_dict() for k, v in serial.intel_keys.items()}
        assert model_json(parallel) == model_json(serial)


# -- sharding ----------------------------------------------------------------


class TestSharding:
    def _sessions(self):
        return [
            Session(
                session_id=f"c{i}",
                records=[
                    LogRecord(
                        timestamp=float(i * 10 + j),
                        level="INFO",
                        source="S",
                        message=f"worker {i} started task {j}",
                    )
                    for j in range(3)
                ],
            )
            for i in range(4)
        ]

    def test_shard_partition_is_per_session(self):
        sessions = self._sessions()
        shards = make_shards(sessions)
        assert [s.index for s in shards] == [0, 1, 2, 3]
        assert [s.base_offset for s in shards] == [0, 3, 6, 9]
        assert all(len(s) == 3 for s in shards)

    def test_content_hash_tracks_content(self):
        sessions = self._sessions()
        a = shard_hash(sessions[0])
        assert a == shard_hash(sessions[0])  # deterministic
        sessions[0].records[1].message += " extra"
        assert shard_hash(sessions[0]) != a

    def test_manifest_depends_on_order_and_content(self):
        sessions = self._sessions()
        manifest = corpus_manifest(make_shards(sessions))
        assert manifest == corpus_manifest(make_shards(sessions))
        reordered = corpus_manifest(
            make_shards(list(reversed(sessions)))
        )
        assert reordered != manifest

    def test_merge_rejects_foreign_results(self):
        sessions = self._sessions()
        shards = make_shards(sessions)
        parses = [
            parse_shard(ParseTask(s.index, s.content_hash, s.session))
            for s in shards
        ]
        with pytest.raises(MergeError, match="duplicate"):
            merge_shards(shards, parses[:-1] + [parses[0]])
        with pytest.raises(MergeError, match="hash mismatch"):
            bad = parses[0]
            bad.content_hash = "0" * 64
            merge_shards(shards, parses)

    def test_merge_rejects_wrong_count(self):
        shards = make_shards(self._sessions())
        with pytest.raises(MergeError, match="expected"):
            merge_shards(shards, [])


# -- extraction cache --------------------------------------------------------


class TestExtractionCache:
    KEY = ("worker", "*", "started", "task", "*")
    SAMPLE = "worker 3 started task 7"

    def test_hit_returns_equal_key_with_requested_id(self):
        cache = ExtractionCache()
        first = cache.extract("K0", self.KEY, self.SAMPLE)
        second = cache.extract("K9", self.KEY, self.SAMPLE)
        assert cache.stats() == (1, 1)
        assert second.key_id == "K9"
        assert first.key_id == "K0"
        # Identical apart from the stamped id.
        from dataclasses import replace

        assert replace(first, key_id="") == replace(second, key_id="")

    def test_disabled_cache_always_misses(self):
        cache = ExtractionCache()
        cache.extract("K0", self.KEY, self.SAMPLE, enabled=False)
        cache.extract("K0", self.KEY, self.SAMPLE, enabled=False)
        assert cache.stats() == (0, 2)
        assert len(cache) == 0

    def test_cached_equals_cold(self):
        cache = ExtractionCache()
        warm = cache.extract("K0", self.KEY, self.SAMPLE)
        cold = cache.extract("K0", self.KEY, self.SAMPLE, enabled=False)
        assert warm == cold

    def test_process_cache_is_a_singleton(self):
        assert process_cache() is process_cache()


# -- pipeline ----------------------------------------------------------------


class TestTrainParallel:
    def _sessions(self):
        return [
            Session(
                session_id=f"c{i}",
                records=[
                    LogRecord(
                        timestamp=float(i * 100 + j),
                        level="INFO",
                        source="S",
                        message=m.format(i=i, j=j),
                    )
                    for j, m in enumerate(
                        (
                            "worker {i} started task {j}",
                            "read {j} bytes from stream part{i}",
                            "worker {i} finished task {j} in 5 ms",
                        )
                    )
                ],
            )
            for i in range(5)
        ]

    @pytest.mark.parametrize("bad", [0, -1, 2.5, True, "2"])
    def test_rejects_invalid_workers(self, bad):
        with pytest.raises(ValueError, match="positive integer"):
            train_parallel(IntelLog(), self._sessions(), workers=bad)

    def test_train_workers_kwarg_routes_to_pipeline(self):
        intellog = IntelLog()
        summary = intellog.train(self._sessions(), workers=1)
        report = intellog.last_parallel_report
        assert report is not None
        assert report.workers == 1
        assert report.shards == 5
        assert report.records == summary.messages == 15
        assert len(report.parse_shard_seconds) == 5
        assert len(report.stats_shard_seconds) == 5
        # 15 records < MIN_BATCH_RECORDS: one batch, inline pool.
        assert report.batches == 1
        assert report.pool_workers == 1
        assert report.batch_target_records == MIN_BATCH_RECORDS
        assert len(report.parse_batch_seconds) == 1
        assert len(report.stats_batch_seconds) == 1
        # Inline runs ship nothing across a process boundary.
        assert report.payload_bytes_total == 0

    def test_serial_train_leaves_no_report(self):
        intellog = IntelLog()
        intellog.train(self._sessions())
        assert intellog.last_parallel_report is None

    def test_multiprocess_equals_serial(self):
        sessions = self._sessions()
        serial = IntelLog()
        serial.train(sessions)
        parallel = IntelLog()
        # batch_records forces >1 batch so a real pool is exercised.
        parallel.train(sessions, workers=2, batch_records=3)
        report = parallel.last_parallel_report
        assert report.pool_workers == 2
        assert report.batches > 1
        assert report.payload_bytes_total > 0
        assert spell_state(parallel.spell) == spell_state(serial.spell)
        assert model_json(parallel) == model_json(serial)

    def test_cache_off_equals_cache_on(self):
        sessions = self._sessions()
        with_cache = IntelLog()
        with_cache.train(sessions, workers=1, cache=True)
        without = IntelLog()
        without.train(sessions, workers=1, cache=False)
        assert model_json(with_cache) == model_json(without)
        assert without.last_parallel_report.cache_hits == 0

    def test_detector_works_after_parallel_training(self):
        sessions = self._sessions()
        intellog = IntelLog()
        intellog.train(sessions, workers=1)
        report = intellog.detect_job(sessions[:2], job_id="replay")
        assert report.sessions


class TestLptMakespan:
    def test_empty(self):
        assert lpt_makespan([], 4) == 0.0

    def test_single_bin_is_sum(self):
        assert lpt_makespan([3.0, 1.0, 2.0], 1) == pytest.approx(6.0)

    def test_perfect_split(self):
        assert lpt_makespan([2.0, 2.0, 2.0, 2.0], 2) == pytest.approx(4.0)

    def test_bounded_below_by_longest_task(self):
        assert lpt_makespan([5.0, 0.1, 0.1], 8) == pytest.approx(5.0)

    def test_rejects_zero_bins(self):
        with pytest.raises(ValueError):
            lpt_makespan([1.0], 0)

    def test_more_bins_never_slower(self):
        durations = [3.0, 2.5, 2.0, 1.0, 0.5, 0.5]
        spans = [lpt_makespan(durations, n) for n in range(1, 7)]
        assert spans == sorted(spans, reverse=True)


# -- shard stats task ---------------------------------------------------------


# -- shard batches ------------------------------------------------------------


def _flat(batches):
    return [
        (s.index, s.content_hash) for b in batches for s in b.shards
    ]


class TestBatching:
    def _sessions(self, n=6, records=4):
        return [
            Session(
                session_id=f"c{i}",
                records=[
                    LogRecord(
                        timestamp=float(i * 100 + j),
                        level="INFO",
                        source="S",
                        message=f"worker {i} started task {j}",
                    )
                    for j in range(records)
                ],
            )
            for i in range(n)
        ]

    def test_greedy_fill_in_corpus_order(self):
        shards = make_shards(self._sessions(n=6, records=4))
        batches = make_batches(shards, target_records=8)
        # 6 shards x 4 records, target 8: closed after every 2 shards.
        assert [len(b) for b in batches] == [2, 2, 2]
        assert [b.records for b in batches] == [8, 8, 8]
        assert [b.index for b in batches] == [0, 1, 2]
        assert _flat(batches) == [
            (s.index, s.content_hash) for s in shards
        ]

    def test_oversized_session_forms_its_own_batch(self):
        sessions = self._sessions(n=3, records=10)
        shards = make_shards(sessions)
        batches = make_batches(shards, target_records=5)
        # Sessions are never split: each 10-record shard overshoots the
        # 5-record target on its own.
        assert [len(b) for b in batches] == [1, 1, 1]

    def test_trailing_partial_batch_kept(self):
        shards = make_shards(self._sessions(n=5, records=4))
        batches = make_batches(shards, target_records=8)
        assert [b.records for b in batches] == [8, 8, 4]

    def test_derived_target_floors_at_min_batch_records(self):
        assert derive_batch_target(10) == MIN_BATCH_RECORDS
        assert derive_batch_target(32 * MIN_BATCH_RECORDS) == (
            MIN_BATCH_RECORDS
        )
        # Large corpora aim for 32 slices (8 workers x 4).
        assert derive_batch_target(3_200_000) == 100_000

    def test_rejects_invalid_target(self):
        shards = make_shards(self._sessions())
        with pytest.raises(ValueError, match="positive"):
            make_batches(shards, target_records=0)

    def test_batch_hash_tracks_members(self):
        shards = make_shards(self._sessions())
        assert batch_hash(shards[:2]) == batch_hash(shards[:2])
        assert batch_hash(shards[:2]) != batch_hash(shards[:3])
        assert batch_hash(shards[:2]) != batch_hash(
            [shards[1], shards[0]]
        )

    def test_partition_ignores_host_core_count(self):
        """The layout is a pure function of the corpus: a machine with a
        different core count must cut identical batches."""
        shards = make_shards(self._sessions())
        layouts = []
        for cores in (1, 2, 64, None):
            with mock.patch("os.cpu_count", return_value=cores):
                batches = make_batches(shards)
                layouts.append(
                    [(b.index, b.batch_hash, len(b)) for b in batches]
                )
        assert all(layout == layouts[0] for layout in layouts)

    def test_partition_ignores_worker_count(self):
        """Reports from different worker counts agree on the layout."""
        sessions = self._sessions()
        layouts = []
        for workers in (1, 2, 3):
            intellog = IntelLog()
            intellog.train(sessions, workers=workers, batch_records=8)
            report = intellog.last_parallel_report
            layouts.append(
                (
                    report.batches,
                    report.batch_target_records,
                    report.manifest,
                    len(report.parse_batch_seconds),
                )
            )
        assert all(layout == layouts[0] for layout in layouts)

    def test_model_independent_of_batch_layout(self):
        """Batching is a performance knob: any layout, same bytes."""
        sessions = self._sessions()
        digests = set()
        for batch_records in (1, 3, 7, None):
            intellog = IntelLog()
            intellog.train(
                sessions, workers=1, batch_records=batch_records
            )
            digests.add(model_json(intellog))
        assert len(digests) == 1

    @given(corpora(max_sessions=6, max_records=8), st.integers(1, 20))
    @settings(max_examples=40, deadline=None)
    def test_partition_properties(self, sessions, target):
        """Every shard appears exactly once, in corpus order; every
        batch but the last reaches the target; repeated cuts agree."""
        shards = make_shards(sessions)
        batches = make_batches(shards, target_records=target)
        assert _flat(batches) == [
            (s.index, s.content_hash) for s in shards
        ]
        assert [b.index for b in batches] == list(range(len(batches)))
        for batch in batches[:-1]:
            assert batch.records >= target
        again = make_batches(shards, target_records=target)
        assert [(b.index, b.batch_hash) for b in again] == [
            (b.index, b.batch_hash) for b in batches
        ]

    @given(corpora(max_sessions=5, max_records=6))
    @settings(max_examples=25, deadline=None)
    def test_default_partition_is_pure(self, sessions):
        """The derived target never consults the host: cuts under
        wildly different advertised core counts are identical."""
        shards = make_shards(sessions)
        with mock.patch("os.cpu_count", return_value=1):
            one = make_batches(shards)
        with mock.patch("os.cpu_count", return_value=96):
            many = make_batches(shards)
        assert [(b.index, b.batch_hash) for b in one] == [
            (b.index, b.batch_hash) for b in many
        ]


# -- worker failures ----------------------------------------------------------


class _PoisonMessage(str):
    """A str that works in-parent but cannot be pickled to a worker."""

    def __reduce__(self):
        raise RuntimeError("poisoned shard payload")


class _CancelTask:
    """Task for the cancellation regression: poison or slow marker."""

    def __init__(self, index: int, path: str | None) -> None:
        self.index = index
        self.path = path


def _cancel_probe(task: _CancelTask):
    if task.path is None:
        raise RuntimeError("boom")
    Path(task.path).write_text("ran")
    time.sleep(0.05)
    return task.index


class TestWorkerFailure:
    def _sessions(self, n=5):
        return [
            Session(
                session_id=f"c{i}",
                records=[
                    LogRecord(
                        timestamp=float(i * 10 + j),
                        level="INFO",
                        source="S",
                        message=f"worker {i} started task {j}",
                    )
                    for j in range(3)
                ],
            )
            for i in range(n)
        ]

    def test_inline_failure_wrapped_with_batch_index(self, monkeypatch):
        from repro.parallel import worker as worker_mod

        real = worker_mod.mask_message

        def boom(message):
            if "task 1" in message:
                raise RuntimeError("injected parse failure")
            return real(message)

        monkeypatch.setattr(worker_mod, "mask_message", boom)
        with pytest.raises(ParallelWorkerError) as excinfo:
            train_parallel(IntelLog(), self._sessions(), workers=1)
        assert excinfo.value.phase == "parse"
        assert excinfo.value.batch_index == 0
        assert "injected parse failure" in str(excinfo.value)

    def test_poisoned_shard_surfaces_batch_index(self):
        """A shard whose payload dies on the way to the pool fails the
        run with a typed error naming the poisoned batch."""
        sessions = self._sessions()
        sessions[3].records[1].message = _PoisonMessage(
            sessions[3].records[1].message
        )
        with pytest.raises(ParallelWorkerError) as excinfo:
            # batch_records=3 -> one 3-record session per batch.
            train_parallel(
                IntelLog(), sessions, workers=2, batch_records=3
            )
        assert excinfo.value.phase == "parse"
        assert excinfo.value.batch_index == 3

    def test_failure_cancels_pending_tasks(self, tmp_path):
        """A poisoned first task must not let the queued tail run to
        completion before the error surfaces."""
        markers = [tmp_path / f"marker_{i}.txt" for i in range(12)]
        tasks = [_CancelTask(0, None)] + [
            _CancelTask(i + 1, str(path))
            for i, path in enumerate(markers)
        ]
        executor = ProcessPoolExecutor(
            max_workers=1,
            mp_context=multiprocessing.get_context("fork"),
        )
        try:
            with pytest.raises(ParallelWorkerError) as excinfo:
                _run_tasks(
                    executor, _cancel_probe, tasks, phase="parse"
                )
            assert excinfo.value.batch_index == 0
        finally:
            # Deliberately no cancel_futures here: if _run_tasks left
            # the queue intact, shutdown(wait=True) would run every
            # marker task and the assertion below would fail.
            executor.shutdown(wait=True)
        ran = sum(1 for path in markers if path.exists())
        assert ran < len(markers), (
            "pending tasks were not cancelled after a worker failure"
        )


# -- report serialization -----------------------------------------------------


class TestReportRoundTrip:
    def _report(self, **kwargs) -> ParallelReport:
        intellog = IntelLog()
        intellog.train(
            TestWorkerFailure()._sessions(), **kwargs
        )
        return intellog.last_parallel_report

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 1},
            {"workers": 2, "batch_records": 3},
        ],
    )
    def test_to_dict_round_trips_through_json(self, kwargs):
        report = self._report(**kwargs)
        data = json.loads(json.dumps(report.to_dict()))
        restored = ParallelReport.from_dict(data)
        assert restored.to_dict() == report.to_dict()
        # The modeled speedup is recomputable from the artifact alone.
        for n in (1, 2, 4, 8):
            assert restored.modeled_speedup(n) == pytest.approx(
                report.modeled_speedup(n)
            )
        assert restored.serial_overhead == pytest.approx(
            report.serial_overhead
        )
        assert restored.payload_bytes_total == report.payload_bytes_total

    def test_artifact_carries_per_batch_series(self):
        report = self._report(workers=2, batch_records=3)
        data = report.to_dict()
        assert len(data["parse_batch_seconds"]) == report.batches
        assert len(data["stats_batch_seconds"]) == report.batches
        assert len(data["parse_payload_bytes"]) == report.batches
        assert len(data["stats_payload_bytes"]) == report.batches
        assert len(data["parse_result_bytes"]) == report.batches
        assert len(data["stats_result_bytes"]) == report.batches
        assert len(data["parse_shard_seconds"]) == report.shards
        assert len(data["stats_shard_seconds"]) == report.shards
        assert data["payload_bytes_total"] == report.payload_bytes_total
        assert data["cache_lookups"] == report.cache_lookups


# -- cache accounting ---------------------------------------------------------


class TestCacheConservation:
    def test_lookups_invariant_across_worker_counts(self):
        """For a fixed corpus (and therefore a fixed batch layout),
        hits + misses is conserved no matter how many processes the
        lookups were spread over."""
        sessions = TestWorkerFailure()._sessions()
        totals = {}
        for workers in (1, 2, 4):
            intellog = IntelLog()
            intellog.train(sessions, workers=workers, batch_records=3)
            report = intellog.last_parallel_report
            totals[workers] = report.cache_lookups
            assert report.cache_lookups > 0
        assert len(set(totals.values())) == 1, totals

    def test_lookup_total_matches_structure(self):
        """Total lookups = one canonical pass over the key table plus
        one batch-key-table pass per batch."""
        sessions = TestWorkerFailure()._sessions()
        intellog = IntelLog()
        intellog.train(sessions, workers=1, batch_records=3)
        report = intellog.last_parallel_report
        # Same key set in every session here, so each of the 5 batches
        # looks up the full table once, plus the canonical pass.
        assert report.cache_lookups == report.log_keys * (
            report.batches + 1
        )

    def test_init_worker_warms_extractor(self):
        cache = process_cache()
        init_worker()
        assert cache._extractor is not None


class TestShardStats:
    def test_stats_payload_matches_direct_computation(self):
        session = Session(
            session_id="c0",
            records=[
                LogRecord(
                    timestamp=float(j),
                    level="INFO",
                    source="S",
                    message=f"worker 1 started task {j}",
                )
                for j in range(3)
            ],
        )
        shards = make_shards([session])
        parses = [
            parse_shard(ParseTask(s.index, s.content_hash, s.session))
            for s in shards
        ]
        merged = merge_shards(shards, parses)
        key = merged.spell.keys()[0]
        task = StatsTask(
            index=0,
            content_hash=shards[0].content_hash,
            session=session,
            record_keys=merged.record_keys[0],
            key_table=[(key.key_id, tuple(key.tokens), key.sample)],
            key_labels={key.key_id: ("worker",)},
        )
        stats = compute_shard_stats(task)
        assert stats.content_hash == shards[0].content_hash
        assert stats.messages == 3
        [payload] = stats.groups
        assert payload[0] == "worker"  # label
        assert payload[2] == [0.0, 2.0]  # lifespan
        assert payload[3] == 3  # max_key_repeat
