"""Shared fixtures: simulated corpora and trained models.

Expensive fixtures are session-scoped; tests must not mutate them.
"""

from __future__ import annotations

import pytest

from repro import IntelLog
from repro.simulators import (
    MapReduceConfig,
    MapReduceSimulator,
    SparkConfig,
    SparkSimulator,
    TezConfig,
    TezSimulator,
    WorkloadGenerator,
    sessions_of,
)

#: The paper's Figure 1 log snippet (fetcher subroutine), verbatim.
FIGURE1_SNIPPET = [
    "fetcher#1 about to shuffle output of map attempt_01",
    "fetcher#1 read 2264 bytes from map-output for attempt_01",
    "host1:13562 freed by fetcher#1 in 4ms",
]


@pytest.fixture(scope="session")
def mr_training_jobs():
    sim = MapReduceSimulator(seed=42)
    return [
        sim.run_job(
            "wordcount",
            MapReduceConfig(input_gb=float(1 + i % 4)),
            base_time=i * 1000.0,
        )
        for i in range(8)
    ]


@pytest.fixture(scope="session")
def mr_model(mr_training_jobs):
    intellog = IntelLog()
    intellog.train(sessions_of(mr_training_jobs))
    return intellog


@pytest.fixture(scope="session")
def spark_training_jobs():
    gen = WorkloadGenerator(seed=7)
    return gen.run_batch("spark", 8)


@pytest.fixture(scope="session")
def spark_model(spark_training_jobs):
    intellog = IntelLog()
    intellog.train(sessions_of(spark_training_jobs))
    return intellog


@pytest.fixture(scope="session")
def tez_training_jobs():
    gen = WorkloadGenerator(seed=13)
    return gen.run_batch("tez", 8)


@pytest.fixture(scope="session")
def tez_model(tez_training_jobs):
    intellog = IntelLog()
    intellog.train(sessions_of(tez_training_jobs))
    return intellog


@pytest.fixture()
def mr_simulator():
    return MapReduceSimulator(seed=5)


@pytest.fixture()
def spark_simulator():
    return SparkSimulator(seed=5)


@pytest.fixture()
def tez_simulator():
    return TezSimulator(seed=5)
