"""Shared fixtures: simulated corpora and trained models.

Expensive fixtures are session-scoped; tests must not mutate them.

Setting ``REPRO_TRAIN_WORKERS=N`` trains every shared model through the
sharded parallel pipeline (``IntelLog.train(..., workers=N)``) instead of
the serial loop.  The pipeline's deterministic merge guarantees a
byte-identical model, so the whole suite doubles as a serial-vs-parallel
equivalence check — CI runs one matrix leg with it set to 2.
"""

from __future__ import annotations

import os

import pytest

from repro import IntelLog
from repro.simulators import (
    MapReduceConfig,
    MapReduceSimulator,
    SparkConfig,
    SparkSimulator,
    TezConfig,
    TezSimulator,
    WorkloadGenerator,
    sessions_of,
)

def train_model(sessions) -> IntelLog:
    """Train a shared fixture model, honouring ``REPRO_TRAIN_WORKERS``."""
    workers_env = os.environ.get("REPRO_TRAIN_WORKERS", "").strip()
    intellog = IntelLog()
    if workers_env:
        intellog.train(sessions, workers=int(workers_env))
    else:
        intellog.train(sessions)
    return intellog


#: The paper's Figure 1 log snippet (fetcher subroutine), verbatim.
FIGURE1_SNIPPET = [
    "fetcher#1 about to shuffle output of map attempt_01",
    "fetcher#1 read 2264 bytes from map-output for attempt_01",
    "host1:13562 freed by fetcher#1 in 4ms",
]


@pytest.fixture(scope="session")
def mr_training_jobs():
    sim = MapReduceSimulator(seed=42)
    return [
        sim.run_job(
            "wordcount",
            MapReduceConfig(input_gb=float(1 + i % 4)),
            base_time=i * 1000.0,
        )
        for i in range(8)
    ]


@pytest.fixture(scope="session")
def mr_model(mr_training_jobs):
    return train_model(sessions_of(mr_training_jobs))


@pytest.fixture(scope="session")
def spark_training_jobs():
    gen = WorkloadGenerator(seed=7)
    return gen.run_batch("spark", 8)


@pytest.fixture(scope="session")
def spark_model(spark_training_jobs):
    return train_model(sessions_of(spark_training_jobs))


@pytest.fixture(scope="session")
def tez_training_jobs():
    gen = WorkloadGenerator(seed=13)
    return gen.run_batch("tez", 8)


@pytest.fixture(scope="session")
def tez_model(tez_training_jobs):
    return train_model(sessions_of(tez_training_jobs))


@pytest.fixture()
def mr_simulator():
    return MapReduceSimulator(seed=5)


@pytest.fixture()
def spark_simulator():
    return SparkSimulator(seed=5)


@pytest.fixture()
def tez_simulator():
    return TezSimulator(seed=5)
