"""Kill-point crash-recovery sweep (``repro.serve.harness``).

For every labeled kill point in the publish/checkpoint/swap/finalize
protocols, a victim subprocess arms the label and dies mid-write with
``os._exit(73)``; recovery then runs startup fsck, re-attaches, drains,
and the harness asserts the durability invariants (registry fsck-clean,
exactly-once reports, tenant healthy or explicitly quarantined).  These
are the slowest tests in the suite (one subprocess per label, each
training a model) — the full sweep also runs as the ``crash-recovery``
CI job via ``tools/crash_harness.py``.
"""

from __future__ import annotations

import json

import pytest

from repro.core.killpoints import KILL_EXIT_CODE, KILL_POINTS
from repro.serve.harness import (
    PUBLISH_LABELS,
    SERVE_LABELS,
    run_one,
    run_sweep,
    scenario_for,
)


def test_every_kill_point_has_a_scenario():
    assert set(KILL_POINTS) == set(PUBLISH_LABELS) | set(SERVE_LABELS)
    for label in KILL_POINTS:
        assert scenario_for(label) in ("publish", "serve")
    with pytest.raises(ValueError):
        scenario_for("no.such.label")


@pytest.mark.parametrize("label", KILL_POINTS)
def test_kill_point_recovers(label, tmp_path):
    row = run_one(label, tmp_path / "work")
    assert row["killed"], (
        f"victim for {label} exited {row['victim_exit']}, "
        f"expected {KILL_EXIT_CODE}: {row}"
    )
    assert row["ok"], row


def test_sweep_report_shape(tmp_path):
    report = run_sweep(
        tmp_path, labels=["registry.publish.intent"]
    )
    assert report["format"] == "repro-crash-harness-v1"
    assert report["passed"] + report["failed"] == 1
    # The report round-trips through JSON (the CI artifact).
    doc = json.loads(json.dumps(report))
    assert doc["results"][0]["label"] == "registry.publish.intent"
