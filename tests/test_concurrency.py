"""Concurrency analysis (repro.analysis.concurrency): rules + gate.

``TestRepoGate`` is the pytest-collected race check: it runs the
whole-program analyzer over ``src/repro`` on every tier-1 run, so a
merge that adds an unguarded write, a lock-order inversion, or a
fork-unsafe executor payload fails CI without extra tooling — the
concurrency twin of ``test_astlint.TestRepoIsClean``.

The golden corpus under ``tests/fixtures/concurrency/`` pins each
diagnostic code to a minimal known-racy snippet and each known-clean
control to silence, so rule behaviour cannot drift unnoticed.
"""

from __future__ import annotations

import json
import textwrap
import time
from pathlib import Path

from repro.analysis.concurrency import analyze_paths, analyze_source
from repro.analysis.concurrency import main as concurrency_main
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "concurrency"

RACY_FIXTURES = {
    "race001_unguarded_write.py": "RACE001",
    "race001_registry_swap.py": "RACE001",
    "race002_cycle.py": "RACE002",
    "race002_self_deadlock.py": "RACE002",
    "race003_fork_capture.py": "RACE003",
    "race004_handoff.py": "RACE004",
    "race005_blocking.py": "RACE005",
}

CLEAN_FIXTURES = (
    "race001_clean_guarded.py",
    "race001_registry_swap_clean.py",
    "race001_helper_guarded.py",
    "race003_clean.py",
    "clean_pipeline.py",
)


def fixture_report(name: str):
    return analyze_paths([FIXTURES / name])


class TestRepoGate:
    def test_src_repro_has_zero_findings_fast(self):
        start = time.perf_counter()
        report = analyze_paths([SRC])
        elapsed = time.perf_counter() - start
        assert len(report) == 0, report.render()
        # The gate must stay cheap enough to run on every tier-1 pass.
        assert elapsed < 10.0, f"analyzer took {elapsed:.1f}s"


class TestGoldenCorpus:
    def test_every_racy_fixture_fires_exactly_its_code(self):
        for name, code in RACY_FIXTURES.items():
            report = fixture_report(name)
            assert report.codes == {code}, (name, report.render())

    def test_every_clean_fixture_is_silent(self):
        for name in CLEAN_FIXTURES:
            report = fixture_report(name)
            assert len(report) == 0, (name, report.render())

    def test_corpus_covers_every_race_code(self):
        assert set(RACY_FIXTURES.values()) == {
            "RACE001", "RACE002", "RACE003", "RACE004", "RACE005"
        }

    def test_race001_names_class_attr_and_both_methods(self):
        report = fixture_report("race001_unguarded_write.py")
        subjects = {d.subject for d in report.diagnostics}
        assert subjects == {"Counter._count", "AcqRelCounter._total"}
        by_subject = {d.subject: d.message for d in report.diagnostics}
        # The acquire()/release() pair counts as holding the lock.
        assert "add()" in by_subject["AcqRelCounter._total"]
        assert "clear()" in by_subject["AcqRelCounter._total"]

    def test_race002_cycle_spans_two_classes(self):
        report = fixture_report("race002_cycle.py")
        (diag,) = report.diagnostics
        assert "Producer._lock" in diag.message
        assert "Consumer._lock" in diag.message
        assert "cycle" in diag.message

    def test_race002_self_deadlock_only_for_plain_lock(self):
        report = fixture_report("race002_self_deadlock.py")
        (diag,) = report.diagnostics
        assert diag.subject == "PlainGate._lock"
        assert "ReentrantGate" not in diag.message

    def test_race003_names_the_captured_lock(self):
        report = fixture_report("race003_fork_capture.py")
        (diag,) = report.diagnostics
        assert "Tracker" in diag.message
        assert "_lock" in diag.message

    def test_race004_is_a_warning_with_both_lines(self):
        report = fixture_report("race004_handoff.py")
        (diag,) = report.diagnostics
        assert diag.severity.name == "WARNING"
        assert "handed to another thread" in diag.message

    def test_race005_flags_sleep_and_file_io(self):
        report = fixture_report("race005_blocking.py")
        messages = " | ".join(d.message for d in report.diagnostics)
        assert len(report) == 2
        assert "time.sleep" in messages
        assert "IO" in messages


class TestAnalyzeSource:
    def test_unguarded_write_from_source_string(self):
        src = textwrap.dedent(
            """
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.n = 0

                def a(self):
                    with self._lock:
                        self.n += 1

                def b(self):
                    self.n = 0
            """
        )
        report = analyze_source(src, path="mod.py")
        assert report.codes == {"RACE001"}
        assert report.diagnostics[0].location.startswith("mod.py:")

    def test_init_writes_are_never_flagged(self):
        src = textwrap.dedent(
            """
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.n = 0

                def a(self):
                    with self._lock:
                        self.n += 1
            """
        )
        assert len(analyze_source(src)) == 0

    def test_syntax_error_is_reported_not_raised(self):
        report = analyze_source("def broken(:\n", path="broken.py")
        assert len(report) == 1
        assert "does not parse" in report.diagnostics[0].message

    def test_lock_received_via_constructor_param(self):
        # A lock annotated on an __init__ parameter (the registry's
        # shared-family-RLock pattern) still yields guard tracking.
        src = textwrap.dedent(
            """
            import threading

            class Child:
                def __init__(self, lock: threading.RLock):
                    self._lock = lock
                    self.n = 0

                def a(self):
                    with self._lock:
                        self.n += 1

                def b(self):
                    self.n = 0
            """
        )
        assert analyze_source(src).codes == {"RACE001"}


class TestSuppressionPragmas:
    RACY = textwrap.dedent(
        """
        import threading

        class C:
            def __init__(self):
                self._lock = threading.Lock()
                self.n = 0

            def a(self):
                with self._lock:
                    self.n += 1

            def b(self):
                self.n = 0{pragma}
        """
    )

    def test_pragma_suppresses_the_named_code(self):
        src = self.RACY.format(
            pragma="  # repro: allow=RACE001 -- single-writer phase"
        )
        report = analyze_source(src)
        assert len(report) == 0, report.render()

    def test_pragma_is_per_code(self):
        src = self.RACY.format(
            pragma="  # repro: allow=RACE005 -- wrong code"
        )
        assert analyze_source(src).codes == {"RACE001"}

    def test_unknown_code_reports_sup001(self):
        src = self.RACY.format(
            pragma="  # repro: allow=RACE999 -- no such rule"
        )
        assert analyze_source(src).codes == {"RACE001", "SUP001"}

    def test_missing_justification_reports_sup002(self):
        src = self.RACY.format(pragma="  # repro: allow=RACE001")
        # The finding is suppressed but the bare pragma is flagged, so
        # the CI gate still fails until a reason is written.
        assert analyze_source(src).codes == {"SUP002"}


class TestRunners:
    def test_cli_clean_exit_zero(self, capsys):
        code = main(["lint-concurrency", str(SRC)])
        assert code == 0
        assert "0 diagnostics" in capsys.readouterr().out

    def test_cli_racy_fixture_exit_one(self, capsys):
        code = main([
            "lint-concurrency",
            str(FIXTURES / "race001_unguarded_write.py"),
        ])
        assert code == 1
        assert "RACE001" in capsys.readouterr().out

    def test_cli_json_output(self, capsys):
        code = main([
            "lint-concurrency", "--json",
            str(FIXTURES / "race002_cycle.py"),
        ])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert [d["code"] for d in payload["diagnostics"]] == ["RACE002"]

    def test_cli_dump_model_describes_classes(self, capsys):
        code = main([
            "lint-concurrency", "--dump-model",
            str(FIXTURES / "race001_clean_guarded.py"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "class Counter" in out
        assert "_lock" in out

    def test_standalone_main_json_out(self, tmp_path, capsys):
        out_path = tmp_path / "report.json"
        code = concurrency_main([
            "--json-out", str(out_path),
            str(FIXTURES / "race003_fork_capture.py"),
        ])
        assert code == 1
        payload = json.loads(out_path.read_text())
        assert [d["code"] for d in payload["diagnostics"]] == ["RACE003"]

    def test_standalone_main_missing_path_exit_two(self, capsys):
        assert concurrency_main(["does/not/exist.py"]) == 2
        assert "error" in capsys.readouterr().out
