"""Multi-tenant serving soak: chaos-injected tenants, threaded sweeps.

The serving analogue of ``test_stream_resilience``'s end-to-end chaos
run: three tenants, each following its own :class:`ChaosLogWriter`-
damaged hadoop-layout log file through a flaky source, scheduled by a
two-worker :class:`DetectionService` sharing one registry model.  The
invariants:

* the service drains without any tenant failing;
* every tenant's reports are exactly-once (unique finalization ids);
* injected binary/encoding garbage lands in that tenant's quarantine;
* sessions untouched by injected faults match the batch pipeline
  byte-for-byte (clean-subset parity, per tenant);
* the ``/metrics`` and ``/tenants`` endpoints serve throughout.

Seeded via ``REPRO_CHAOS_SEED``; when ``REPRO_SERVE_ARTIFACTS`` names a
directory, the ``/metrics`` text, ``/tenants`` JSON and each tenant's
chaos log are copied there for CI upload.
"""

from __future__ import annotations

import datetime
import json
import os
import shutil
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro import IntelLog
from repro.core import ResilienceConfig, ServeConfig
from repro.obs import MetricsServer
from repro.parsing.formatters import default_registry
from repro.parsing.records import split_sessions
from repro.query.store import ModelStore
from repro.serve import DetectionService, ModelRegistry, TenantSpec
from repro.simulators import MapReduceConfig, MapReduceSimulator
from repro.stream import (
    ChaosLogWriter,
    FileFollowSource,
    FlakySource,
    ListSink,
    yarn_session_key,
)

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "1"))
_ARTIFACT_DIR = os.environ.get("REPRO_SERVE_ARTIFACTS")

FAST = dict(retry_base_delay=0.0, retry_max_delay=0.0, retry_jitter=0.0)

#: Close only on end markers / final flush — parity without timing.
UNBOUNDED = dict(idle_timeout=1e12, max_open_sessions=10**9)


def _artifact(name: str, content: str | bytes | Path) -> None:
    if not _ARTIFACT_DIR:
        return
    dest = Path(_ARTIFACT_DIR)
    dest.mkdir(parents=True, exist_ok=True)
    if isinstance(content, Path):
        if content.exists():
            shutil.copy(content, dest / name)
        return
    mode = "wb" if isinstance(content, bytes) else "w"
    with open(dest / name, mode) as fp:
        fp.write(content)


def render_hadoop_lines(job) -> list[str]:
    lines = []
    for session in job.sessions:
        for record in session.records:
            stamp = datetime.datetime.utcfromtimestamp(
                record.timestamp + 1_500_000_000
            )
            text = stamp.strftime("%Y-%m-%d %H:%M:%S")
            ms = int((record.timestamp % 1) * 1000)
            lines.append(
                f"{text},{ms:03d} {record.level} "
                f"[{session.session_id}] "
                f"org.apache.hadoop.{record.source}: {record.message}"
            )
    return lines


@pytest.fixture(scope="module")
def hadoop_model():
    sim = MapReduceSimulator(seed=29)
    lines: list[str] = []
    for i in range(4):
        job = sim.run_job(
            "wordcount", MapReduceConfig(input_gb=2.0),
            base_time=i * 3600.0,
        )
        lines.extend(render_hadoop_lines(job))
    intellog = IntelLog()
    intellog.train_lines(lines, formatter="hadoop")
    return intellog


def batch_reports(model: IntelLog, lines: list[str]) -> dict[str, dict]:
    formatter = default_registry().get("hadoop")
    records = [yarn_session_key(r) for r in formatter.parse_lines(lines)]
    detector = model.detector()
    return {
        s.session_id: detector.detect_session(s).to_dict()
        for s in split_sessions(records)
    }


def test_three_chaos_tenants_soak(hadoop_model, tmp_path):
    registry = ModelRegistry(tmp_path / "registry")
    _, digest = registry.publish(
        ModelStore.from_intellog(hadoop_model), "hadoop-prod"
    )

    # Per-tenant chaos-damaged log files with disjoint seeded streams.
    tenants: dict[str, dict] = {}
    for i, tid in enumerate(("team-a", "team-b", "team-c")):
        sim = MapReduceSimulator(seed=100 + 7 * i)
        lines: list[str] = []
        for j in range(2):
            job = sim.run_job(
                "wordcount", MapReduceConfig(input_gb=2.0),
                base_time=90_000.0 + j * 3600.0,
            )
            lines.extend(render_hadoop_lines(job))
        rng = np.random.default_rng(CHAOS_SEED * 1000 + i)
        log_path = tmp_path / f"{tid}.log"
        writer = ChaosLogWriter(
            log_path, rng,
            torn_rate=0.01, duplicate_rate=0.01,
            binary_rate=0.01, encoding_rate=0.01,
        )
        writer.write_lines(lines)
        tenants[tid] = {
            "lines": lines, "writer": writer, "rng": rng,
            "log_path": log_path, "sink": ListSink(),
        }

    service = DetectionService(
        registry,
        ServeConfig(workers=2, quantum=256),
        checkpoint_dir=tmp_path / "ckpt",
        resilience=ResilienceConfig(
            retry_attempts=4, failed_after=50, **FAST
        ),
    )
    for tid, ctx in tenants.items():
        service.attach(
            TenantSpec(
                tenant_id=tid, model="hadoop-prod", **UNBOUNDED
            ),
            source=FlakySource(
                FileFollowSource(ctx["log_path"], formatter="hadoop"),
                rng=ctx["rng"], fail_rate=0.05,
            ),
            sink=ctx["sink"],
        )

    server = MetricsServer(
        service.metrics, port=0,
        json_routes={"/tenants": service.tenants_status},
    )
    try:
        service.drain()
        base = f"http://127.0.0.1:{server.port}"
        with urllib.request.urlopen(base + "/metrics", timeout=5) as r:
            metrics_text = r.read().decode("utf-8")
        with urllib.request.urlopen(base + "/tenants", timeout=5) as r:
            tenants_doc = json.loads(r.read().decode("utf-8"))
    finally:
        server.close()

    _artifact(f"metrics-seed{CHAOS_SEED}.txt", metrics_text)
    _artifact(
        f"tenants-seed{CHAOS_SEED}.json",
        json.dumps(tenants_doc, indent=2, sort_keys=True),
    )
    for tid, ctx in tenants.items():
        _artifact(f"{tid}-seed{CHAOS_SEED}.log", ctx["log_path"])

    # Invariant: the chaos actually injected faults, and no tenant fell
    # over — flaky IO degrades and recovers, it never kills a stream.
    by_id = {t["tenant"]: t for t in tenants_doc["tenants"]}
    assert tenants_doc["fleet"]["active"] == 3
    assert registry.refcount(digest) == 3
    batch_model = ModelStore.load_path(
        registry.artifact_path(digest)
    ).to_intellog()
    for tid, ctx in tenants.items():
        writer = ctx["writer"]
        assert sum(writer.injected.values()) > 0, (
            f"{tid}: chaos injected nothing — raise rates or line count"
        )
        tenant = service.tenant(tid)
        stats = tenant.runtime.stats
        assert tenant.failure is None
        assert stats.health != "failed"
        assert by_id[tid]["failure"] is None

        # Exactly-once delivery per tenant despite retries.
        fids = ctx["sink"].emitted_ids()
        assert len(fids) == len(set(fids)), f"{tid}: duplicate report"
        assert stats.undelivered_reports == 0

        # Injected garbage is quarantined with a reason, per tenant.
        counts = stats.quarantined
        assert counts.get("binary", 0) == writer.injected["binary"]
        assert counts.get("decode_error", 0) == \
            writer.injected["encoding"]

        # Clean-subset parity: sessions the chaos never touched match
        # the batch pipeline byte-for-byte.
        batch = batch_reports(batch_model, ctx["lines"])
        clean = set(batch) - writer.affected_sessions
        assert clean, f"{tid}: every session was hit — lower the rates"
        streamed = {
            r.session_id: r.to_dict()
            for r in ctx["sink"].reports
            if r.session_id in clean
        }
        assert streamed == {sid: batch[sid] for sid in clean}, (
            f"{tid}: clean-subset divergence from batch"
        )

    # The fleet metrics text names every tenant.
    for tid in tenants:
        assert f'serve_tenant_reports{{tenant="{tid}"}}' in metrics_text
    service.close()
    assert registry.refcount(digest) == 0
