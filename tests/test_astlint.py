"""AST lint (repro.analysis.astlint): rules, runner, and the repo itself.

``TestRepoIsClean`` is the pytest-collected determinism check: it lints
``src/repro`` on every tier-1 run, so a merge that introduces an unseeded
generator or a wall-clock call fails CI without any extra tooling.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis import lint_paths, lint_source
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"

#: One violation of every rule, line-accurate (used by several tests).
FIXTURE = textwrap.dedent(
    """
    import random
    import time
    import numpy as np
    from datetime import datetime

    def bad_rng():
        return np.random.default_rng()

    def bad_random():
        return random.random()

    def bad_time():
        return time.time()

    def bad_now():
        return datetime.now()

    def bad_default(items=[]):
        return items

    def swallow():
        try:
            pass
        except Exception:
            pass

    def bad_set_iter(names):
        return [n for n in set(names)]

    def bare():
        try:
            pass
        except:
            pass
    """
)


class TestRepoIsClean:
    def test_src_repro_has_zero_findings(self):
        report = lint_paths([SRC])
        assert len(report) == 0, report.render()

    def test_tools_are_clean_too(self):
        report = lint_paths([REPO_ROOT / "tools"])
        assert len(report) == 0, report.render()


class TestRules:
    def test_fixture_triggers_every_code(self):
        report = lint_source(FIXTURE, "fixture.py")
        assert report.codes == {
            "DET001", "DET002", "DET003", "PY001", "PY002"
        }

    def test_det001_unseeded_default_rng(self):
        report = lint_source(
            "import numpy as np\nrng = np.random.default_rng()\n"
        )
        assert report.codes == {"DET001"}

    def test_det001_seeded_default_rng_is_fine(self):
        for src in (
            "import numpy as np\nrng = np.random.default_rng(42)\n",
            "import numpy as np\nrng = np.random.default_rng(seed)\n",
            "from numpy.random import default_rng\nr = default_rng(7)\n",
        ):
            assert len(lint_source(src)) == 0, src

    def test_det001_aliased_import(self):
        report = lint_source(
            "from numpy.random import default_rng as rng_of\n"
            "r = rng_of()\n"
        )
        assert report.codes == {"DET001"}

    def test_det001_stdlib_random_module(self):
        report = lint_source(
            "import random\nx = random.randint(0, 9)\n"
        )
        assert report.codes == {"DET001"}

    def test_det001_from_random_import(self):
        report = lint_source("from random import shuffle\n")
        assert report.codes == {"DET001"}

    def test_det001_unrelated_random_attribute_is_fine(self):
        # np.random.<anything> is not the stdlib module.
        report = lint_source(
            "import numpy as np\nx = np.random.Generator\n"
        )
        assert len(report) == 0

    def test_det002_wall_clock_calls(self):
        for src in (
            "import time\nt = time.time()\n",
            "import time\nt = time.time_ns()\n",
            "from datetime import datetime\nt = datetime.now()\n",
            "from datetime import datetime\nt = datetime.utcnow()\n",
            "from datetime import date\nt = date.today()\n",
        ):
            assert lint_source(src).codes == {"DET002"}, src

    def test_det002_strptime_is_fine(self):
        # Parsing a timestamp out of a log line is exactly what the
        # formatters do; only *reading the wall clock* is flagged.
        report = lint_source(
            "from datetime import datetime\n"
            "t = datetime.strptime('2019', '%Y')\n"
        )
        assert len(report) == 0

    def test_det003_for_loop_over_set_call(self):
        report = lint_source(
            "def f(xs):\n"
            "    for x in set(xs):\n"
            "        print(x)\n"
        )
        assert report.codes == {"DET003"}

    def test_det003_for_loop_over_set_literal(self):
        report = lint_source(
            "for x in {'a', 'b'}:\n    print(x)\n"
        )
        assert report.codes == {"DET003"}

    def test_det003_comprehension_over_frozenset(self):
        report = lint_source(
            "def f(xs):\n"
            "    return [x for x in frozenset(xs)]\n"
        )
        assert report.codes == {"DET003"}

    def test_det003_list_and_tuple_materialisation(self):
        for consumer in ("list", "tuple", "enumerate"):
            report = lint_source(f"y = {consumer}(set([1, 2]))\n")
            assert report.codes == {"DET003"}, consumer

    def test_det003_sorted_set_is_fine(self):
        for src in (
            "def f(xs):\n    return sorted(set(xs))\n",
            "def f(xs):\n    return [x for x in sorted(set(xs))]\n",
            "def f(xs):\n    for x in sorted({'a', 'b'}):\n        pass\n",
        ):
            assert len(lint_source(src)) == 0, src

    def test_det003_order_insensitive_consumers_are_fine(self):
        for src in (
            "def f(xs):\n    return sum(set(xs))\n",
            "def f(xs):\n    return max(set(xs))\n",
            "def f(xs):\n    return len(set(xs))\n",
            "def f(xs, y):\n    return y in set(xs)\n",
            # set comprehension over a set: result is unordered anyway
            "def f(xs):\n    return {x for x in set(xs)}\n",
        ):
            assert len(lint_source(src)) == 0, src

    def test_det003_set_typed_variable_is_not_flagged(self):
        # Syntactic rule: only sets *by construction* are visible.
        report = lint_source(
            "def f(xs: set):\n"
            "    return [x for x in xs]\n"
        )
        assert len(report) == 0

    def test_py001_mutable_defaults(self):
        for default in ("[]", "{}", "set()", "list()", "dict()"):
            report = lint_source(f"def f(x={default}):\n    return x\n")
            assert report.codes == {"PY001"}, default

    def test_py001_kwonly_defaults(self):
        report = lint_source("def f(*, x=[]):\n    return x\n")
        assert report.codes == {"PY001"}

    def test_py001_immutable_defaults_are_fine(self):
        report = lint_source(
            "def f(x=(), y=None, z=0, s='a', fs=frozenset()):\n"
            "    return x\n"
        )
        assert len(report) == 0

    def test_py002_bare_except(self):
        report = lint_source(
            "try:\n    pass\nexcept:\n    pass\n"
        )
        assert report.codes == {"PY002"}

    def test_py002_except_exception_pass(self):
        report = lint_source(
            "try:\n    pass\nexcept Exception:\n    pass\n"
        )
        assert report.codes == {"PY002"}

    def test_py002_handled_broad_except_is_fine(self):
        report = lint_source(
            "try:\n    pass\n"
            "except Exception as exc:\n    print(exc)\n"
        )
        assert len(report) == 0

    def test_py002_narrow_except_pass_is_fine(self):
        report = lint_source(
            "try:\n    pass\nexcept KeyError:\n    pass\n"
        )
        assert len(report) == 0

    def test_det002_pragma_replaces_obs_allowlist(self):
        # The observability exporter's snapshot stamp used to ride a
        # path allowlist; it now carries an inline pragma like any
        # other sanctioned exception, so the same source is flagged
        # everywhere unless the line itself is annotated.
        bare = "import time\nstamp = time.time()\n"
        assert lint_source(bare, path="src/repro/obs/export.py").codes \
            == {"DET002"}
        annotated = (
            "import time\n"
            "stamp = time.time()"
            "  # repro: allow=DET002 -- export stamp\n"
        )
        report = lint_source(annotated, path="src/repro/obs/export.py")
        assert len(report) == 0, report.render()

    def test_path_allowlist_normalises_windows_separators(self):
        # The mechanism survives (empty by default); entries match
        # regardless of host path separator.
        from repro.analysis import astlint

        src = "import time\nstamp = time.time()\n"
        original = dict(astlint.PATH_ALLOWLIST)
        astlint.PATH_ALLOWLIST["DET002"] = ("src/repro/obs/",)
        try:
            report = lint_source(src, path="src\\repro\\obs\\export.py")
            assert len(report) == 0, report.render()
            elsewhere = lint_source(src, path="src/repro/stream/x.py")
            assert elsewhere.codes == {"DET002"}
        finally:
            astlint.PATH_ALLOWLIST.clear()
            astlint.PATH_ALLOWLIST.update(original)

    def test_path_allowlist_is_per_rule(self):
        # Other rules still fire inside an allowlisted tree.
        from repro.analysis import astlint

        original = dict(astlint.PATH_ALLOWLIST)
        astlint.PATH_ALLOWLIST["DET002"] = ("src/repro/obs/",)
        try:
            src = "def bad(items=[]):\n    return items\n"
            report = lint_source(src, path="src/repro/obs/export.py")
            assert report.codes == {"PY001"}
        finally:
            astlint.PATH_ALLOWLIST.clear()
            astlint.PATH_ALLOWLIST.update(original)

    def test_pragma_is_per_code(self):
        # A pragma for one code does not silence another on the line.
        src = (
            "import time\n"
            "t = time.time()  # repro: allow=PY001 -- wrong code\n"
        )
        assert lint_source(src).codes == {"DET002"}

    def test_pragma_unknown_code_reports_sup001(self):
        src = "x = 1  # repro: allow=NOPE999 -- hmm\n"
        assert lint_source(src).codes == {"SUP001"}

    def test_pragma_missing_justification_reports_sup002(self):
        src = (
            "import time\n"
            "t = time.time()  # repro: allow=DET002\n"
        )
        report = lint_source(src)
        # The suppression still works, but the missing reason is
        # itself reported.
        assert report.codes == {"SUP002"}

    def test_noqa_suppression(self):
        report = lint_source(
            "import time\nt = time.time()  # noqa: DET002\n"
        )
        assert len(report) == 0
        # A noqa for a *different* code does not suppress.
        report = lint_source(
            "import time\nt = time.time()  # noqa: PY001\n"
        )
        assert report.codes == {"DET002"}

    def test_syntax_error_is_reported_not_raised(self):
        report = lint_source("def broken(:\n", "broken.py")
        assert len(report) == 1
        assert "does not parse" in report.diagnostics[0].message

    def test_findings_carry_file_and_line(self):
        report = lint_source("import time\nt = time.time()\n", "mod.py")
        assert report.diagnostics[0].location == "mod.py:2"


class TestRunners:
    def test_cli_lint_code_clean_exit_zero(self, capsys):
        code = main(["lint-code", str(SRC)])
        assert code == 0
        assert "0 diagnostics" in capsys.readouterr().out

    def test_cli_lint_code_fixture_exit_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(FIXTURE)
        code = main(["lint-code", str(bad)])
        assert code == 1
        out = capsys.readouterr().out
        for expected in ("DET001", "DET002", "PY001", "PY002"):
            assert expected in out

    def test_standalone_runner_module(self, tmp_path):
        # tools/run_astlint.py delegates to astlint.main().
        from repro.analysis.astlint import main as astlint_main

        bad = tmp_path / "bad.py"
        bad.write_text("def f(x=[]):\n    return x\n")
        assert astlint_main([str(bad)]) == 1
        assert astlint_main([str(SRC / "core" / "config.py")]) == 0

    def test_lint_paths_deduplicates(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nt = time.time()\n")
        report = lint_paths([tmp_path, bad])
        assert len(report) == 1


class TestLintModelCli:
    def _save_model(self, spark_model, tmp_path):
        from repro.query import ModelStore

        path = tmp_path / "model.json"
        ModelStore.from_intellog(spark_model).save(path)
        return path

    def test_clean_model_exit_zero(self, spark_model, tmp_path, capsys):
        path = self._save_model(spark_model, tmp_path)
        code = main(["lint-model", "--model", str(path)])
        assert code == 0
        assert "0 diagnostics" in capsys.readouterr().out

    def test_corrupted_model_exit_nonzero(self, spark_model, tmp_path,
                                          capsys):
        import json

        path = self._save_model(spark_model, tmp_path)
        payload = json.loads(path.read_text())
        groups = payload["hw_graph"]["groups"]
        victim = next(
            label for label, entry in groups.items()
            if entry["parent"] or entry["children"] or entry["before"]
        )
        del groups[victim]
        path.write_text(json.dumps(payload))
        code = main(["lint-model", "--model", str(path)])
        assert code == 1
        assert "HW001" in capsys.readouterr().out

    def test_json_output(self, spark_model, tmp_path, capsys):
        import json

        path = self._save_model(spark_model, tmp_path)
        code = main(["lint-model", "--model", str(path), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["diagnostics"] == []
