"""Tests for identifier/value classification (paper §3.1's four
heuristics) and locality extraction."""

from repro.extraction.idvalue import (
    FieldClassifier,
    FieldRole,
    identifier_type,
    value_name,
)
from repro.extraction.locality import LocalityExtractor, classify_locality
from repro.nlp.postagger import tag


def classify(sample_text, field_text, prev=None, nxt=None):
    classifier = FieldClassifier()
    field_tokens = tag(field_text)
    prev_tok = tag(prev)[0] if prev else None
    next_tok = tag(nxt)[0] if nxt else None
    return classifier.classify(field_tokens, prev_tok, next_tok)


class TestHeuristic1Filters:
    def test_verbal_field_filtered(self):
        result = classify("", "started", prev="system")
        assert result.role == FieldRole.OPERATION_WORD

    def test_locality_field(self):
        result = classify("", "host1:13562", prev="from")
        assert result.role == FieldRole.LOCALITY

    def test_path_field(self):
        result = classify("", "/tmp/spark-abc/blockmgr-0", prev="at")
        assert result.role == FieldRole.LOCALITY
        assert result.name == "path"


class TestHeuristic2Units:
    def test_value_with_following_unit(self):
        # "12 MB" -> the field before 'MB' is a value.
        result = classify("", "12", prev="read", nxt="MB")
        assert result.role == FieldRole.VALUE
        assert result.unit == "MB"

    def test_value_with_ms_unit(self):
        result = classify("", "5", prev="in", nxt="ms")
        assert result.role == FieldRole.VALUE

    def test_unit_inside_capture(self):
        result = classify("", "4 ms", prev="in")
        assert result.role == FieldRole.VALUE
        assert result.unit == "ms"


class TestHeuristic3Mixed:
    def test_mixed_letters_numbers_is_identifier(self):
        result = classify("", "attempt_01", prev="map")
        assert result.role == FieldRole.IDENTIFIER

    def test_identifier_type_from_prefix(self):
        result = classify("", "container_e01_000002", prev="assigned")
        assert result.role == FieldRole.IDENTIFIER
        assert result.name == "CONTAINER"


class TestHeuristic4Numeric:
    def test_number_after_noun_is_identifier(self):
        # "task 1" -> 1 identifies the task.
        result = classify("", "1", prev="task")
        assert result.role == FieldRole.IDENTIFIER
        assert result.name == "TASK"

    def test_number_after_verb_is_value(self):
        result = classify("", "42", prev="completed")
        assert result.role == FieldRole.VALUE

    def test_number_after_hash_is_identifier(self):
        result = classify("", "1", prev="#")
        assert result.role == FieldRole.IDENTIFIER


class TestNames:
    def test_identifier_type_prefix_wins(self):
        assert identifier_type("attempt_01", "map") == "ATTEMPT"

    def test_identifier_type_prev_noun_fallback(self):
        assert identifier_type("17", "stage") == "STAGE"

    def test_identifier_type_default(self):
        assert identifier_type("99", None) == "ID"

    def test_identifier_type_singularizes(self):
        assert identifier_type("7", "tasks") == "TASK"

    def test_value_name_unit(self):
        assert value_name("read", "bytes") == "bytes"

    def test_value_name_noun(self):
        assert value_name("splits", None) == "split"

    def test_value_name_default(self):
        assert value_name(None, None) == "value"


class TestLocalityPatterns:
    def test_builtin_host_port(self):
        assert classify_locality("host1:13562").kind == "host_port"

    def test_builtin_ip(self):
        assert classify_locality("10.1.2.3").kind == "ip"

    def test_builtin_ip_port(self):
        assert classify_locality("10.1.2.3:8020").kind == "ip_port"

    def test_builtin_local_path(self):
        assert classify_locality("/var/log/hadoop/x.log").kind == (
            "local_path"
        )

    def test_builtin_dfs_path(self):
        loc = classify_locality("hdfs://nn:8020/user/root/out")
        assert loc.kind == "dfs_path"

    def test_hostname_patterns(self):
        assert classify_locality("worker12").kind == "hostname"
        assert classify_locality("nn1.example.com").kind == "hostname"

    def test_plain_words_not_localities(self):
        assert classify_locality("fetcher") is None
        assert classify_locality("1234") is None

    def test_user_defined_pattern(self):
        # §3.1: users can define new patterns for their systems.
        extractor = LocalityExtractor()
        assert extractor.classify("rack-A-07") is None
        extractor.add_pattern("rack", r"^rack-[A-Z]-\d+$")
        assert extractor.classify("rack-A-07").kind == "rack"

    def test_find_all_scans_tokens(self):
        extractor = LocalityExtractor()
        found = extractor.find_all("freed host1:13562 and 10.0.0.1 ok")
        assert {f.text for f in found} == {"host1:13562", "10.0.0.1"}
