"""Tests for the log formatters (paper §5) and session splitting."""

from repro.parsing.formatters import (
    GenericFormatter,
    HadoopFormatter,
    SparkFormatter,
    default_registry,
    format_lines,
)
from repro.parsing.records import LogRecord, Session, split_sessions


HADOOP_LINE = (
    "2019-06-22 10:15:32,123 INFO [fetcher#1] "
    "org.apache.hadoop.mapreduce.task.reduce.Fetcher: "
    "fetcher#1 about to shuffle output of map attempt_01"
)
SPARK_LINE = (
    "19/06/22 10:15:32 INFO BlockManager: Registering BlockManager"
)


class TestHadoopFormatter:
    def test_parses_fields(self):
        record = HadoopFormatter().try_parse(HADOOP_LINE)
        assert record is not None
        assert record.level == "INFO"
        assert record.source == "Fetcher"
        assert record.message.startswith("fetcher#1 about")
        assert record.meta["thread"] == "fetcher#1"

    def test_milliseconds_in_timestamp(self):
        record = HadoopFormatter().try_parse(HADOOP_LINE)
        assert record.timestamp % 1 > 0.1

    def test_rejects_other_formats(self):
        assert HadoopFormatter().try_parse(SPARK_LINE) is None

    def test_continuation_lines_folded(self):
        lines = [
            HADOOP_LINE,
            "java.io.IOException: connection reset",
            "\tat org.apache.hadoop.SomeClass.method(SomeClass.java:1)",
        ]
        records = list(HadoopFormatter().parse_lines(lines))
        assert len(records) == 1
        assert "IOException" in records[0].message


class TestSparkFormatter:
    def test_parses_fields(self):
        record = SparkFormatter().try_parse(SPARK_LINE)
        assert record is not None
        assert record.source == "BlockManager"
        assert record.message == "Registering BlockManager"

    def test_rejects_hadoop(self):
        assert SparkFormatter().try_parse(HADOOP_LINE) is None


class TestRegistry:
    def test_known_names(self):
        registry = default_registry()
        for name in ("hadoop", "spark", "tez", "yarn", "generic",
                     "mapreduce"):
            assert name in registry.names()

    def test_unknown_name_raises(self):
        import pytest

        with pytest.raises(KeyError):
            default_registry().get("flink")

    def test_detect_hadoop(self):
        registry = default_registry()
        formatter = registry.detect([HADOOP_LINE] * 3)
        assert formatter.name == "hadoop"

    def test_detect_spark(self):
        registry = default_registry()
        assert registry.detect([SPARK_LINE] * 3).name == "spark"

    def test_detect_fallback_generic(self):
        registry = default_registry()
        assert registry.detect(["free text only"]).name == "generic"

    def test_format_lines_by_name(self):
        records = format_lines([SPARK_LINE], "spark")
        assert len(records) == 1


class TestGenericFormatter:
    def test_counts_as_timestamps(self):
        records = list(
            GenericFormatter().parse_lines(["a", "b", "c"])
        )
        assert [r.timestamp for r in records] == [1.0, 2.0, 3.0]

    def test_blank_lines_skipped(self):
        records = list(GenericFormatter().parse_lines(["a", "", "b"]))
        assert len(records) == 2


class TestSessionSplitting:
    def test_split_by_session_id(self):
        records = [
            LogRecord(timestamp=2.0, level="I", source="s", message="b",
                      session_id="c2"),
            LogRecord(timestamp=1.0, level="I", source="s", message="a",
                      session_id="c1"),
            LogRecord(timestamp=3.0, level="I", source="s", message="c",
                      session_id="c1"),
        ]
        sessions = split_sessions(records)
        assert len(sessions) == 2
        c1 = next(s for s in sessions if s.session_id == "c1")
        assert [r.message for r in c1] == ["a", "c"]

    def test_sessions_ordered_by_start(self):
        records = [
            LogRecord(timestamp=9.0, level="I", source="s", message="x",
                      session_id="late"),
            LogRecord(timestamp=1.0, level="I", source="s", message="y",
                      session_id="early"),
        ]
        sessions = split_sessions(records)
        assert sessions[0].session_id == "early"

    def test_session_properties(self):
        session = Session(session_id="s")
        session.append(LogRecord(
            timestamp=5.0, level="I", source="s", message="m1"
        ))
        session.append(LogRecord(
            timestamp=1.0, level="I", source="s", message="m2"
        ))
        session.sort()
        assert session.start == 1.0
        assert session.end == 5.0
        assert session.messages() == ["m2", "m1"]
        assert len(session) == 2
