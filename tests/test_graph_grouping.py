"""Tests for entity grouping (paper §4.1, Algorithm 1)."""

from repro.graph.grouping import (
    group_entities,
    longest_common_phrase,
    longest_common_word_substring,
)


def lcp(a, b):
    return longest_common_phrase(tuple(a.split()), tuple(b.split()))


class TestLongestCommonWordSubstring:
    def test_contiguous_match(self):
        assert longest_common_word_substring(
            ("block", "manager", "endpoint"), ("block", "manager")
        ) == ("block", "manager")

    def test_no_match(self):
        assert longest_common_word_substring(("a",), ("b",)) == ()

    def test_single_word_overlap(self):
        assert longest_common_word_substring(
            ("memory", "store"), ("storage", "memory")
        ) == ("memory",)


class TestLongestCommonPhrase:
    def test_one_word_contained(self):
        # Algorithm 1: a one-word phrase that is part of a multi-word
        # phrase is correlated with it.
        assert lcp("block", "block manager") == ("block",)

    def test_paper_spark_example(self):
        # §4.1: block, block manager, block manager endpoint share 'block'.
        assert lcp("block manager", "block manager endpoint") == (
            "block", "manager",
        )

    def test_generic_suffix_rejected(self):
        # §4.1: "'block manager' and 'security manager' share 'manager'
        # but they are not tightly correlated."
        assert lcp("block manager", "security manager") == ()

    def test_function_word_common_rejected(self):
        assert lcp("output of map", "of task") == ()

    def test_disjoint_phrases(self):
        assert lcp("task attempt", "memory store") == ()


class TestGroupEntities:
    def test_paper_block_group(self):
        result = group_entities(
            ["block", "block manager", "block manager endpoint"]
        )
        labels = result.labels()
        assert "block" in labels
        block = next(g for g in result.groups if g.label == "block")
        assert len(block.entities) == 3

    def test_managers_stay_apart(self):
        result = group_entities(["block manager", "security manager"])
        assert len(result.groups) == 2

    def test_singleton_group(self):
        result = group_entities(["fetcher"])
        assert result.labels() == ["fetcher"]

    def test_reverse_index(self):
        result = group_entities(["block", "block manager", "fetcher"])
        groups = result.groups_for("block manager")
        assert [g.label for g in groups] == ["block"]

    def test_entity_can_join_multiple_groups(self):
        # "map task output" shares 'map task' with one group and could
        # correlate with others; the reverse index is a set.
        result = group_entities(
            ["map task", "map task output", "task"]
        )
        joined = result.groups_for("map task")
        assert len(joined) >= 1

    def test_accepts_word_tuples(self):
        result = group_entities([("event", "fetcher"), ("fetcher",)])
        assert any(g.label == "fetcher" for g in result.groups)

    def test_deduplicates_input(self):
        result = group_entities(["task", "task", "task"])
        assert len(result.groups) == 1
        assert len(result.groups[0].entities) == 1

    def test_group_name_shrinks_to_common(self):
        result = group_entities(["memory store", "storage memory"])
        labels = result.labels()
        assert "memory" in labels

    def test_empty_input(self):
        assert group_entities([]).groups == []
