"""Tests for the lexicon's verb paradigm expansion and tag inventory."""

from repro.nlp.lexicon import (
    MEASURE_UNITS,
    UNITS,
    build_lexicon,
    is_measure_unit,
    is_unit,
)
from repro.nlp.tags import (
    ALL_TAGS,
    is_content_tag,
    is_noun,
    is_preposition,
    is_verb,
)


class TestParadigms:
    def test_regular_verb_forms_present(self):
        lexicon = build_lexicon()
        for form, tag in (
            ("start", "VB"), ("starts", "VBZ"), ("starting", "VBG"),
            ("started", "VBD"),
        ):
            assert tag in lexicon[form], (form, lexicon[form])

    def test_irregular_base_keeps_vb(self):
        # Regression: "run" is both VB and VBN; both must survive.
        lexicon = build_lexicon()
        assert "VB" in lexicon["run"]
        assert "VBN" in lexicon["run"]
        assert "VBD" in lexicon["ran"]

    def test_y_verbs(self):
        lexicon = build_lexicon()
        assert "VBZ" in lexicon["retries"]
        assert "VBD" in lexicon["retried"]

    def test_doubling_verbs(self):
        lexicon = build_lexicon()
        assert "VBG" in lexicon["committing"]
        assert "VBG" in lexicon["spilling"]

    def test_noun_first_words_prefer_noun(self):
        lexicon = build_lexicon()
        for word in ("task", "block", "map", "fetch", "shuffle"):
            assert lexicon[word][0] == "NN", (word, lexicon[word])

    def test_closed_classes(self):
        lexicon = build_lexicon()
        assert lexicon["of"] == ("IN",)
        assert lexicon["the"][0] == "DT"
        assert lexicon["to"][0] == "TO"
        assert "MD" in lexicon["will"]

    def test_auxiliaries_verbal_first(self):
        lexicon = build_lexicon()
        assert lexicon["is"][0] == "VBZ"
        assert lexicon["was"][0] == "VBD"


class TestUnits:
    def test_measure_units_subset_of_units(self):
        assert MEASURE_UNITS <= UNITS

    def test_bytes_is_measure_unit(self):
        assert is_measure_unit("bytes")
        assert is_measure_unit("MB")
        assert is_measure_unit("ms")

    def test_task_is_count_unit_only(self):
        assert is_unit("tasks")
        assert not is_measure_unit("task")

    def test_non_units(self):
        assert not is_unit("fetcher")
        assert not is_measure_unit("driver")


class TestTagInventory:
    def test_inventory_contains_core_tags(self):
        for tag in ("NN", "NNS", "VB", "VBZ", "JJ", "IN", "CD", "DT"):
            assert tag in ALL_TAGS

    def test_predicates(self):
        assert is_noun("NNPS")
        assert is_verb("MD")
        assert is_preposition("TO")
        assert is_content_tag("JJ")
        assert not is_content_tag("VB")
