"""Tests for the full log-key -> Intel Key pipeline (paper §3, Figure 4)."""

import pytest

from repro.extraction import FieldRole, InformationExtractor
from repro.extraction.pipeline import align_template, is_key_value_dump
from repro.nlp.postagger import tag
from repro.parsing.spell import SpellParser


@pytest.fixture()
def extractor():
    return InformationExtractor()


def build_key(messages, extractor):
    parser = SpellParser()
    for message in messages:
        parser.consume(message)
    assert len(parser) == 1, parser.keys()
    return extractor.build_intel_key(parser.keys()[0])


class TestAlignment:
    def test_constant_positions(self):
        sample = tag("read 2264 bytes")
        aligned = align_template(["read", "*", "bytes"], sample)
        assert aligned is not None
        assert aligned.slots == [0, (1, 2), 2]

    def test_trailing_star(self):
        sample = tag("state NEW DONE")
        aligned = align_template(["state", "*"], sample)
        assert aligned.slots == [0, (1, 3)]

    def test_mismatch_none(self):
        sample = tag("totally different")
        assert align_template(["read", "*"], sample) is None


class TestKeyValueDump:
    def test_kv_dump_detected(self):
        assert is_key_value_dump(
            "memoryLimit = 3006477107 ; maxSingleShuffleLimit = 730144440"
        )

    def test_sentence_not_dump(self):
        assert not is_key_value_dump(
            "fetcher#1 about to shuffle output of map attempt_01"
        )


class TestFigure1Keys:
    """The paper's Figure 1 snippet end to end."""

    def test_shuffle_key(self, extractor):
        key = build_key(
            [
                "fetcher#1 about to shuffle output of map attempt_01",
                "fetcher#2 about to shuffle output of map attempt_02",
            ],
            extractor,
        )
        assert "fetcher" in key.entities
        assert "output of map" in key.entities
        roles = [f.role for f in key.fields]
        assert roles == [FieldRole.IDENTIFIER, FieldRole.IDENTIFIER]
        assert key.fields[0].name == "FETCHER"
        assert key.fields[1].name == "ATTEMPT"

    def test_read_key(self, extractor):
        key = build_key(
            [
                "fetcher#1 read 2264 bytes from map-output for attempt_01",
                "fetcher#2 read 99 bytes from map-output for attempt_02",
            ],
            extractor,
        )
        by_role = {}
        for field in key.fields:
            by_role.setdefault(field.role, []).append(field)
        assert len(by_role[FieldRole.IDENTIFIER]) == 2
        assert len(by_role[FieldRole.VALUE]) == 1
        assert by_role[FieldRole.VALUE][0].name == "bytes"

    def test_freed_key(self, extractor):
        key = build_key(
            [
                "host1:13562 freed by fetcher#1 in 4ms",
                "host2:13562 freed by fetcher#2 in 7ms",
            ],
            extractor,
        )
        roles = [f.role for f in key.fields]
        assert FieldRole.LOCALITY in roles
        assert FieldRole.VALUE in roles
        # operation: {*, free, fetcher} — the host is freed by the fetcher.
        ops = [op.predicate for op in key.operations]
        assert "free" in ops


class TestFigure4Key:
    """The paper's Figure 4 Spark log key end to end."""

    @pytest.fixture()
    def key(self, extractor):
        return build_key(
            [
                "Finished task 1.0 in stage 0.0 ( TID 4 ) . 2010 bytes "
                "result sent to driver",
                "Finished task 2.0 in stage 1.0 ( TID 5 ) . 1900 bytes "
                "result sent to driver",
            ],
            extractor,
        )

    def test_entities(self, key):
        for expected in ("task", "stage", "result", "driver"):
            assert expected in key.entities

    def test_three_identifiers_one_value(self, key):
        identifiers = key.fields_with_role(FieldRole.IDENTIFIER)
        values = key.fields_with_role(FieldRole.VALUE)
        assert len(identifiers) == 3
        assert len(values) == 1
        assert values[0].name == "bytes"

    def test_two_operations(self, key):
        # Figure 4: "Two operations are extracted".
        assert len(key.operations) == 2
        predicates = {op.predicate for op in key.operations}
        assert predicates == {"finish", "send"}

    def test_send_operation_slots(self, key):
        send = next(op for op in key.operations if op.predicate == "send")
        assert send.subject == "result"
        assert send.obj == "driver"

    def test_identifier_types(self, key):
        assert set(key.identifier_types) == {"TASK", "STAGE", "TID"}


class TestIntelMessages:
    def test_round_trip(self, extractor):
        key = build_key(
            [
                "Finished spill spill0",
                "Finished spill spill1",
            ],
            extractor,
        )
        message = extractor.to_intel_message(
            key, "Finished spill spill7", timestamp=3.5, session_id="c1"
        )
        assert message is not None
        assert message.identifiers["SPILL"] == ["spill7"]
        assert message.timestamp == 3.5
        assert message.session_id == "c1"

    def test_no_match_returns_none(self, extractor):
        key = build_key(
            ["Finished spill spill0", "Finished spill spill1"], extractor
        )
        assert extractor.to_intel_message(key, "unrelated text") is None

    def test_values_parsed_to_float(self, extractor):
        key = build_key(
            [
                "read 2264 bytes from map-output for attempt_01",
                "read 99 bytes from map-output for attempt_02",
            ],
            extractor,
        )
        message = extractor.to_intel_message(
            key, "read 512 bytes from map-output for attempt_09"
        )
        assert message.values["bytes"] == [512.0]

    def test_identifier_signature(self, extractor):
        key = build_key(
            [
                "fetcher#1 read 2264 bytes from map-output for attempt_01",
                "fetcher#2 read 99 bytes from map-output for attempt_02",
            ],
            extractor,
        )
        message = extractor.to_intel_message(
            key, "fetcher#3 read 10 bytes from map-output for attempt_05"
        )
        assert message.identifier_signature == ("ATTEMPT", "FETCHER")
        assert message.identifier_values == {"3", "attempt_05"}

    def test_serialization_round_trip(self, extractor):
        from repro.extraction.intelkey import IntelKey, IntelMessage

        key = build_key(
            ["Finished spill spill0", "Finished spill spill1"], extractor
        )
        restored = IntelKey.from_dict(key.to_dict())
        assert restored.template == key.template
        assert restored.fields == key.fields

        message = extractor.to_intel_message(key, "Finished spill spill3")
        restored_msg = IntelMessage.from_dict(message.to_dict())
        assert restored_msg.identifiers == message.identifiers
