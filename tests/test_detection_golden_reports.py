"""Golden detect-report regression: pinned per-genre ``SessionReport``s.

Each fixture in ``tests/golden/detect_reports/`` freezes one genre's
train + detect corpora (simulator output captured once — the regression
targets the detection pipeline, never simulator drift) together with
the byte-exact report JSON the pipeline produced on it.  The fixtures
were generated with the pre-index scan matcher and re-verified after
the trie rewrite, so they are the end-to-end proof that the index
changed *nothing* observable: matcher, extractor, HW-graph checks.

Regenerate deliberately with ``python tools/regen_golden.py
--detect-reports`` and review the report diff like a model-digest bump.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import IntelLog
from repro.parsing.records import Session

GOLDEN_DIR = Path(__file__).parent / "golden" / "detect_reports"
GENRES = ["mapreduce", "spark", "tez", "tensorflow"]


def _load(genre: str) -> tuple[dict, list[Session], list[Session]]:
    fixture = json.loads((GOLDEN_DIR / f"{genre}.json").read_text())
    train = [Session.from_dict(s) for s in fixture["train_sessions"]]
    detect = [Session.from_dict(s) for s in fixture["detect_sessions"]]
    return fixture, train, detect


@pytest.mark.parametrize("genre", GENRES)
def test_detect_report_byte_identical(genre: str) -> None:
    fixture, train, detect = _load(genre)
    intellog = IntelLog()
    intellog.train(train)
    report = intellog.detect_job(detect, job_id=f"golden-{genre}")
    # Byte-level comparison of the canonical JSON encoding — any drift
    # in anomaly ordering, counts, extraction payloads or report shape
    # fails here, not just value-level equality.
    got = json.dumps(report.to_dict(), indent=2, sort_keys=True)
    want = json.dumps(fixture["report"], indent=2, sort_keys=True)
    assert got == want, (
        f"{genre}: detect report drifted from the pinned golden fixture "
        f"(regenerate with tools/regen_golden.py --detect-reports and "
        f"review the diff)"
    )


def test_partitioned_detect_equals_serial(tmp_path: Path) -> None:
    """``repro detect --workers N``: chunked multi-process detection
    must reassemble the exact serial job report, in session order."""
    from repro.detection.partition import detect_job_partitioned
    from repro.query.store import ModelStore

    _, train, detect = _load("mapreduce")
    intellog = IntelLog()
    intellog.train(train)
    model_path = tmp_path / "model.json"
    ModelStore.from_intellog(intellog).save(str(model_path))
    serial = intellog.detect_job(detect, job_id="part").to_dict()
    partitioned = detect_job_partitioned(
        str(model_path), detect, workers=2, job_id="part"
    ).to_dict()
    assert partitioned == serial


@pytest.mark.parametrize("genre", ["spark", "tensorflow"])
def test_detect_batch_equals_per_session(genre: str) -> None:
    """The cross-session batch path must produce the same reports as
    one-session-at-a-time detection (same order, same content)."""
    _, train, detect = _load(genre)
    intellog = IntelLog()
    intellog.train(train)
    detector = intellog.detector()
    batched = [r.to_dict() for r in detector.detect_batch(detect)]
    serial = [detector.detect_session(s).to_dict() for s in detect]
    assert batched == serial
