"""Tests for the multi-tenant serving layer (``repro.serve``).

Covers the ISSUE checklist: registry publish/resolve/content-addressing
with ref-counted in-memory sharing and the warm cache; the load-bearing
3-tenant parity guarantee (per-tenant service output byte-identical to a
standalone ``StreamRuntime``); the global session budget (unit,
property-based fairness, and through real trackers); atomic model swap
mid-stream with exactly-once delivery; tenant-namespaced checkpoints and
restart/resume without duplicates; per-tenant health isolation; and the
control plane (tenants files, diff reconciliation, ``/tenants`` route).
"""

from __future__ import annotations

import json
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import IntelLog
from repro.core import ServeConfig
from repro.obs import MetricsRegistry, MetricsServer
from repro.parsing.records import LogRecord
from repro.query.store import ModelStore
from repro.serve import (
    BoundedQueueSource,
    DetectionService,
    ModelRegistry,
    RegistryError,
    TenantSpec,
    apply_tenants,
    load_tenants_file,
    parse_model_ref,
    plan_evictions,
)
from repro.simulators import WorkloadGenerator, sessions_of
from repro.stream import (
    IterableSource,
    ListSink,
    StreamRuntime,
    TrackerConfig,
    tenant_checkpoint_name,
)
from repro.stream.checkpoint import default_checkpoint_path

#: Tracker settings that never close early — for exact-parity tests
#: (mirrors ``tests/test_stream.py``; end markers stay at their default
#: on BOTH sides of every parity comparison).
UNBOUNDED = dict(idle_timeout=1e12, max_open_sessions=10**9)


def spark_records(seed: int, jobs: int = 2) -> list[LogRecord]:
    """A deterministic, time-interleaved Spark detection stream."""
    gen = WorkloadGenerator(seed=seed)
    batch = gen.run_batch("spark", jobs)
    records = [r for job in batch for r in job.records]
    records.sort(key=lambda r: r.timestamp)
    return records


def record(ts, message, sid):
    return LogRecord(timestamp=float(ts), level="INFO", source="T",
                     message=message, session_id=sid)


def report_bytes(sink: ListSink) -> dict[str, bytes]:
    return {
        r.session_id: json.dumps(r.to_dict(), sort_keys=True).encode()
        for r in sink.reports
    }


@pytest.fixture(scope="module")
def spark_store(spark_model) -> ModelStore:
    return ModelStore.from_intellog(spark_model)


@pytest.fixture(scope="module")
def spark_store_v2(spark_training_jobs) -> ModelStore:
    """A second, byte-distinct version of the same model family."""
    intellog = IntelLog()
    intellog.train(sessions_of(spark_training_jobs[:6]))
    store = ModelStore.from_intellog(intellog)
    return store


@pytest.fixture()
def registry(tmp_path, spark_store) -> ModelRegistry:
    reg = ModelRegistry(tmp_path / "registry")
    reg.publish(spark_store, "spark-prod")
    return reg


class TestRegistry:
    def test_publish_assigns_sequential_versions(
        self, tmp_path, spark_store, spark_store_v2
    ):
        reg = ModelRegistry(tmp_path / "reg")
        v1, d1 = reg.publish(spark_store, "m")
        v2, d2 = reg.publish(spark_store_v2, "m")
        assert (v1, v2) == (1, 2)
        assert d1 != d2
        assert reg.resolve("m") == (2, d2)
        assert reg.resolve("m", 1) == (1, d1)

    def test_republish_same_bytes_is_idempotent(
        self, tmp_path, spark_store
    ):
        reg = ModelRegistry(tmp_path / "reg")
        first = reg.publish(spark_store, "m")
        again = reg.publish(spark_store, "m")
        assert again == first
        assert reg.stats()["publishes"] == 1

    def test_artifacts_are_content_addressed(self, tmp_path, spark_store):
        import hashlib

        reg = ModelRegistry(tmp_path / "reg")
        _, digest = reg.publish(spark_store, "m")
        body = reg.artifact_path(digest).read_bytes()
        assert hashlib.sha256(body).hexdigest() == digest

    def test_index_survives_reopen(self, tmp_path, spark_store):
        root = tmp_path / "reg"
        v, d = ModelRegistry(root).publish(spark_store, "m")
        assert ModelRegistry(root).resolve("m") == (v, d)

    def test_unknown_model_and_version_raise(self, tmp_path, spark_store):
        reg = ModelRegistry(tmp_path / "reg")
        reg.publish(spark_store, "m")
        with pytest.raises(RegistryError):
            reg.resolve("nope")
        with pytest.raises(RegistryError):
            reg.resolve("m", 7)

    def test_tampered_artifact_is_rejected_on_load(
        self, tmp_path, spark_store
    ):
        reg = ModelRegistry(tmp_path / "reg")
        _, digest = reg.publish(spark_store, "m")
        path = reg.artifact_path(digest)
        path.write_bytes(path.read_bytes() + b" ")
        with pytest.raises(RegistryError, match="digest"):
            reg.acquire("m")

    def test_leases_share_one_in_memory_model(self, tmp_path, spark_store):
        reg = ModelRegistry(tmp_path / "reg")
        _, digest = reg.publish(spark_store, "m")
        a = reg.acquire("m")
        b = reg.acquire("m")
        assert a.intellog is b.intellog
        assert reg.refcount(digest) == 2
        assert reg.stats()["cold_loads"] == 1
        a.release()
        a.release()  # idempotent
        assert reg.refcount(digest) == 1
        b.release()
        assert reg.refcount(digest) == 0

    def test_warm_cache_revives_without_reload(self, tmp_path, spark_store):
        reg = ModelRegistry(tmp_path / "reg")
        reg.publish(spark_store, "m")
        first = reg.acquire("m")
        shared = first.intellog
        first.release()
        assert reg.stats()["warm_models"] == 1
        revived = reg.acquire("m")
        assert revived.intellog is shared
        stats = reg.stats()
        assert stats["warm_hits"] == 1
        assert stats["cold_loads"] == 1
        revived.release()

    def test_warm_capacity_zero_reloads_cold(self, tmp_path, spark_store):
        reg = ModelRegistry(tmp_path / "reg", warm_capacity=0)
        reg.publish(spark_store, "m")
        reg.acquire("m").release()
        assert reg.stats()["warm_models"] == 0
        reg.acquire("m").release()
        assert reg.stats()["cold_loads"] == 2

    def test_detector_views_are_private_per_lease(
        self, tmp_path, spark_store
    ):
        reg = ModelRegistry(tmp_path / "reg")
        reg.publish(spark_store, "m")
        lease = reg.acquire("m")
        v1, v2 = lease.detector_view(), lease.detector_view()
        assert v1 is not v2
        assert v1.spell is not v2.spell
        # The heavy learned state is aliased, not copied.
        assert v1.spell._keys is v2.spell._keys
        lease.release()


class TestMultiTenantParity:
    """The PR's load-bearing invariant: serving == standalone, per byte."""

    SEEDS = {"t-a": 101, "t-b": 202, "t-c": 303}

    def _standalone(self, registry: ModelRegistry, seed: int):
        _, digest = registry.resolve("spark-prod")
        model = ModelStore.load_path(
            registry.artifact_path(digest)
        ).to_intellog()
        sink = ListSink()
        StreamRuntime(
            model, IterableSource(spark_records(seed)), sink=sink,
            tracker=TrackerConfig(**UNBOUNDED),
        ).run(once=True)
        return report_bytes(sink)

    def _serve(self, registry: ModelRegistry, workers: int):
        svc = DetectionService(
            registry, ServeConfig(workers=workers, quantum=37)
        )
        sinks = {}
        for tid, seed in self.SEEDS.items():
            sinks[tid] = ListSink()
            svc.attach(
                TenantSpec(tenant_id=tid, model="spark-prod", **UNBOUNDED),
                source=IterableSource(spark_records(seed)),
                sink=sinks[tid],
            )
        return svc, sinks

    def test_three_tenants_byte_identical_to_standalone(self, registry):
        svc, sinks = self._serve(registry, workers=0)
        _, digest = registry.resolve("spark-prod")
        # One immutable model instance backs the whole fleet.
        tenants = [svc.tenant(tid) for tid in self.SEEDS]
        assert registry.refcount(digest) == 3
        assert tenants[0].lease.intellog is tenants[1].lease.intellog
        assert tenants[1].lease.intellog is tenants[2].lease.intellog

        status = svc.drain()
        assert status["fleet"]["open_sessions"] == 0
        assert (
            status["fleet"]["open_sessions"]
            <= svc.config.global_session_budget
        )
        for tid, seed in self.SEEDS.items():
            assert report_bytes(sinks[tid]) == self._standalone(
                registry, seed
            ), f"tenant {tid} diverged from standalone repro watch"

        svc.close()
        assert registry.refcount(digest) == 0
        stats = registry.stats()
        assert stats["cold_loads"] == 1  # one deserialization for 3 tenants
        assert stats["warm_models"] == 1  # parked for the next attach

    def test_threaded_sweeps_match_inline(self, registry):
        inline_svc, inline_sinks = self._serve(registry, workers=0)
        inline_svc.drain()
        inline = {
            tid: report_bytes(sink) for tid, sink in inline_sinks.items()
        }
        inline_svc.close()
        threaded_svc, threaded_sinks = self._serve(registry, workers=2)
        threaded_svc.drain()
        for tid in self.SEEDS:
            assert report_bytes(threaded_sinks[tid]) == inline[tid]
        threaded_svc.close()

    def test_fleet_metrics_are_mirrored(self, registry):
        svc, _ = self._serve(registry, workers=0)
        svc.drain()

        def sample(name, **labels):
            for got, value in svc.metrics.get(name).samples():
                if got == labels:
                    return value
            raise AssertionError(f"no sample {name} {labels}")

        assert sample("serve_active_tenants") == 3
        assert sample("serve_registry_live_models") == 1
        for tid in self.SEEDS:
            assert sample("serve_tenant_reports", tenant=tid) > 0
        svc.close()


class TestBudget:
    def test_under_budget_plans_nothing(self):
        assert plan_evictions({"a": 3, "b": 4}, 10) == {}

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            plan_evictions({"a": 1}, -1)

    def test_largest_first_and_deterministic(self):
        plan = plan_evictions({"a": 10, "b": 2, "c": 6}, 12)
        assert plan == {"a": 5, "c": 1}
        assert plan == plan_evictions({"c": 6, "b": 2, "a": 10}, 12)

    @settings(max_examples=300, deadline=None)
    @given(
        counts=st.dictionaries(
            st.text(alphabet="abcdefgh", min_size=1, max_size=3),
            st.integers(min_value=0, max_value=60),
            max_size=8,
        ),
        budget=st.integers(min_value=0, max_value=250),
    )
    def test_plan_properties(self, counts, budget):
        plan = plan_evictions(counts, budget)
        total = sum(counts.values())
        for tenant, evict in plan.items():
            assert 0 < evict <= counts[tenant]
        if total <= budget:
            assert plan == {}
        else:
            # Reaches the budget exactly: never over-evicts, never
            # leaves the fleet over the cap.
            assert total - sum(plan.values()) == budget
        if counts:
            # Fairness: a tenant at or below its fair share is never
            # asked to give sessions back.
            floor = budget // len(counts)
            for tenant, count in counts.items():
                if count <= floor:
                    assert tenant not in plan

    def test_enforced_through_real_trackers(self, registry):
        svc = DetectionService(
            registry,
            ServeConfig(workers=0, global_session_budget=12),
        )
        sinks = {}
        fleets = {"big-a": 30, "big-b": 20, "small": 3}
        for tid, sessions in fleets.items():
            records = [
                record(i, f"tick {i}", sid=f"{tid}-s{i}")
                for i in range(sessions)
            ]
            sinks[tid] = ListSink()
            svc.attach(
                TenantSpec(tenant_id=tid, model="spark-prod", **UNBOUNDED),
                source=IterableSource(records),
                sink=sinks[tid],
            )
        svc.cycle()
        open_total = sum(
            svc.tenant(tid).open_sessions for tid in fleets
        )
        assert open_total <= 12
        assert svc.budget_evictions >= 30 + 20 + 3 - 12
        # The small tenant sits below the fair share (12 // 3 = 4):
        # pressure lands only on the tenants holding the surplus.
        assert svc.tenant("small").open_sessions == 3
        assert all(
            c.reason != "evicted" for c in sinks["small"].closures
        )
        # Evicted sessions still report, flagged as evictions.
        assert any(
            c.reason == "evicted" for c in sinks["big-a"].closures
        )
        svc.close()


class TestAtomicSwap:
    def test_swap_mid_stream_is_atomic_and_exactly_once(
        self, tmp_path, spark_store, spark_store_v2
    ):
        reg = ModelRegistry(tmp_path / "reg")
        v1, d1 = reg.publish(spark_store, "spark-prod")
        svc = DetectionService(reg, ServeConfig(workers=0, quantum=25))
        streams = {
            tid: spark_records(seed)
            for tid, seed in (("t-a", 11), ("t-b", 22), ("t-c", 33))
        }
        sinks = {}
        for tid, records in streams.items():
            sinks[tid] = ListSink()
            svc.attach(
                TenantSpec(tenant_id=tid, model="spark-prod", **UNBOUNDED),
                source=IterableSource(list(records)),
                sink=sinks[tid],
            )
        for _ in range(3):  # consume part of every stream on v1
            assert svc.cycle() > 0
        v2, d2 = reg.publish(spark_store_v2, "spark-prod")
        swapped_to = svc.swap("t-a")  # latest == v2
        assert swapped_to == (v2, d2)
        # Parked, not yet applied: the pump installs it between quanta.
        assert svc.tenant("t-a").lease.version == v1
        svc.drain()

        t_a = svc.tenant("t-a")
        assert t_a.lease.version == v2
        assert t_a.swaps == 1
        # Other tenants were never moved...
        assert svc.tenant("t-b").lease.version == v1
        assert svc.tenant("t-c").lease.version == v1
        # ...so both model versions are live, shared correctly.
        assert reg.refcount(d1) == 2
        assert reg.refcount(d2) == 1
        for tid, records in streams.items():
            # No record was lost across the swap...
            assert svc.tenant(tid).runtime.stats.records == len(records)
            # ...and every report went out exactly once.
            fids = sinks[tid].emitted_ids()
            assert len(fids) == len(set(fids))
            assert len(fids) == len(sinks[tid].reports)
        svc.close()

    def test_swap_to_unknown_version_changes_nothing(self, registry):
        svc = DetectionService(registry, ServeConfig(workers=0))
        sink = ListSink()
        svc.attach(
            TenantSpec(tenant_id="t", model="spark-prod", **UNBOUNDED),
            source=IterableSource(spark_records(5, jobs=1)),
            sink=sink,
        )
        before = svc.tenant("t").lease.version
        with pytest.raises(RegistryError):
            svc.swap("t", version=99)
        svc.cycle()
        assert svc.tenant("t").lease.version == before
        assert svc.tenant("t").swaps == 0
        svc.close()


class TestCheckpointNamespacing:
    def test_distinct_tenants_never_share_a_filename(self):
        assert tenant_checkpoint_name("a/b") != tenant_checkpoint_name(
            "a_b"
        )
        assert "/" not in tenant_checkpoint_name("a/b")
        assert tenant_checkpoint_name("team-a") == "team-a"

    def test_default_path_embeds_the_tenant(self, tmp_path):
        path = default_checkpoint_path(tmp_path / "model.json", "team-a")
        assert path.name == "model.team-a.stream-ckpt.json"

    def test_two_tenants_one_model_write_two_checkpoints(
        self, tmp_path, registry
    ):
        ckpt_dir = tmp_path / "ckpt"
        svc = DetectionService(
            registry, ServeConfig(workers=0), checkpoint_dir=ckpt_dir
        )
        for tid, seed in (("team/a", 41), ("team_a", 42)):
            svc.attach(
                TenantSpec(tenant_id=tid, model="spark-prod", **UNBOUNDED),
                source=IterableSource(spark_records(seed, jobs=1)),
                sink=ListSink(),
            )
        svc.drain()
        svc.close()
        checkpoints = sorted(
            p.name for p in ckpt_dir.glob("*.stream-ckpt.json")
        )
        assert len(checkpoints) == 2, checkpoints


class TestRestartResume:
    def test_bounded_queue_position_round_trip(self):
        records = spark_records(9, jobs=1)
        first = BoundedQueueSource(
            IterableSource(records), capacity=10_000, ingest_batch=64
        )
        consumed = first.poll(10)
        assert len(consumed) == 10
        assert first.queue_depth == 54  # one 64-record gulp minus 10
        position = first.position()
        # JSON round-trip: positions must survive the checkpoint file.
        position = json.loads(json.dumps(position))

        second = BoundedQueueSource(
            IterableSource(records), capacity=10_000, ingest_batch=64
        )
        second.seek(position)
        rest = []
        while True:
            batch = second.poll(50)
            if not batch:
                break
            rest.extend(batch)
        assert [r.message for r in rest] == [
            r.message for r in records[10:]
        ]

    def test_queue_sheds_oldest_and_counts(self):
        records = [record(i, f"tick {i}", sid=f"s{i}") for i in range(100)]
        queue = BoundedQueueSource(
            IterableSource(records), capacity=8, ingest_batch=100
        )
        got = queue.poll(8)
        assert queue.shed == 92
        # Newest data wins: the survivors are the tail of the gulp.
        assert [r.message for r in got] == [
            f"tick {i}" for i in range(92, 100)
        ]

    def test_service_restart_emits_no_duplicate_reports(
        self, tmp_path, registry
    ):
        records = spark_records(55)
        spec = TenantSpec(
            tenant_id="riser", model="spark-prod", **UNBOUNDED
        )
        ckpt_dir = tmp_path / "ckpt"

        first = DetectionService(
            registry, ServeConfig(workers=0, quantum=40),
            checkpoint_dir=ckpt_dir,
        )
        sink1 = ListSink()
        first.attach(
            spec, source=IterableSource(records), sink=sink1
        )
        for _ in range(3):
            first.cycle()
        first.detach("riser", flush=False)  # checkpoint, keep sessions

        second = DetectionService(
            registry, ServeConfig(workers=0, quantum=40),
            checkpoint_dir=ckpt_dir,
        )
        sink2 = ListSink()
        second.attach(
            spec, source=IterableSource(records), sink=sink2
        )
        second.drain()
        second.close()

        fids = sink1.emitted_ids() + sink2.emitted_ids()
        assert len(fids) == len(set(fids)), "duplicate report delivery"
        reported = {r.session_id for r in sink1.reports} | {
            r.session_id for r in sink2.reports
        }
        assert reported == {r.session_id for r in records}


class _ExplodingSource:
    """Non-IO failure: bypasses retry and must park only its tenant."""

    def poll(self, max_records):
        raise RuntimeError("boom: tenant-local disaster")

    def exhausted(self):
        return False

    def backlog(self):
        return None

    def position(self):
        return {}

    def seek(self, position):
        pass


class TestHealthIsolation:
    def test_one_failing_tenant_does_not_stall_the_fleet(self, registry):
        svc = DetectionService(registry, ServeConfig(workers=0))
        good_sink = ListSink()
        svc.attach(
            TenantSpec(tenant_id="good", model="spark-prod", **UNBOUNDED),
            source=IterableSource(spark_records(8, jobs=1)),
            sink=good_sink,
        )
        svc.attach(
            TenantSpec(tenant_id="bad", model="spark-prod", **UNBOUNDED),
            source=_ExplodingSource(),
            sink=ListSink(),
        )
        svc.drain()
        assert svc.tenant("bad").failure is not None
        assert "boom" in svc.tenant("bad").failure
        assert len(good_sink.reports) > 0
        status = svc.tenants_status()
        by_id = {t["tenant"]: t for t in status["tenants"]}
        assert by_id["bad"]["failure"]
        assert by_id["good"]["failure"] is None
        svc.close()


class TestAdmin:
    def test_parse_model_ref(self):
        assert parse_model_ref("m") == ("m", None)
        assert parse_model_ref("m@3") == ("m", 3)
        with pytest.raises(ValueError):
            parse_model_ref("@3")
        with pytest.raises(ValueError):
            parse_model_ref("m@latest")

    def test_load_json_tenants_file(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text(json.dumps({
            "tenants": [
                {"id": "a", "model": "m@2", "log": "a.log"},
                {"id": "b", "model": "m", "formatter": "spark"},
            ]
        }))
        specs = load_tenants_file(path)
        assert [s.tenant_id for s in specs] == ["a", "b"]
        assert (specs[0].model, specs[0].version) == ("m", 2)
        assert specs[0].log_path == "a.log"
        assert specs[1].formatter == "spark"

    def test_load_toml_tenants_file(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "tenants.toml"
        path.write_text(
            '[[tenants]]\nid = "a"\nmodel = "m@1"\nlog = "a.log"\n'
            '\n[[tenants]]\nid = "b"\nmodel = "m"\n'
        )
        specs = load_tenants_file(path)
        assert [(s.tenant_id, s.version) for s in specs] == [
            ("a", 1), ("b", None),
        ]

    def test_duplicate_tenant_id_rejected(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text(json.dumps({"tenants": [
            {"id": "a", "model": "m"}, {"id": "a", "model": "m"},
        ]}))
        with pytest.raises(ValueError, match="twice"):
            load_tenants_file(path)

    def test_malformed_file_rejected(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text(json.dumps(["not", "a", "dict"]))
        with pytest.raises(ValueError, match="tenants"):
            load_tenants_file(path)

    def _spec(self, tid, ref, log_path):
        name, version = parse_model_ref(ref)
        return TenantSpec(
            tenant_id=tid, model=name, version=version,
            log_path=str(log_path), **UNBOUNDED,
        )

    def test_apply_tenants_diffs_the_fleet(
        self, tmp_path, spark_store, spark_store_v2
    ):
        reg = ModelRegistry(tmp_path / "reg")
        reg.publish(spark_store, "adm")
        reg.publish(spark_store_v2, "adm")   # adm@2 is latest
        reg.publish(spark_store, "other")
        log_file = tmp_path / "empty.log"
        log_file.touch()
        svc = DetectionService(reg, ServeConfig(workers=0))

        first = apply_tenants(svc, [
            self._spec("a", "adm", log_file),
            self._spec("b", "adm@1", log_file),
        ])
        assert first["attached"] == ["a", "b"]
        assert svc.tenant("a").lease.version == 2
        assert svc.tenant("b").lease.version == 1

        second = apply_tenants(svc, [
            self._spec("a", "adm@1", log_file),   # pin back to v1
            self._spec("c", "adm", log_file),     # new tenant
        ])                                        # b disappears
        assert second == {
            "attached": ["c"], "detached": ["b"],
            "swapped": ["a"], "kept": [],
        }
        svc.cycle()  # the pump applies the parked swap
        assert svc.tenant("a").lease.version == 1
        assert svc.tenant_ids == ["a", "c"]

        # Model *renames* are refused (kept) — they need detach/attach.
        third = apply_tenants(svc, [
            self._spec("a", "other", log_file),
            self._spec("c", "adm", log_file),
        ])
        assert third["swapped"] == []
        assert set(third["kept"]) == {"a", "c"}
        assert svc.tenant("a").lease.name == "adm"
        svc.close()

    def test_one_bad_entry_does_not_poison_a_reload(self, registry):
        svc = DetectionService(registry, ServeConfig(workers=0))
        good = TenantSpec(
            tenant_id="ok", model="spark-prod", **UNBOUNDED
        )
        bad = TenantSpec(tenant_id="bad", model="unpublished")
        good.log_path = None  # no source either: attach must fail
        summary = apply_tenants(svc, [bad, good])
        assert summary["attached"] == []
        assert svc.tenant_ids == []


class TestTenantsRoute:
    def test_tenants_json_route_reflects_the_fleet(self, registry):
        svc = DetectionService(registry, ServeConfig(workers=0))
        svc.attach(
            TenantSpec(tenant_id="t", model="spark-prod", **UNBOUNDED),
            source=IterableSource(spark_records(3, jobs=1)),
            sink=ListSink(),
        )
        svc.drain()
        server = MetricsServer(
            svc.metrics, port=0,
            json_routes={"/tenants": svc.tenants_status},
        )
        try:
            base = f"http://127.0.0.1:{server.port}"
            with urllib.request.urlopen(
                base + "/tenants", timeout=5
            ) as resp:
                payload = json.loads(resp.read().decode("utf-8"))
            assert payload["fleet"]["active"] == 1
            assert payload["tenants"][0]["tenant"] == "t"
            assert payload["tenants"][0]["reports"] > 0
            assert "spark-prod" in payload["registry"]["models"]
            with urllib.request.urlopen(
                base + "/metrics", timeout=5
            ) as resp:
                body = resp.read().decode("utf-8")
            assert "serve_active_tenants 1" in body
        finally:
            server.close()
            svc.close()
