"""Setup shim for environments without the ``wheel`` package.

The offline evaluation environment lacks ``wheel``, so PEP 660 editable
installs fail; with this shim ``pip install -e .`` falls back to the legacy
``setup.py develop`` path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
