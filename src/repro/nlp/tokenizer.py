"""Log-aware tokenizer.

Log messages differ from free-form prose: they embed identifiers
(``attempt_01``), host:port localities (``host1:13562``), filesystem paths,
units glued to numbers (``4ms``), bracketed component prefixes
(``[fetcher #1]``) and the asterisk variable marker of log keys.  A standard
word tokenizer would shred these.  This tokenizer keeps such atoms intact
while still splitting ordinary punctuation, which is what the downstream POS
tagger and pattern extractors expect.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

# Atoms that must survive tokenization unsplit, tried in order.
_TOKEN_RE = re.compile(
    r"""
    (?P<path>   (?:hdfs://|file://|s3://)[^\s,;]+     # DFS URIs
              | /(?:[\w.\-]+/)+[\w.\-]*               # absolute POSIX paths
    )
  | (?P<hostport> [A-Za-z][\w.\-]*:\d{2,5}            # host:port
              | (?:\d{1,3}\.){3}\d{1,3}(?::\d{1,5})?  # IPv4[:port]
    )
  | (?P<ident> [A-Za-z]+[_\-][\w\-]*\d[\w\-]*         # attempt_01, job-7_2
              | [A-Za-z]+\d+(?:_[\w]+)*               # task000_1, vertex12
              | \d+[_\-][\w\-]*[A-Za-z][\w\-]*        # 01_attempt
    )
  | (?P<number> \d+(?:\.\d+)?(?:[eE][+-]?\d+)?        # 2264, 12.5, 1e9
    )
  | (?P<word>  [A-Za-z]+(?:_[A-Za-z]+)+               # snake_case compounds
              | [A-Za-z][A-Za-z'\-]*                  # words, don't, on-disk
    )
  | (?P<star>  \*                                     # log-key variable field
    )
  | (?P<punct> [^\sA-Za-z0-9]                         # everything else, 1 char
    )
    """,
    re.VERBOSE,
)

_KIND_ORDER = ("path", "hostport", "ident", "number", "word", "star", "punct")


@dataclass(frozen=True, slots=True)
class Token:
    """A single token with its surface form, kind and character offset."""

    text: str
    kind: str  # one of: path, hostport, ident, number, word, star, punct
    start: int

    @property
    def end(self) -> int:
        return self.start + len(self.text)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


def iter_tokens(text: str) -> Iterator[Token]:
    """Yield :class:`Token` objects for ``text`` in surface order."""
    for match in _TOKEN_RE.finditer(text):
        for kind in _KIND_ORDER:
            value = match.group(kind)
            if value is not None:
                yield Token(value, kind, match.start(kind))
                break


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text`` into a list of :class:`Token`."""
    return list(iter_tokens(text))


def words(text: str) -> list[str]:
    """Tokenize and return surface strings only."""
    return [token.text for token in iter_tokens(text)]


def detokenize(tokens: list[Token] | list[str]) -> str:
    """Join tokens back into a single-space-separated string.

    Exact whitespace is not recoverable (nor needed): log keys are compared
    token-wise throughout the pipeline.
    """
    parts = [t.text if isinstance(t, Token) else t for t in tokens]
    return " ".join(parts)
