"""Shallow Universal Dependencies parser for log sentences.

IntelLog's operation extraction (paper §3.2, Table 3) needs seven UD
relations: ``ROOT``, ``xcomp``, ``nsubj``, ``nsubjpass``, ``dobj``, ``iobj``
and ``nmod``.  Log keys are overwhelmingly simple single-clause sentences
("fetcher #1 about to shuffle output of map *", "* freed by fetcher #1 in
*"), so a deterministic shallow parser recovers these relations reliably:

1. locate the clausal predicate (finite verb; sentence-initial participle or
   gerund; or an infinitive after "about to"/"ready to" patterns);
2. detect the passive voice (participle predicate with a *by*-phrase or a
   preceding form of "be");
3. attach the noun-phrase head left of the predicate as ``nsubj`` (or
   ``nsubjpass``), the bare NP right of it as ``dobj``, a second bare NP as
   ``iobj``, and prepositional NPs as ``nmod``;
4. attach chained infinitives/participles as ``xcomp`` of the main verb.

The parser also reports whether the sentence contains at least one clause —
the paper's working definition of a "natural language" log message (§2.2,
Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .postagger import TaggedToken, tag
from .tags import is_noun, is_verb

#: The seven UD relations used by operation extraction (Table 3).
RELATIONS = ("ROOT", "xcomp", "nsubj", "nsubjpass", "dobj", "iobj", "nmod")

_BE_FORMS = frozenset({"be", "am", "is", "are", "was", "were", "been",
                       "being"})
_NP_TAGS_HEAD = is_noun  # head of an NP must be a noun


@dataclass(frozen=True, slots=True)
class Arc:
    """One dependency arc: ``relation(head -> dependent)`` by token index.

    ``head`` is -1 for the ROOT arc.
    """

    head: int
    dep: int
    relation: str


@dataclass(slots=True)
class Parse:
    """Parse result: tagged tokens plus dependency arcs."""

    tokens: list[TaggedToken]
    arcs: list[Arc] = field(default_factory=list)

    @property
    def root(self) -> int | None:
        for arc in self.arcs:
            if arc.relation == "ROOT":
                return arc.dep
        return None

    def dependents(self, head: int, relation: str | None = None) -> list[int]:
        return [
            arc.dep
            for arc in self.arcs
            if arc.head == head
            and (relation is None or arc.relation == relation)
        ]

    def relation_of(self, dep: int) -> str | None:
        for arc in self.arcs:
            if arc.dep == dep:
                return arc.relation
        return None

    def has_clause(self) -> bool:
        """True if the sentence contains at least one clause (a predicate)."""
        return self.root is not None


def _np_spans(tokens: list[TaggedToken]) -> list[tuple[int, int]]:
    """Maximal noun-phrase spans as (start, end_exclusive) index pairs.

    A span is a contiguous run of DT/JJ/NN/CD/SYM/#-tokens containing at
    least one noun or SYM/CD token.
    """
    spans: list[tuple[int, int]] = []
    i = 0
    n = len(tokens)
    while i < n:
        t = tokens[i]
        if (
            is_noun(t.tag)
            or t.tag in ("DT", "PDT", "PRP$", "CD", "SYM", "#")
            or t.tag in ("JJ", "JJR", "JJS")
        ):
            j = i
            has_head = False
            while j < n:
                tj = tokens[j]
                if is_noun(tj.tag) or tj.tag in ("CD", "SYM"):
                    has_head = True
                    j += 1
                elif tj.tag in ("DT", "PDT", "PRP$", "JJ", "JJR", "JJS", "#"):
                    j += 1
                else:
                    break
            if has_head and j > i:
                spans.append((i, j))
                i = j
                continue
        i += 1
    return spans


def _np_head(tokens: list[TaggedToken], span: tuple[int, int]) -> int:
    """Index of the head of an NP span: the last noun, else last SYM/CD."""
    start, end = span
    for i in range(end - 1, start - 1, -1):
        if is_noun(tokens[i].tag):
            return i
    for i in range(end - 1, start - 1, -1):
        if tokens[i].tag in ("SYM", "CD"):
            return i
    return end - 1


def _find_predicates(tokens: list[TaggedToken]) -> list[int]:
    """Indices of verbal tokens, in surface order."""
    return [i for i, t in enumerate(tokens) if is_verb(t.tag)]


def _main_predicate(tokens: list[TaggedToken],
                    verbs: list[int]) -> tuple[int | None, bool]:
    """Pick the main predicate index and whether the clause is passive."""
    if not verbs:
        return None, False

    # Prefer a finite verb that is not a bare auxiliary.
    finite = [
        i for i in verbs
        if tokens[i].tag in ("VBZ", "VBD", "VBP", "VB", "MD")
    ]
    content_finite = [
        i for i in finite
        if tokens[i].lower not in _BE_FORMS
        and tokens[i].lower not in ("have", "has", "had", "do", "does",
                                    "did")
        and tokens[i].tag != "MD"
    ]
    candidates = content_finite or finite or verbs
    pred = candidates[0]

    # "be" + participle => the participle is the (passive) predicate.
    if tokens[pred].lower in _BE_FORMS:
        for j in verbs:
            if j > pred and tokens[j].tag == "VBN":
                return j, True
        for j in verbs:
            if j > pred and tokens[j].tag == "VBG":
                return j, False
        return pred, False

    # Any predicate immediately followed by a "by"-agent phrase is passive
    # ("* freed by fetcher # 1 in 4ms").
    k = pred + 1
    while k < len(tokens) and tokens[k].tag in ("RB",):
        k += 1
    if k < len(tokens) and tokens[k].lower == "by" and tokens[k].tag == "IN":
        return pred, True
    return pred, False


def parse_tagged(tokens: list[TaggedToken]) -> Parse:
    """Parse a tagged token sequence into UD arcs.

    Multi-sentence log keys (e.g. Figure 4's "Finished task ... . 2010 bytes
    result sent to driver") are split on sentence-final punctuation and each
    clause is parsed independently; every clause contributes its own ROOT.
    """
    parse = Parse(tokens=tokens)
    start = 0
    for i, tok in enumerate(tokens):
        if tok.tag == ".":
            _parse_clause(tokens, start, i, parse)
            start = i + 1
    _parse_clause(tokens, start, len(tokens), parse)
    return parse


def _parse_clause(all_tokens: list[TaggedToken], lo: int, hi: int,
                  out: Parse) -> None:
    """Parse ``all_tokens[lo:hi]`` and append offset arcs to ``out``."""
    if hi <= lo:
        return
    clause = _parse_single(all_tokens[lo:hi])
    for arc in clause.arcs:
        head = arc.head if arc.head == -1 else arc.head + lo
        out.arcs.append(Arc(head, arc.dep + lo, arc.relation))


def _parse_single(tokens: list[TaggedToken]) -> Parse:
    """Parse a single clause into UD arcs."""
    parse = Parse(tokens=tokens)
    verbs = _find_predicates(tokens)
    pred, passive = _main_predicate(tokens, verbs)
    if pred is None:
        # Zero-copula predicate adjective, pervasive in log text
        # ("Claim successful", "authentication disabled"): the adjective
        # after a noun phrase is the clausal predicate.
        for i in range(1, len(tokens)):
            if tokens[i].tag in ("JJ", "JJR", "JJS") and is_noun(
                tokens[i - 1].tag
            ):
                parse.arcs.append(Arc(-1, i, "ROOT"))
                spans = _np_spans(tokens[:i])
                if spans:
                    head = _np_head(tokens, spans[-1])
                    parse.arcs.append(Arc(i, head, "nsubj"))
                return parse
        return parse

    parse.arcs.append(Arc(-1, pred, "ROOT"))

    # xcomp: chained "to VB" or adjacent secondary verbs after the root
    # ("about to shuffle", "finished. Closing").
    for j in verbs:
        if j == pred:
            continue
        if j > pred and tokens[j].tag in ("VB", "VBG"):
            between = tokens[pred + 1:j]
            if all(t.tag in ("TO", "IN", "RB") for t in between) or not between:
                parse.arcs.append(Arc(pred, j, "xcomp"))
                break

    spans = _np_spans(tokens)

    # Subject: last NP that ends before the predicate (and before any
    # auxiliary directly preceding it).
    subj_span = None
    for span in spans:
        if span[1] <= pred:
            subj_span = span
    if subj_span is not None:
        head = _np_head(tokens, subj_span)
        parse.arcs.append(
            Arc(pred, head, "nsubjpass" if passive else "nsubj")
        )

    # Objects and nominal modifiers to the right of the predicate.  An NP
    # immediately after the verb (no preposition in between) is dobj; a
    # second bare NP is iobj; NPs after a preposition are nmod.
    xcomp_idx = next(
        (a.dep for a in parse.arcs if a.relation == "xcomp"), None
    )
    attach_to = xcomp_idx if xcomp_idx is not None else pred
    right_edge = max(pred, attach_to)

    seen_dobj = False
    for span in spans:
        if span[0] <= right_edge:
            continue
        # Find the word immediately before the span start.
        k = span[0] - 1
        while k > right_edge and tokens[k].tag in ("RB", "#", "-LRB-"):
            k -= 1
        prep = tokens[k].tag in ("IN", "TO") if k > right_edge else False
        head = _np_head(tokens, span)
        if prep:
            parse.arcs.append(Arc(attach_to, head, "nmod"))
        elif not seen_dobj:
            parse.arcs.append(Arc(attach_to, head, "dobj"))
            seen_dobj = True
        else:
            parse.arcs.append(Arc(attach_to, head, "iobj"))

    return parse


def parse(text: str) -> Parse:
    """Tokenize, tag and parse ``text``."""
    return parse_tagged(tag(text))


def contains_clause(text: str) -> bool:
    """Paper §2.2 NL-log test: does the message contain at least one clause?

    A clause requires a predicate; we additionally accept imperative or
    participial one-liners ("Shutting down", "Registered").
    """
    return parse(text).has_clause()
