"""Penn Treebank part-of-speech tag set and helpers.

IntelLog (HPDC'19, section 3) tags every word of a sample log message with a
Penn Treebank POS mark and matches entity phrases against POS patterns
expressed over a reduced alphabet (``NN`` covering all four noun tags, ``JJ``
covering the adjective tags, ``IN`` for prepositions).  This module defines
the tag inventory and the coarsening map used throughout the extraction
pipeline.
"""

from __future__ import annotations

from typing import Final

# --- the full Penn Treebank inventory (Marcus et al., 1993) ----------------

NOUN_TAGS: Final[frozenset[str]] = frozenset({"NN", "NNS", "NNP", "NNPS"})
ADJ_TAGS: Final[frozenset[str]] = frozenset({"JJ", "JJR", "JJS"})
VERB_TAGS: Final[frozenset[str]] = frozenset(
    {"VB", "VBD", "VBG", "VBN", "VBP", "VBZ", "MD"}
)
ADV_TAGS: Final[frozenset[str]] = frozenset({"RB", "RBR", "RBS", "RP"})
PRONOUN_TAGS: Final[frozenset[str]] = frozenset({"PRP", "PRP$", "WP", "WP$"})

#: Tag used for numeral tokens ("2264", "4", "12.5").
CD: Final[str] = "CD"
#: Tag used for prepositions / subordinating conjunctions ("of", "for", "in").
IN: Final[str] = "IN"
#: Tag used for determiners ("the", "a", "this").
DT: Final[str] = "DT"
#: Tag we assign to variable fields (``*``) of a log key and to opaque
#: alphanumeric identifiers such as ``attempt_01``.  ``SYM`` is the Penn tag
#: for symbols; the original IntelLog treats identifiers the same way.
SYM: Final[str] = "SYM"
#: Tag for list-item punctuation and brackets.
PUNCT_TAGS: Final[frozenset[str]] = frozenset(
    {".", ",", ":", "``", "''", "-LRB-", "-RRB-", "#", "$", "SYM"}
)

ALL_TAGS: Final[frozenset[str]] = (
    NOUN_TAGS
    | ADJ_TAGS
    | VERB_TAGS
    | ADV_TAGS
    | PRONOUN_TAGS
    | PUNCT_TAGS
    | frozenset(
        {
            "CD",
            "CC",
            "DT",
            "EX",
            "FW",
            "IN",
            "LS",
            "PDT",
            "POS",
            "TO",
            "UH",
            "WDT",
            "WRB",
        }
    )
)


def coarse(tag: str) -> str:
    """Collapse a fine-grained Penn tag to the alphabet used by Table 2.

    ``NN``/``NNS``/``NNP``/``NNPS`` -> ``NN``; ``JJ``/``JJR``/``JJS`` -> ``JJ``;
    all verb tags -> ``VB``; everything else is returned unchanged.
    """
    if tag in NOUN_TAGS:
        return "NN"
    if tag in ADJ_TAGS:
        return "JJ"
    if tag in VERB_TAGS:
        return "VB"
    if tag in ADV_TAGS:
        return "RB"
    return tag


def is_noun(tag: str) -> bool:
    """True for any of the four Penn noun tags."""
    return tag in NOUN_TAGS


def is_adjective(tag: str) -> bool:
    """True for any of the three Penn adjective tags."""
    return tag in ADJ_TAGS


def is_verb(tag: str) -> bool:
    """True for any Penn verb tag (including modal ``MD``)."""
    return tag in VERB_TAGS


def is_preposition(tag: str) -> bool:
    """True for the preposition tag ``IN`` (and the infinitival ``TO``)."""
    return tag in ("IN", "TO")


def is_content_tag(tag: str) -> bool:
    """True for tags that can participate in an entity phrase (Table 2)."""
    return is_noun(tag) or is_adjective(tag) or is_preposition(tag)
