"""Rule-based English lemmatizer.

IntelLog lemmatizes extracted entity phrases to their singular forms
(paper §3.1) so that "tasks" and "task" denote the same entity, and reduces
verb forms to their base when canonicalising operations.  This module
implements a dictionary-plus-suffix-rules lemmatizer adequate for the
restricted vocabulary of system logs.
"""

from __future__ import annotations

from .lexicon import IRREGULAR_VERBS
from .tags import is_noun, is_verb

# Irregular noun plurals seen in (or plausible for) log text.
_IRREGULAR_PLURALS = {
    "children": "child",
    "indices": "index",
    "indexes": "index",
    "vertices": "vertex",
    "vertexes": "vertex",
    "matrices": "matrix",
    "statuses": "status",
    "processes": "process",
    "classes": "class",
    "caches": "cache",
    "leases": "lease",
    "leaves": "leaf",
    "copies": "copy",
    "entries": "entry",
    "queries": "query",
    "retries": "retry",
    "registries": "registry",
    "properties": "property",
    "capacities": "capacity",
    "dependencies": "dependency",
    "directories": "directory",
    "priorities": "priority",
    "men": "man",
    "feet": "foot",
    "data": "data",
    "metadata": "metadata",
    "metrics": "metrics",  # "metrics system" — treated as invariant
    "bytes": "byte",
}

# Words ending in "s" that are singular already.
_S_SINGULAR = frozenset({
    "status", "progress", "process", "class", "acl", "address",
    "access", "success", "loss", "bus", "alias", "analysis", "axis",
    "canvas", "census", "corpus", "focus", "gas", "its", "this",
    "always", "perhaps", "kerberos", "hdfs", "dfs", "os", "dns", "tls",
    "https", "was", "is", "has", "does", "ss",
})

_PAST_TO_BASE = {past: base for base, (past, _) in IRREGULAR_VERBS.items()}
_PART_TO_BASE = {part: base for base, (_, part) in IRREGULAR_VERBS.items()}


def singularize(word: str) -> str:
    """Return the singular form of a noun ``word`` (lower-cased)."""
    lower = word.lower()
    if lower in _IRREGULAR_PLURALS:
        return _IRREGULAR_PLURALS[lower]
    if lower in _S_SINGULAR or not lower.endswith("s"):
        return lower
    if lower.endswith("ies") and len(lower) > 4:
        return lower[:-3] + "y"
    if lower.endswith("ses") and len(lower) > 4:
        return lower[:-2]
    if lower.endswith(("shes", "ches", "xes", "zes")) and len(lower) > 4:
        return lower[:-2]
    if lower.endswith("oes") and len(lower) > 4:
        return lower[:-2]
    if lower.endswith("ss"):
        return lower
    return lower[:-1]


def verb_base(word: str) -> str:
    """Return the base (infinitive) form of a verb ``word``."""
    lower = word.lower()
    if lower in _PAST_TO_BASE:
        return _PAST_TO_BASE[lower]
    if lower in _PART_TO_BASE:
        return _PART_TO_BASE[lower]
    aux = {
        "is": "be", "are": "be", "was": "be", "were": "be", "been": "be",
        "being": "be", "am": "be",
        "has": "have", "had": "have", "having": "have",
        "does": "do", "did": "do", "done": "do", "doing": "do",
    }
    if lower in aux:
        return aux[lower]
    if lower.endswith("ing") and len(lower) > 5:
        stem = lower[:-3]
        if len(stem) >= 3 and stem[-1] == stem[-2] and stem[-1] not in "aeiouls":
            return stem[:-1]
        if _needs_final_e(stem):
            return stem + "e"
        return stem
    if lower.endswith("ied") and len(lower) > 4:
        return lower[:-3] + "y"
    if lower.endswith("ed") and len(lower) > 3:
        stem = lower[:-2]
        if len(stem) >= 3 and stem[-1] == stem[-2] and stem[-1] not in "aeiouls":
            return stem[:-1]
        if _needs_final_e(stem):
            return stem + "e"
        return stem
    if lower.endswith("ies") and len(lower) > 4:
        return lower[:-3] + "y"
    if lower.endswith(("shes", "ches", "xes", "zes", "ses", "oes")):
        return lower[:-2]
    if lower.endswith("s") and not lower.endswith("ss") and len(lower) > 3:
        return lower[:-1]
    return lower


# Stems that end in a consonant and need a restored final "e".
_E_FINAL_STEMS = frozenset({
    "stor", "creat", "delet", "updat", "complet", "terminat", "initializ",
    "allocat", "releas", "schedul", "writ", "receiv", "merg", "clos",
    "validat", "serializ", "deserializ", "replicat", "cach", "encod",
    "decod", "expir", "resolv", "locat", "us", "tim", "chang", "remov",
    "sav", "mov", "renam", "invok", "handl", "rout", "reserv", "prepar",
    "configur", "upgrad", "purg", "truncat", "estimat", "sampl",
    "finaliz", "instantiat", "materializ", "recomput", "decommission",
    "localiz", "synchroniz", "evict", "leav", "tak", "giv", "mak",
    "compress", "acquir", "unregist", "regist", "ignor", "declar",
    "compil", "execut", "combin", "divid", "reduc", "produc", "consum",
    "pars", "generat", "aggregat", "calculat", "compar", "exceed",
    "accept", "fre", "requir", "shuffl", "schedul", "handl", "enabl",
    "disabl", "bundl", "sampl", "singl", "doubl", "recycl",
})


def _needs_final_e(stem: str) -> bool:
    if stem in _E_FINAL_STEMS:
        return True
    # C+V+C+e pattern heuristics: "clos" -> "close", "stor" -> "store"
    return False


def lemmatize(word: str, tag: str) -> str:
    """Lemmatize ``word`` according to its Penn tag."""
    if is_noun(tag):
        return singularize(word)
    if is_verb(tag):
        return verb_base(word)
    return word.lower()


def lemmatize_phrase(words: list[str], tags: list[str]) -> list[str]:
    """Lemmatize an entity phrase: only the head (last) noun is singularized.

    "map completion events" -> "map completion event" but the non-head words
    are kept (lower-cased) so compounds survive intact.
    """
    if not words:
        return []
    result = [w.lower() for w in words]
    for i in range(len(words) - 1, -1, -1):
        if is_noun(tags[i]):
            result[i] = singularize(words[i])
            break
    return result
