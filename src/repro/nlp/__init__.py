"""Log-domain natural language processing substrate.

This package replaces the OpenNLP POS tagger and the Stanford dependency
parser used by the original IntelLog implementation with a from-scratch
stack specialised for system-log text:

* :mod:`repro.nlp.tokenizer` — log-aware tokenization (identifiers,
  host:port localities, paths and log-key asterisks survive as atoms);
* :mod:`repro.nlp.postagger` — Penn Treebank POS tagging via lexicon +
  morphology + contextual patch rules;
* :mod:`repro.nlp.lemmatizer` — noun singularization and verb base forms;
* :mod:`repro.nlp.depparser` — shallow Universal Dependencies parsing
  producing the seven relations of the paper's Table 3;
* :mod:`repro.nlp.camelcase` — the camel-case entity name filter.
"""

from .camelcase import (
    FilterChain,
    camel_filter,
    is_camel_case,
    make_default_chain,
    snake_filter,
    split_camel_case,
)
from .depparser import Arc, Parse, contains_clause, parse, parse_tagged
from .lemmatizer import lemmatize, lemmatize_phrase, singularize, verb_base
from .postagger import TaggedToken, tag, tag_tokens
from .tokenizer import Token, detokenize, tokenize, words

__all__ = [
    "Arc",
    "FilterChain",
    "Parse",
    "TaggedToken",
    "Token",
    "camel_filter",
    "contains_clause",
    "detokenize",
    "is_camel_case",
    "lemmatize",
    "lemmatize_phrase",
    "make_default_chain",
    "parse",
    "parse_tagged",
    "singularize",
    "snake_filter",
    "split_camel_case",
    "tag",
    "tag_tokens",
    "tokenize",
    "verb_base",
    "words",
]
