"""Camel-case word filter.

Paper §3.1: entities that are also classes in the source code follow the
camel-case naming convention ("MapTask", "BlockManager").  IntelLog splits
such words into phrases ("map task", "block manager") so nomenclature
grouping can correlate them with their plain-text siblings.  Users can
register additional filters for other conventions (snake_case is provided).
"""

from __future__ import annotations

import re
from typing import Protocol

_CAMEL_BOUNDARY = re.compile(
    r"""
      (?<=[a-z0-9])(?=[A-Z])          # fooBar -> foo | Bar
    | (?<=[A-Z])(?=[A-Z][a-z])        # HTTPServer -> HTTP | Server
    | (?<=[A-Za-z])(?=\d)             # task0 -> task | 0
    | (?<=\d)(?=[A-Za-z])             # 0task -> 0 | task
    """,
    re.VERBOSE,
)


class NameFilter(Protocol):
    """A naming-convention filter: returns sub-words or None if no match."""

    def __call__(self, word: str) -> list[str] | None: ...


def is_camel_case(word: str) -> bool:
    """True for words with an internal case change, e.g. ``MapTask``."""
    if len(word) < 2 or not word.isalnum():
        return False
    has_upper_inside = any(c.isupper() for c in word[1:])
    has_lower = any(c.islower() for c in word)
    return has_upper_inside and has_lower


def split_camel_case(word: str) -> list[str]:
    """Split a camel-case word into lower-cased parts.

    >>> split_camel_case("MapTask")
    ['map', 'task']
    >>> split_camel_case("BlockManagerEndpoint")
    ['block', 'manager', 'endpoint']
    """
    return [part.lower() for part in _CAMEL_BOUNDARY.split(word) if part]


def camel_filter(word: str) -> list[str] | None:
    """The default camel-case :class:`NameFilter`."""
    if is_camel_case(word):
        parts = split_camel_case(word)
        # Pure alpha parts only: "task0" is an identifier, not an entity.
        if all(p.isalpha() for p in parts) and len(parts) >= 2:
            return parts
    return None


def snake_filter(word: str) -> list[str] | None:
    """Optional snake_case :class:`NameFilter` ("block_manager")."""
    if "_" in word.strip("_"):
        parts = [p.lower() for p in word.split("_") if p]
        if len(parts) >= 2 and all(p.isalpha() for p in parts):
            return parts
    return None


class FilterChain:
    """Composable chain of naming-convention filters.

    The first filter that matches wins.  Users targeting systems with other
    conventions register their own callables (paper §3.1: "users can define
    their own filters").
    """

    def __init__(self, filters: list[NameFilter] | None = None) -> None:
        self._filters: list[NameFilter] = (
            list(filters) if filters is not None else [camel_filter]
        )

    def add(self, name_filter: NameFilter) -> None:
        self._filters.append(name_filter)

    def split(self, word: str) -> list[str] | None:
        for name_filter in self._filters:
            parts = name_filter(word)
            if parts:
                return parts
        return None


DEFAULT_FILTERS = FilterChain()


def make_default_chain() -> FilterChain:
    """A fresh default chain (camel-case only, per the paper)."""
    return FilterChain([camel_filter])
