"""POS lexicon for the log-domain tagger.

The tagger resolves a word's candidate tags from this lexicon first and only
falls back to morphological suffix rules for unknown words.  The lexicon is
built from three layers:

1. English closed-class words (determiners, prepositions, pronouns,
   conjunctions, modals) — a complete, finite list;
2. the open-class vocabulary of distributed data-analytics system logs
   (Hadoop MapReduce, Spark, Tez, YARN and OpenStack message texts), with
   verb paradigms expanded programmatically from base forms;
3. common general-English verbs/adjectives/adverbs that appear in log prose.

Candidate tags per word are ordered by prior likelihood *in log text*; the
tagger's contextual rules may override the first candidate.
"""

from __future__ import annotations

from functools import lru_cache

# --------------------------------------------------------------------------
# Closed classes
# --------------------------------------------------------------------------

DETERMINERS = {
    "the": "DT", "a": "DT", "an": "DT", "this": "DT", "that": "DT",
    "these": "DT", "those": "DT", "no": "DT", "each": "DT", "every": "DT",
    "another": "DT", "any": "DT", "some": "DT", "all": "PDT", "both": "DT",
}

PREPOSITIONS = {
    "of", "in", "on", "at", "by", "for", "with", "from", "to", "into",
    "onto", "over", "under", "after", "before", "during", "between",
    "through", "within", "without", "against", "via", "per", "as",
    "about", "above", "below", "across", "until", "since", "towards",
    "toward", "upon", "because", "if", "while", "whether", "than",
}

CONJUNCTIONS = {"and", "or", "but", "nor", "so", "yet"}

PRONOUNS = {
    "it": "PRP", "they": "PRP", "we": "PRP", "i": "PRP", "you": "PRP",
    "he": "PRP", "she": "PRP", "them": "PRP", "us": "PRP",
    "its": "PRP$", "their": "PRP$", "our": "PRP$", "my": "PRP$",
    "his": "PRP$", "her": "PRP$", "your": "PRP$",
}

MODALS = {"can", "could", "will", "would", "shall", "should", "may",
          "might", "must"}

WH_WORDS = {"which": "WDT", "what": "WDT", "who": "WP", "whom": "WP",
            "whose": "WP$", "when": "WRB", "where": "WRB", "why": "WRB",
            "how": "WRB"}

EXISTENTIAL = {"there": "EX"}

# Auxiliary "be"/"have"/"do" forms get explicit verb tags.
AUX_VERBS = {
    "be": "VB", "am": "VBP", "is": "VBZ", "are": "VBP", "was": "VBD",
    "were": "VBD", "been": "VBN", "being": "VBG",
    "have": "VBP", "has": "VBZ", "had": "VBD", "having": "VBG",
    "do": "VBP", "does": "VBZ", "did": "VBD", "done": "VBN",
    "doing": "VBG",
}

# --------------------------------------------------------------------------
# Open-class log-domain vocabulary
# --------------------------------------------------------------------------

# Base verbs seen in data-analytics system logs.  Paradigms (VBZ, VBD, VBN,
# VBG) are expanded by `_verb_forms`; irregular forms are listed explicitly.
BASE_VERBS = [
    "start", "stop", "launch", "finish", "complete", "fail", "succeed",
    "run", "execute", "submit", "schedule", "assign", "allocate",
    "release", "free", "register", "unregister", "initialize", "init",
    "shut", "shutdown", "exit", "kill", "terminate", "abort", "clean",
    "cleanup", "create", "delete", "remove", "add", "update", "load",
    "store", "save", "read", "write", "send", "receive", "transfer",
    "fetch", "shuffle", "merge", "sort", "spill", "commit", "rollback",
    "open", "close", "connect", "disconnect", "bind", "listen", "accept",
    "request", "respond", "reply", "retry", "report", "notify", "signal",
    "process", "compute", "calculate", "aggregate", "reduce", "map",
    "combine", "partition", "split", "copy", "move", "rename", "download",
    "upload", "broadcast", "replicate", "cache", "evict", "flush",
    "serialize", "deserialize", "compress", "decompress", "encode",
    "decode", "validate", "verify", "check", "monitor", "track", "log",
    "recover", "restart", "resume", "suspend", "pause", "wait", "block",
    "unblock", "lock", "unlock", "acquire", "grant", "deny", "reject",
    "expire", "renew", "refresh", "resolve", "lookup", "find", "locate",
    "discover", "detect", "identify", "mark", "set", "get", "put", "take",
    "give", "make", "use", "try", "attempt", "need", "contain", "include",
    "exceed", "reach", "change", "transition", "enter", "leave", "skip",
    "ignore", "drop", "keep", "hold", "return", "call", "invoke", "handle",
    "dispatch", "route", "forward", "preempt", "reserve", "prepare",
    "configure", "reconfigure", "deploy", "install", "upgrade", "succeed",
    "time", "heartbeat", "ping", "sync", "synchronize", "cancel", "purge",
    "truncate", "append", "seek", "scan", "filter", "join", "group",
    "order", "select", "insert", "estimate", "sample", "finalize",
    "instantiate", "materialize", "repartition", "recompute", "persist",
    "unpersist", "decommission", "blacklist", "localize", "clear", "show",
    "tell", "see", "know", "think", "go", "come", "begin", "end", "grow",
    "shrink", "increase", "decrease", "allocate",
]

IRREGULAR_VERBS: dict[str, tuple[str, str]] = {
    # base -> (VBD, VBN)
    "run": ("ran", "run"),
    "read": ("read", "read"),
    "write": ("wrote", "written"),
    "send": ("sent", "sent"),
    "shut": ("shut", "shut"),
    "set": ("set", "set"),
    "get": ("got", "gotten"),
    "put": ("put", "put"),
    "take": ("took", "taken"),
    "give": ("gave", "given"),
    "make": ("made", "made"),
    "hold": ("held", "held"),
    "keep": ("kept", "kept"),
    "find": ("found", "found"),
    "lose": ("lost", "lost"),
    "split": ("split", "split"),
    "go": ("went", "gone"),
    "come": ("came", "come"),
    "begin": ("began", "begun"),
    "grow": ("grew", "grown"),
    "see": ("saw", "seen"),
    "know": ("knew", "known"),
    "think": ("thought", "thought"),
    "tell": ("told", "told"),
    "time": ("timed", "timed"),
    "bind": ("bound", "bound"),
    "seek": ("sought", "sought"),
    "leave": ("left", "left"),
}

# Words that are primarily nouns in log text even though they can be verbs
# elsewhere.  Listed with NN first so the tagger defaults to noun.
NOUN_FIRST = [
    "task", "job", "stage", "container", "executor", "driver", "worker",
    "master", "node", "host", "machine", "cluster", "application", "app",
    "attempt", "vertex", "dag", "session", "query", "operator", "plan",
    "block", "partition", "record", "row", "column", "table", "key",
    "value", "file", "directory", "folder", "path", "disk", "memory",
    "heap", "core", "cpu", "thread", "pool", "queue", "buffer", "stream",
    "socket", "port", "address", "endpoint", "service", "server", "client",
    "manager", "scheduler", "allocator", "listener", "handler", "fetcher",
    "reducer", "mapper", "combiner", "merger", "committer", "reporter",
    "tracker", "monitor", "event", "signal", "message", "response",
    "heartbeat", "token", "credential", "user", "group", "acl",
    "permission", "resource", "capacity", "limit", "threshold", "quota",
    "size", "length", "count", "number", "amount", "rate", "ratio",
    "time", "timeout", "interval", "duration", "deadline", "timestamp",
    "output", "input", "result", "status", "state", "phase", "step",
    "progress", "error", "exception", "failure", "warning", "info",
    "metric", "metrics", "counter", "gauge", "log", "trace", "system",
    "framework", "engine", "runtime", "environment", "context", "config",
    "configuration", "property", "parameter", "option", "setting",
    "version", "id", "identifier", "name", "label", "tag", "type",
    "class", "instance", "object", "entity", "component", "module",
    "shuffle", "spill", "merge", "sort", "fetch", "map", "reduce",
    "broadcast", "checkpoint", "snapshot", "replica", "copy", "backup",
    "segment", "chunk", "byte", "bytes", "data", "dataset", "rdd",
    "dataframe", "schema", "index", "offset", "cursor", "iterator",
    "edge", "source", "sink", "root", "leaf", "child", "parent", "tree",
    "graph", "list", "array", "batch", "bundle", "bundle", "region",
    "zone", "rack", "network", "interface", "connection", "channel",
    "protocol", "request", "transaction", "lease", "lock", "latch",
    "barrier", "epoch", "round", "iteration", "pass", "cycle", "loop",
    "store", "storage", "cache", "level", "priority", "weight", "score",
    "cost", "budget", "usage", "utilization", "load", "pressure",
    "overhead", "latency", "throughput", "bandwidth", "localhost",
    "daemon", "process", "archive", "jar", "library", "dependency",
    "classpath", "artifact", "bundle", "package", "image", "volume",
    "mount", "am", "rm", "nm", "jvm", "gc", "ui", "api", "rpc", "http",
    "server", "proxy", "gateway", "router", "registry", "catalog",
    "database", "warehouse", "bucket", "shard", "slot", "slot", "window",
    "trigger", "watermark", "completion", "initialization", "termination",
    "registration", "allocation", "execution", "submission", "connection",
    "authentication", "authorization", "validation", "expiration",
    "preemption", "localization", "recovery", "migration", "election",
    "coordination", "replication", "serialization", "compression",
    "cleanup", "setup", "startup", "shutdown", "teardown", "rollback",
    "retry", "backoff", "reattempt", "speculation", "straggler",
    "container", "quota", "tenant", "namespace", "pipeline", "workflow",
    "lineage", "dependency", "ancestor", "descendant", "sibling",
]

# Adjectives common in log prose.
ADJECTIVES = [
    "new", "old", "current", "previous", "next", "last", "first", "final",
    "initial", "total", "maximum", "minimum", "max", "min", "average",
    "remote", "local", "distributed", "parallel", "sequential",
    "concurrent", "asynchronous", "synchronous", "active", "inactive",
    "idle", "busy", "available", "unavailable", "healthy", "unhealthy",
    "valid", "invalid", "successful", "unsuccessful", "failed", "complete",
    "incomplete", "partial", "full", "empty", "temporary", "permanent",
    "persistent", "transient", "stale", "fresh", "dirty", "clean",
    "corrupt", "missing", "duplicate", "unique", "unknown", "default",
    "custom", "internal", "external", "public", "private", "secure",
    "insecure", "ready", "pending", "running", "stopped", "dead", "alive",
    "lost", "orphaned", "abandoned", "expired", "late", "early", "slow",
    "fast", "high", "low", "large", "small", "big", "long", "short",
    "wide", "narrow", "deep", "shallow", "heavy", "light", "hot", "cold",
    "warm", "safe", "unsafe", "stable", "unstable", "normal", "abnormal",
    "main", "primary", "secondary", "auxiliary", "spare", "extra",
    "additional", "optional", "mandatory", "required", "virtual",
    "physical", "logical", "abstract", "concrete", "generic", "specific",
    "global", "shared", "exclusive", "read-only", "writable", "immutable",
    "mutable", "static", "dynamic", "lazy", "eager", "speculative",
    "preemptive", "recursive", "iterative", "incremental", "cumulative",
    "aggregate", "effective", "actual", "estimated", "expected",
    "unexpected", "configured", "allocated", "reserved", "free", "used",
    "unused", "killed", "finished", "succeeded", "more", "less", "few",
    "many", "much", "several", "single", "multiple", "double", "whole",
    "entire", "overall", "possible", "impossible", "same", "different",
    "similar", "equal", "unequal", "greater", "smaller", "larger",
    "critical", "fatal", "severe", "minor", "major", "important",
    "erroneous", "problematic",
]

ADVERBS = [
    "successfully", "already", "now", "then", "here", "there", "again",
    "still", "yet", "just", "only", "also", "too", "very", "quite",
    "really", "finally", "currently", "previously", "recently", "soon",
    "later", "earlier", "immediately", "eventually", "automatically",
    "manually", "asynchronously", "synchronously", "concurrently",
    "sequentially", "locally", "remotely", "gracefully", "forcefully",
    "cleanly", "properly", "correctly", "incorrectly", "safely",
    "completely", "partially", "fully", "newly", "repeatedly", "once",
    "twice", "down", "up", "out", "off", "away", "back", "forward",
    "ahead", "behind", "together", "apart", "instead", "otherwise",
    "however", "therefore", "thus", "hence", "meanwhile", "moreover",
    "not", "never", "always", "sometimes", "often", "rarely", "usually",
    "normally", "typically", "approximately", "about", "around", "nearly",
    "today", "yesterday", "tomorrow", "tonight",
    "almost", "exactly", "directly", "indirectly", "externally",
    "internally",
]

# True measurement units that follow numeric values ("12 MB", "5 ms").
# A noun phrase headed by one of these is a *value*, never an entity
# (Figure 4 omits "bytes" from the entity list since it is a unit).
MEASURE_UNITS = {
    "b", "kb", "mb", "gb", "tb", "pb", "kib", "mib", "gib", "tib",
    "byte", "bytes", "bit", "bits",
    "ns", "us", "ms", "sec", "secs", "second", "seconds", "min", "mins",
    "minute", "minutes", "hour", "hours", "hr", "hrs", "day", "days",
    "percent", "pct",
    "mb/s", "gb/s", "kb/s", "b/s", "hz", "khz", "mhz", "ghz",
}

# Countable system nouns: after a numeral they act as a count unit
# ("launched 5 tasks" -> value), but on their own they are first-class
# entities ("task 1.0" -> identifier of a task).
COUNT_UNITS = {
    "core", "cores", "vcore", "vcores", "slot", "slots",
    "record", "records", "row", "rows", "task", "tasks", "time", "times",
    "partition", "partitions", "block", "blocks", "file", "files",
    "segment", "segments", "attempt", "attempts", "retry", "retries",
    "node", "nodes", "container", "containers", "executor", "executors",
    "thread", "threads", "connection", "connections", "request",
    "requests", "message", "messages", "event", "events", "item", "items",
    "element", "elements", "entry", "entries", "key", "keys", "value",
    "values", "object", "objects", "chunk", "chunks", "page", "pages",
}

#: Backwards-compatible union used by the value heuristics.
UNITS = MEASURE_UNITS | COUNT_UNITS


# Final-stress verbs that double their consonant despite ending in a
# pattern the generic rule exempts ("commit" -> "committing").
_DOUBLING_OVERRIDES = {
    "commit": ("committing", "committed"),
    "submit": ("submitting", "submitted"),
    "admit": ("admitting", "admitted"),
    "permit": ("permitting", "permitted"),
    "refer": ("referring", "referred"),
    "transfer": ("transferring", "transferred"),
}


def _verb_forms(base: str) -> list[tuple[str, str]]:
    """Expand a base verb into (form, tag) pairs.

    Returned as pairs, not a dict, because irregular verbs can reuse one
    surface form for several slots ("run" is both VB and VBN).
    """
    forms: list[tuple[str, str]] = [(base, "VB")]
    if base in _DOUBLING_OVERRIDES:
        gerund, past = _DOUBLING_OVERRIDES[base]
        forms.extend([
            (base + "s", "VBZ"), (gerund, "VBG"),
            (past, "VBD"), (past, "VBN"),
        ])
        return forms
    # third person singular
    if base.endswith(("s", "sh", "ch", "x", "z", "o")):
        forms.append((base + "es", "VBZ"))
    elif base.endswith("y") and base[-2] not in "aeiou":
        forms.append((base[:-1] + "ies", "VBZ"))
    else:
        forms.append((base + "s", "VBZ"))
    # gerund
    if base.endswith("e") and not base.endswith(("ee", "ye", "oe")):
        gerund = base[:-1] + "ing"
    elif (
        len(base) >= 3
        and base[-1] not in "aeiouwxy"
        and base[-2] in "aeiou"
        and base[-3] not in "aeiou"
        and not base.endswith(("er", "en", "on", "or", "it", "et"))
    ):
        gerund = base + base[-1] + "ing"
    else:
        gerund = base + "ing"
    forms.append((gerund, "VBG"))
    # past / participle
    if base in IRREGULAR_VERBS:
        past, participle = IRREGULAR_VERBS[base]
        forms.append((past, "VBD"))
        forms.append((participle, "VBN"))
    else:
        if base.endswith("e"):
            past = base + "d"
        elif base.endswith("y") and base[-2] not in "aeiou":
            past = base[:-1] + "ied"
        elif (
            len(base) >= 3
            and base[-1] not in "aeiouwxy"
            and base[-2] in "aeiou"
            and base[-3] not in "aeiou"
            and not base.endswith(("er", "en", "on", "or", "it", "et"))
        ):
            past = base + base[-1] + "ed"
        else:
            past = base + "ed"
        forms.append((past, "VBD"))
        forms.append((past, "VBN"))  # regular participle == past form
    return forms


@lru_cache(maxsize=1)
def build_lexicon() -> dict[str, tuple[str, ...]]:
    """Build the word -> ordered candidate tag tuple mapping.

    The first tag in each tuple is the default; contextual rules in the
    tagger may select a later candidate.  All keys are lower-case.
    """
    lex: dict[str, list[str]] = {}

    def add(word: str, tag: str, *, front: bool = False) -> None:
        word = word.lower()
        cands = lex.setdefault(word, [])
        if tag in cands:
            if front:
                cands.remove(tag)
                cands.insert(0, tag)
            return
        if front:
            cands.insert(0, tag)
        else:
            cands.append(tag)

    for word, tag in DETERMINERS.items():
        add(word, tag)
    for word in PREPOSITIONS:
        add(word, "IN")
    add("to", "TO", front=True)
    for word in CONJUNCTIONS:
        add(word, "CC")
    for word, tag in PRONOUNS.items():
        add(word, tag)
    for word in MODALS:
        add(word, "MD")
    for word, tag in WH_WORDS.items():
        add(word, tag)
    for word, tag in EXISTENTIAL.items():
        add(word, tag)
    for word, tag in AUX_VERBS.items():
        add(word, tag, front=True)

    # Nouns first: default reading in log text is nominal.
    for word in NOUN_FIRST:
        add(word, "NN")
        if word.endswith("s") and word not in ("status", "progress",
                                               "process", "class", "acl"):
            pass
    # plural noun forms
    for word in NOUN_FIRST:
        if word.endswith(("s", "sh", "ch", "x", "z")):
            add(word + "es", "NNS")
        elif word.endswith("y") and word[-2:-1] not in ("a", "e", "o", "u"):
            add(word[:-1] + "ies", "NNS")
        else:
            add(word + "s", "NNS")

    # Verb paradigms (appended after noun candidates when words collide).
    for base in BASE_VERBS:
        for form, tag in _verb_forms(base):
            add(form, tag)

    for word in ADJECTIVES:
        add(word, "JJ")
    for word in ADVERBS:
        add(word, "RB")
    add("not", "RB", front=True)
    add("no", "DT", front=True)

    # Comparative/superlative adjectives
    for word in ("more", "less"):
        add(word, "JJR")
    for word in ("most", "least", "best", "worst"):
        add(word, "JJS")
    for word in ("greater", "smaller", "larger", "higher", "lower",
                 "faster", "slower", "longer", "shorter", "older",
                 "newer", "earlier", "later", "fewer"):
        add(word, "JJR", front=True)

    for word in UNITS:
        add(word, "NN")

    return {word: tuple(cands) for word, cands in lex.items()}


def is_unit(word: str) -> bool:
    """True if ``word`` can act as a unit after a numeral (value heuristic 2
    of the paper: "12 MB", "5 ms", but also "8 tasks")."""
    return word.lower() in UNITS


def is_measure_unit(word: str) -> bool:
    """True only for genuine measurement units ("bytes", "ms", "MB").

    Unlike :func:`is_unit` this excludes countable system nouns such as
    "task" or "block", which are entities in their own right.
    """
    return word.lower() in MEASURE_UNITS
