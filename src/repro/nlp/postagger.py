"""Rule-and-lexicon Penn Treebank POS tagger for log text.

The tagger follows the classic two-stage design (lexical assignment followed
by contextual patch rules, after Brill 1992), specialised for the log genre:

* token *kinds* from the log-aware tokenizer pin down numerals (``CD``),
  identifiers and variable fields (``SYM``) and localities before any
  lexical lookup happens;
* unknown open-class words are resolved by morphological suffix rules;
* a small set of contextual rules disambiguates noun/verb homographs that
  are rampant in system logs ("map", "block", "store", "fetch", ...).

IntelLog feeds the tagger a *sample log message* for each log key and copies
the resulting tags back onto the key (paper §3, Figure 3); that logic lives
in :mod:`repro.extraction.pipeline` — this module only tags token sequences.
"""

from __future__ import annotations

from dataclasses import dataclass

from .lexicon import build_lexicon
from .tags import is_adjective, is_noun, is_verb
from .tokenizer import Token, tokenize

_BE_FORMS = frozenset({"be", "am", "is", "are", "was", "were", "been",
                       "being"})
_HAVE_FORMS = frozenset({"have", "has", "had", "having"})

_NOUN_SUFFIXES = (
    "tion", "sion", "ment", "ness", "ance", "ence", "ship", "hood",
    "ism", "ist", "ure", "age", "cy", "ery", "ory",
)
_ADJ_SUFFIXES = (
    "able", "ible", "ous", "ive", "ful", "less", "ish", "ary", "ic",
    "ical", "ual", "ant", "ent",
)


@dataclass(frozen=True, slots=True)
class TaggedToken:
    """A token with its assigned Penn Treebank tag."""

    text: str
    tag: str
    kind: str
    start: int

    @property
    def lower(self) -> str:
        return self.text.lower()


def _is_camel(word: str) -> bool:
    return any(c.isupper() for c in word[1:]) and any(
        c.islower() for c in word
    )


def _lexical_candidates(token: Token) -> tuple[str, ...]:
    """Candidate tags for one token, most likely first."""
    if token.kind == "number":
        return ("CD",)
    if token.kind in ("ident", "star"):
        return ("SYM",)
    if token.kind in ("hostport", "path"):
        return ("SYM",)
    if token.kind == "punct":
        ch = token.text
        if ch in "([{":
            return ("-LRB-",)
        if ch in ")]}":
            return ("-RRB-",)
        if ch in ".!?;":
            return (".",)
        if ch == ",":
            return (",",)
        if ch in ":/\\|=<>@&+~^%'\"`":
            return (":",)
        if ch == "#":
            return ("#",)
        if ch == "$":
            return ("$",)
        return ("SYM",)

    word = token.text
    lexicon = build_lexicon()
    entry = lexicon.get(word.lower())
    if entry:
        return entry

    # Unknown word: morphological back-off.
    lower = word.lower()
    if _is_camel(word):
        return ("NNP",)
    if lower.endswith("ly"):
        return ("RB",)
    if lower.endswith("ing"):
        return ("VBG", "NN")
    if lower.endswith("ed"):
        return ("VBN", "VBD", "JJ")
    for suffix in _ADJ_SUFFIXES:
        if lower.endswith(suffix) and len(lower) > len(suffix) + 2:
            return ("JJ", "NN")
    for suffix in _NOUN_SUFFIXES:
        if lower.endswith(suffix) and len(lower) > len(suffix) + 1:
            return ("NN",)
    if word[0].isupper():
        if lower.endswith("s"):
            return ("NNPS", "NNP")
        return ("NNP",)
    if lower.endswith("s") and len(lower) > 3:
        return ("NNS", "NN", "VBZ")
    return ("NN",)


def _pick(candidates: tuple[str, ...], *preferred: str) -> str | None:
    """Return the first candidate matching any preferred tag prefix."""
    for pref in preferred:
        for cand in candidates:
            if cand == pref or cand.startswith(pref):
                return cand
    return None


def tag_tokens(tokens: list[Token]) -> list[TaggedToken]:
    """Assign a Penn tag to every token with contextual disambiguation."""
    candidate_sets = [_lexical_candidates(tok) for tok in tokens]
    tags: list[str] = [cands[0] for cands in candidate_sets]

    for i, (tok, cands) in enumerate(zip(tokens, candidate_sets)):
        if len(cands) == 1:
            continue
        prev_tag = tags[i - 1] if i > 0 else None
        prev_word = tokens[i - 1].text.lower() if i > 0 else None
        next_cands = candidate_sets[i + 1] if i + 1 < len(tokens) else ()

        chosen: str | None = None

        # Rule 1: after "to" use the base verb reading if one exists.
        if prev_tag == "TO":
            chosen = _pick(cands, "VB")
        # Rule 2: after a modal use the base verb reading.
        elif prev_tag == "MD":
            chosen = _pick(cands, "VB")
        # Rule 3: after a form of "be", prefer gerund/participle/adjective.
        elif prev_word in _BE_FORMS:
            chosen = _pick(cands, "VBG", "VBN", "JJ")
        # Rule 4: after a form of "have", prefer past participle.
        elif prev_word in _HAVE_FORMS:
            chosen = _pick(cands, "VBN")
        # Rule 5: after a determiner/adjective/possessive the word is
        # nominal ("the map output", "a failed fetch").
        elif prev_tag is not None and (
            prev_tag in ("DT", "PDT", "PRP$") or is_adjective(prev_tag)
        ):
            chosen = _pick(cands, "NN", "JJ")
        # Rule 6: after a preposition the head is nominal
        # ("of map output", "for attempt").
        elif prev_tag in ("IN",):
            chosen = _pick(cands, "NN", "JJ", "CD")
        # Rule 7: noun-noun compounds — if the next token is clearly nominal
        # and this word could be a noun, keep the noun reading
        # ("map(NN) output", "event(NN) fetcher").
        elif _pick(cands, "NN") and next_cands and all(
            is_noun(c) for c in next_cands[:1]
        ):
            chosen = _pick(cands, "NN")
        # Rule 8: sentence-initial gerunds/participles are verbal in logs
        # ("Starting ...", "Registered ...") — but a word whose primary
        # reading is nominal ("Block ...") keeps it.
        elif i == 0:
            chosen = _pick(cands, "VBG", "VBN") or cands[0]
        # Rule 9: a VBZ candidate after a nominal subject is the predicate
        # ("fetcher reads ...", "driver requested ...").
        elif prev_tag is not None and (
            is_noun(prev_tag) or prev_tag in ("SYM", "CD", "PRP")
        ):
            chosen = _pick(cands, "VBZ", "VBD", "VBP", "VBN", "VBG")

        if chosen:
            tags[i] = chosen

    return [
        TaggedToken(tok.text, tag, tok.kind, tok.start)
        for tok, tag in zip(tokens, tags)
    ]


def tag(text: str) -> list[TaggedToken]:
    """Tokenize and POS-tag ``text``."""
    return tag_tokens(tokenize(text))


def is_verbal(tagged: TaggedToken) -> bool:
    """True if the token carries a verb tag."""
    return is_verb(tagged.tag)
