"""Per-tenant state: spec, bounded ingest queue, and the tenant handle.

A *tenant* is one log stream detected against one leased model version.
:class:`Tenant` owns everything the single-stream runtime owned —
:class:`~repro.stream.SessionTracker`, streaming detector, breaker,
quarantine, outbox, checkpoint — by simply *embedding* a
:class:`~repro.stream.StreamRuntime` per tenant; what the service layer
adds on top is

* a :class:`BoundedQueueSource` between the tenant's real source and
  its runtime, so a slow tenant sheds its *oldest* queued records
  (counted, surfaced in ``/tenants``) instead of growing without bound
  or stalling the poller;
* a tenant-namespaced checkpoint file
  (:func:`~repro.stream.checkpoint.default_checkpoint_path` with the
  tenant id), so tenants sharing one model artifact never clobber each
  other's state;
* a private :class:`~repro.obs.MetricsRegistry` per tenant, keeping the
  runtime's metric semantics identical to a standalone ``repro watch``
  (the fleet view re-labels per-tenant gauges separately);
* a ``pending lease`` slot for atomic model swaps: the control plane
  parks the new lease, and the scheduler applies it *between* quanta —
  every session is finalized wholly under one model version.

Each tenant is pumped by at most one scheduler thread at a time (the
service guarantees this), so tenant internals need no locking of their
own; the single ``_lock`` here guards only the fields the control-plane
thread touches concurrently with the pump (pending lease, failure
note).
"""

from __future__ import annotations

import logging
import threading
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

from ..obs import MetricsRegistry
from ..stream.checkpoint import default_checkpoint_path
from ..stream.detector import StreamingDetector
from ..stream.runtime import StreamRuntime
from ..stream.sink import ReportSink
from ..stream.source import LogSource
from ..stream.tracker import (
    SessionTracker,
    TrackerConfig,
    _record_from_dict,
    _record_to_dict,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.config import ResilienceConfig
    from .registry import LeasedModel

__all__ = ["BoundedQueueSource", "Tenant", "TenantSpec"]

log = logging.getLogger(__name__)


@dataclass(slots=True)
class TenantSpec:
    """Declarative description of one tenant (one tenants-file entry)."""

    tenant_id: str
    #: Model reference: registry name, optionally pinned ``name@version``.
    model: str
    version: int | None = None
    #: Log file to follow (optional: tests attach sources directly).
    log_path: str | None = None
    formatter: str = "generic"
    #: Reports file (JSON lines); None keeps reports in memory.
    reports_path: str | None = None
    #: Tracker tunables (None = stream defaults).
    idle_timeout: float | None = None
    max_open_sessions: int | None = None

    def tracker_config(self) -> TrackerConfig:
        config = TrackerConfig()
        if self.idle_timeout is not None:
            config.idle_timeout = self.idle_timeout
        if self.max_open_sessions is not None:
            config.max_open_sessions = self.max_open_sessions
        return config

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TenantSpec":
        tenant_id = str(data.get("id", "") or data.get("tenant_id", ""))
        if not tenant_id:
            raise ValueError("tenant entry missing 'id'")
        model = str(data.get("model", ""))
        if not model:
            raise ValueError(f"tenant {tenant_id!r} missing 'model'")
        version: int | None = None
        if "@" in model:
            model, _, tail = model.partition("@")
            version = int(tail)
        if data.get("version") is not None:
            version = int(data["version"])
        spec = cls(
            tenant_id=tenant_id,
            model=model,
            version=version,
            log_path=(
                str(data["log"]) if data.get("log") is not None else None
            ),
            formatter=str(data.get("formatter", "generic")),
            reports_path=(
                str(data["reports"])
                if data.get("reports") is not None else None
            ),
        )
        if data.get("idle_timeout") is not None:
            spec.idle_timeout = float(data["idle_timeout"])
        if data.get("max_open_sessions") is not None:
            spec.max_open_sessions = int(data["max_open_sessions"])
        return spec


class BoundedQueueSource:
    """Backpressure adapter between a tenant's source and its runtime.

    ``poll`` refills from the inner source in large gulps
    (``ingest_batch``) and hands out at most the asked-for records from
    a bounded deque.  When the deque would exceed ``capacity`` the
    *oldest* queued records are shed (newest data wins — stale records
    would close sessions late anyway) and counted in :attr:`shed`.

    The queue participates in checkpoints: ``position()`` embeds the
    inner source's position plus every queued-but-unprocessed record,
    so a restart neither drops nor re-reads them.  Inner-source
    ``OSError``s propagate to the runtime's retry/breaker machinery
    untouched.  Single-threaded per tenant by construction (the service
    never pumps one tenant from two workers), so no locking here.
    """

    def __init__(
        self,
        inner: LogSource,
        capacity: int = 8192,
        ingest_batch: int = 1024,
    ) -> None:
        self.inner = inner
        self.capacity = max(1, capacity)
        self.ingest_batch = max(1, ingest_batch)
        self._queue: deque = deque()
        self.shed = 0

    def _refill(self) -> None:
        if len(self._queue) >= self.capacity:
            return
        batch = self.inner.poll(self.ingest_batch)
        if batch:
            self._queue.extend(batch)
        while len(self._queue) > self.capacity:
            self._queue.popleft()
            self.shed += 1

    def poll(self, max_records: int) -> list:
        self._refill()
        out = []
        while self._queue and len(out) < max_records:
            out.append(self._queue.popleft())
        return out

    def flush_pending(self) -> list:
        flush = getattr(self.inner, "flush_pending", None)
        if flush is None:
            return []
        batch = flush()
        if batch:
            self._queue.extend(batch)
            out = []
            while self._queue:
                out.append(self._queue.popleft())
            return out
        return []

    def finalize(self) -> list:
        out = list(self._queue)
        self._queue.clear()
        finalize = getattr(self.inner, "finalize", None)
        if finalize is not None:
            out.extend(finalize())
        return out

    def exhausted(self) -> bool:
        return not self._queue and self.inner.exhausted()

    def backlog(self) -> int | None:
        inner = self.inner.backlog()
        if inner is None:
            return len(self._queue) or None
        return inner + len(self._queue)

    def position(self) -> dict[str, Any]:
        return {
            "kind": "bounded_queue",
            "inner": self.inner.position(),
            "queued": [_record_to_dict(r) for r in self._queue],
            "shed": self.shed,
        }

    def seek(self, position: dict[str, Any]) -> None:
        if position.get("kind") != "bounded_queue":
            # Pre-serve checkpoint (plain inner position): delegate.
            self.inner.seek(position)
            self._queue.clear()
            return
        self.inner.seek(dict(position.get("inner", {})))
        self._queue = deque(
            _record_from_dict(r) for r in position.get("queued", ())
        )
        self.shed = int(position.get("shed", 0))

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def __getattr__(self, name: str):
        # Pass through informational attributes (quarantine, rotations,
        # truncations, io_errors, ...) so RuntimeStats sees the real
        # source's counters.
        return getattr(self.inner, name)


@dataclass(slots=True)
class _Shared:
    """Fields touched by both the pump and the control plane."""

    pending_lease: "LeasedModel | None" = None
    detached: bool = False
    failure: str | None = None


class Tenant:
    """One attached tenant: leased model + embedded stream runtime."""

    def __init__(
        self,
        spec: TenantSpec,
        lease: "LeasedModel",
        source: LogSource,
        sink: ReportSink,
        checkpoint_dir: str | Path | None = None,
        queue_capacity: int = 8192,
        ingest_batch: int = 1024,
        resilience: "ResilienceConfig | None" = None,
    ) -> None:
        self.spec = spec
        self.tenant_id = spec.tenant_id
        self.lease = lease
        self.queue = BoundedQueueSource(
            source, capacity=queue_capacity, ingest_batch=ingest_batch
        )
        self.registry = MetricsRegistry()
        checkpoint_path = None
        if checkpoint_dir is not None:
            checkpoint_dir = Path(checkpoint_dir)
            checkpoint_dir.mkdir(parents=True, exist_ok=True)
            checkpoint_path = default_checkpoint_path(
                checkpoint_dir / "model.json", spec.tenant_id
            )
        self.runtime = StreamRuntime(
            lease.detector_view(),
            source=self.queue,
            sink=sink,
            tracker=SessionTracker(spec.tracker_config()),
            checkpoint_path=checkpoint_path,
            registry=self.registry,
            resilience=resilience,
        )
        self._lock = threading.Lock()
        self._shared = _Shared()
        #: Model swaps applied (pump-side only).
        self.swaps = 0

    # -- control plane (any thread) ---------------------------------------

    def request_swap(self, lease: "LeasedModel") -> None:
        """Park a new lease; the pump applies it between quanta."""
        with self._lock:
            previous, self._shared.pending_lease = (
                self._shared.pending_lease, lease
            )
        if previous is not None:
            # Two swaps raced before a quantum ran; only the newest
            # target matters, drop the superseded lease.
            previous.release()

    def request_detach(self) -> None:
        with self._lock:
            self._shared.detached = True

    @property
    def detach_requested(self) -> bool:
        with self._lock:
            return self._shared.detached

    @property
    def failure(self) -> str | None:
        with self._lock:
            return self._shared.failure

    def mark_failed(self, why: str) -> None:
        with self._lock:
            self._shared.failure = why

    # -- pump side (one worker at a time) ----------------------------------

    def apply_pending_swap(self) -> bool:
        """Install a parked lease, if any.  Runs between quanta only.

        The runtime's source position and tracker state are untouched —
        no record is lost — and the detector is replaced wholesale, so
        every report is finalized entirely under one model version.
        """
        with self._lock:
            lease, self._shared.pending_lease = (
                self._shared.pending_lease, None
            )
        if lease is None:
            return False
        old = self.lease
        detector = lease.detector_view()
        detector.instrument(self.registry)
        self.runtime.detector = StreamingDetector(detector)
        self.lease = lease
        self.swaps += 1
        old.release()
        log.info(
            "tenant %s swapped %s -> %s",
            self.tenant_id, old.ref, lease.ref,
        )
        return True

    def pump(self, quantum: int) -> int:
        """One scheduling turn: apply swaps, then one runtime step."""
        self.apply_pending_swap()
        return self.runtime.step(max_records=quantum)

    def finish(self) -> None:
        """Flush everything (detach / drain epilogue)."""
        self.apply_pending_swap()
        self.runtime.finish()

    def close(self) -> None:
        self.lease.release()
        with self._lock:
            pending, self._shared.pending_lease = (
                self._shared.pending_lease, None
            )
        if pending is not None:
            pending.release()

    # -- introspection -----------------------------------------------------

    @property
    def open_sessions(self) -> int:
        return self.runtime.tracker.open_count

    def status(self) -> dict[str, Any]:
        stats = self.runtime.stats
        return {
            "tenant": self.tenant_id,
            "model": self.lease.ref,
            "digest": self.lease.digest,
            "health": stats.health,
            "failure": self.failure or stats.failure,
            "records": stats.records,
            "reports": stats.reports,
            "anomalous_sessions": stats.anomalous_sessions,
            "open_sessions": stats.open_sessions,
            "evictions": stats.evictions,
            "queue_depth": self.queue.queue_depth,
            "shed_records": self.queue.shed,
            "swaps": self.swaps,
            "undelivered_reports": stats.undelivered_reports,
        }
