"""Per-tenant state: spec, bounded ingest queue, and the tenant handle.

A *tenant* is one log stream detected against one leased model version.
:class:`Tenant` owns everything the single-stream runtime owned —
:class:`~repro.stream.SessionTracker`, streaming detector, breaker,
quarantine, outbox, checkpoint — by simply *embedding* a
:class:`~repro.stream.StreamRuntime` per tenant; what the service layer
adds on top is

* a :class:`BoundedQueueSource` between the tenant's real source and
  its runtime, so a slow tenant sheds its *oldest* queued records
  (counted, surfaced in ``/tenants``) instead of growing without bound
  or stalling the poller;
* a tenant-namespaced checkpoint file
  (:func:`~repro.stream.checkpoint.default_checkpoint_path` with the
  tenant id), so tenants sharing one model artifact never clobber each
  other's state;
* a private :class:`~repro.obs.MetricsRegistry` per tenant, keeping the
  runtime's metric semantics identical to a standalone ``repro watch``
  (the fleet view re-labels per-tenant gauges separately);
* a ``pending lease`` slot for atomic model swaps: the control plane
  parks the new lease, and the scheduler applies it *between* quanta —
  every session is finalized wholly under one model version.

Each tenant is pumped by at most one scheduler thread at a time (the
service guarantees this), so tenant internals need no locking of their
own; the single ``_lock`` here guards only the fields the control-plane
thread touches concurrently with the pump (pending lease, failure
note).
"""

from __future__ import annotations

import logging
import threading
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

import json

from ..core.fsio import REAL_FS, FileSystem
from ..core.killpoints import kill_point
from ..obs import MetricsRegistry
from ..stream.checkpoint import default_checkpoint_path
from ..stream.detector import StreamingDetector
from ..stream.runtime import StreamRuntime
from ..stream.sink import ReportSink
from ..stream.source import LogSource
from ..stream.tracker import (
    SessionTracker,
    TrackerConfig,
    _record_from_dict,
    _record_to_dict,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.config import DurabilityConfig, ResilienceConfig
    from .registry import LeasedModel

__all__ = ["BoundedQueueSource", "Tenant", "TenantSpec"]

log = logging.getLogger(__name__)


@dataclass(slots=True)
class TenantSpec:
    """Declarative description of one tenant (one tenants-file entry)."""

    tenant_id: str
    #: Model reference: registry name, optionally pinned ``name@version``.
    model: str
    version: int | None = None
    #: Log file to follow (optional: tests attach sources directly).
    log_path: str | None = None
    formatter: str = "generic"
    #: Reports file (JSON lines); None keeps reports in memory.
    reports_path: str | None = None
    #: Tracker tunables (None = stream defaults).
    idle_timeout: float | None = None
    max_open_sessions: int | None = None

    def tracker_config(self) -> TrackerConfig:
        config = TrackerConfig()
        if self.idle_timeout is not None:
            config.idle_timeout = self.idle_timeout
        if self.max_open_sessions is not None:
            config.max_open_sessions = self.max_open_sessions
        return config

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TenantSpec":
        tenant_id = str(data.get("id", "") or data.get("tenant_id", ""))
        if not tenant_id:
            raise ValueError("tenant entry missing 'id'")
        model = str(data.get("model", ""))
        if not model:
            raise ValueError(f"tenant {tenant_id!r} missing 'model'")
        version: int | None = None
        if "@" in model:
            model, _, tail = model.partition("@")
            version = int(tail)
        if data.get("version") is not None:
            version = int(data["version"])
        spec = cls(
            tenant_id=tenant_id,
            model=model,
            version=version,
            log_path=(
                str(data["log"]) if data.get("log") is not None else None
            ),
            formatter=str(data.get("formatter", "generic")),
            reports_path=(
                str(data["reports"])
                if data.get("reports") is not None else None
            ),
        )
        if data.get("idle_timeout") is not None:
            spec.idle_timeout = float(data["idle_timeout"])
        if data.get("max_open_sessions") is not None:
            spec.max_open_sessions = int(data["max_open_sessions"])
        return spec


class BoundedQueueSource:
    """Backpressure adapter between a tenant's source and its runtime.

    ``poll`` refills from the inner source in large gulps
    (``ingest_batch``) and hands out at most the asked-for records from
    a bounded deque.  When the deque would exceed ``capacity`` the
    *oldest* queued records are shed (newest data wins — stale records
    would close sessions late anyway) and counted in :attr:`shed`.

    The queue participates in checkpoints: ``position()`` embeds the
    inner source's position plus every queued-but-unprocessed record,
    so a restart neither drops nor re-reads them.  Inner-source
    ``OSError``s propagate to the runtime's retry/breaker machinery
    untouched.  Single-threaded per tenant by construction (the service
    never pumps one tenant from two workers), so no locking here.
    """

    def __init__(
        self,
        inner: LogSource,
        capacity: int = 8192,
        ingest_batch: int = 1024,
    ) -> None:
        self.inner = inner
        self.capacity = max(1, capacity)
        self.ingest_batch = max(1, ingest_batch)
        self._queue: deque = deque()
        self.shed = 0

    def _refill(self) -> None:
        if len(self._queue) >= self.capacity:
            return
        batch = self.inner.poll(self.ingest_batch)
        if batch:
            self._queue.extend(batch)
        while len(self._queue) > self.capacity:
            self._queue.popleft()
            self.shed += 1

    def poll(self, max_records: int) -> list:
        self._refill()
        out = []
        while self._queue and len(out) < max_records:
            out.append(self._queue.popleft())
        return out

    def flush_pending(self) -> list:
        flush = getattr(self.inner, "flush_pending", None)
        if flush is None:
            return []
        batch = flush()
        if batch:
            self._queue.extend(batch)
            out = []
            while self._queue:
                out.append(self._queue.popleft())
            return out
        return []

    def finalize(self) -> list:
        out = list(self._queue)
        self._queue.clear()
        finalize = getattr(self.inner, "finalize", None)
        if finalize is not None:
            out.extend(finalize())
        return out

    def exhausted(self) -> bool:
        return not self._queue and self.inner.exhausted()

    def backlog(self) -> int | None:
        inner = self.inner.backlog()
        if inner is None:
            return len(self._queue) or None
        return inner + len(self._queue)

    def position(self) -> dict[str, Any]:
        return {
            "kind": "bounded_queue",
            "inner": self.inner.position(),
            "queued": [_record_to_dict(r) for r in self._queue],
            "shed": self.shed,
        }

    def seek(self, position: dict[str, Any]) -> None:
        if position.get("kind") != "bounded_queue":
            # Pre-serve checkpoint (plain inner position): delegate.
            self.inner.seek(position)
            self._queue.clear()
            return
        self.inner.seek(dict(position.get("inner", {})))
        self._queue = deque(
            _record_from_dict(r) for r in position.get("queued", ())
        )
        self.shed = int(position.get("shed", 0))

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def __getattr__(self, name: str):
        # Pass through informational attributes (quarantine, rotations,
        # truncations, io_errors, ...) so RuntimeStats sees the real
        # source's counters.
        return getattr(self.inner, name)


@dataclass(slots=True)
class _Shared:
    """Fields touched by both the pump and the control plane."""

    pending_lease: "LeasedModel | None" = None
    detached: bool = False
    failure: str | None = None
    #: Traceback tail of the failure (why, not just what).
    failure_trace: str | None = None
    #: Permanent parking reason once the restart budget is exhausted.
    quarantined: str | None = None
    quarantine_trace: str | None = None


class Tenant:
    """One attached tenant: leased model + embedded stream runtime."""

    def __init__(
        self,
        spec: TenantSpec,
        lease: "LeasedModel",
        source: LogSource,
        sink: ReportSink,
        checkpoint_dir: str | Path | None = None,
        queue_capacity: int = 8192,
        ingest_batch: int = 1024,
        resilience: "ResilienceConfig | None" = None,
        durability: "DurabilityConfig | None" = None,
        fs: FileSystem | None = None,
    ) -> None:
        self.spec = spec
        self.tenant_id = spec.tenant_id
        self.lease = lease
        self.queue = BoundedQueueSource(
            source, capacity=queue_capacity, ingest_batch=ingest_batch
        )
        self.registry = MetricsRegistry()
        checkpoint_path = None
        if checkpoint_dir is not None:
            checkpoint_dir = Path(checkpoint_dir)
            checkpoint_dir.mkdir(parents=True, exist_ok=True)
            checkpoint_path = default_checkpoint_path(
                checkpoint_dir / "model.json", spec.tenant_id
            )
        # Kept for supervisor restarts (rebuild from checkpoint) and
        # the journaled swap path.
        self._sink = sink
        self._checkpoint_path = checkpoint_path
        self._resilience = resilience
        self._durability = durability
        self._fs = fs or REAL_FS
        self.runtime = self._build_runtime()
        self._lock = threading.Lock()
        self._shared = _Shared()
        #: Model swaps applied (pump-side only).
        self.swaps = 0
        #: Supervisor restarts applied to this tenant handle.
        self.restarts = 0

    def _build_runtime(self) -> StreamRuntime:
        """A fresh runtime over the current lease, queue and sink.

        When a checkpoint path is set the constructor auto-resumes:
        source position (including queued-but-unprocessed records),
        tracker state, cumulative counters, the exactly-once ledger and
        the outbox all come back — which is exactly what a supervisor
        restart needs.
        """
        return StreamRuntime(
            self.lease.detector_view(),
            source=self.queue,
            sink=self._sink,
            tracker=SessionTracker(self.spec.tracker_config()),
            checkpoint_path=self._checkpoint_path,
            registry=self.registry,
            resilience=self._resilience,
            durability=self._durability,
            fs=self._fs,
        )

    # -- control plane (any thread) ---------------------------------------

    def request_swap(self, lease: "LeasedModel") -> None:
        """Park a new lease; the pump applies it between quanta."""
        with self._lock:
            previous, self._shared.pending_lease = (
                self._shared.pending_lease, lease
            )
        if previous is not None:
            # Two swaps raced before a quantum ran; only the newest
            # target matters, drop the superseded lease.
            previous.release()

    def request_detach(self) -> None:
        with self._lock:
            self._shared.detached = True

    @property
    def detach_requested(self) -> bool:
        with self._lock:
            return self._shared.detached

    @property
    def swap_pending(self) -> bool:
        """True while a requested swap is parked but not yet applied."""
        with self._lock:
            return self._shared.pending_lease is not None

    @property
    def failure(self) -> str | None:
        with self._lock:
            return self._shared.failure

    @property
    def failure_trace(self) -> str | None:
        with self._lock:
            return self._shared.failure_trace

    @property
    def quarantined(self) -> str | None:
        with self._lock:
            return self._shared.quarantined

    @property
    def quarantine_trace(self) -> str | None:
        with self._lock:
            return self._shared.quarantine_trace

    def mark_failed(self, why: str, trace: str | None = None) -> None:
        with self._lock:
            self._shared.failure = why
            self._shared.failure_trace = trace

    def mark_quarantined(
        self, reason: str, trace: str | None = None
    ) -> None:
        """Permanent parking: restart budget exhausted (or policy says
        never restart).  Cleared only by detach or a changed spec."""
        with self._lock:
            self._shared.quarantined = reason
            self._shared.quarantine_trace = trace

    # -- supervisor side (sweep loop, between pump barriers) ---------------

    def restart(self) -> None:
        """Bring a failed tenant back: clear the failure note and give
        it a healthy runtime.

        Tenants with a durable checkpoint on disk get a full rebuild —
        the fresh runtime resumes from it (plus the sink's own delivery
        log), exactly like a process crash-restart: records since the
        checkpoint replay and reports dedupe through the exactly-once
        ledger.  The possibly-poisoned in-memory state of the dead
        runtime is deliberately *not* checkpointed first — the failure
        may have left it mid-record.  Tenants with no checkpoint yet
        keep their in-memory runtime (a rebuild would lose every open
        session) and only have their breaker/health reset.
        """
        with self._lock:
            self._shared.failure = None
            self._shared.failure_trace = None
        ckpt = self._checkpoint_path
        has_durable = ckpt is not None and (
            ckpt.exists()
            or ckpt.with_name(ckpt.name + ".bak").exists()
        )
        if has_durable:
            self.runtime = self._build_runtime()
        else:
            self.runtime.reset_health()
        self.restarts += 1

    # -- pump side (one worker at a time) ----------------------------------

    def _swap_intent_path(self) -> Path | None:
        if self._checkpoint_path is None:
            return None
        name = self._checkpoint_path.name
        if name.endswith(".stream-ckpt.json"):
            name = name[: -len(".stream-ckpt.json")]
        return self._checkpoint_path.with_name(
            name + ".swap-intent.json"
        )

    def apply_pending_swap(self) -> bool:
        """Install a parked lease, if any.  Runs between quanta only.

        The runtime's source position and tracker state are untouched —
        no record is lost — and the detector is replaced wholesale, so
        every report is finalized entirely under one model version.

        For checkpointed tenants the swap is journaled: a *swap intent*
        is written first, the checkpoint is rewritten under the new
        model once the lease is installed, and the intent is cleared
        last.  A crash anywhere in between is recoverable — a restarted
        tenant leases whatever its spec (the control plane) says, the
        checkpoint carries the stream state forward, and a leftover
        intent only tells fsck that a swap was in flight and may need
        re-issuing (recovery never replays one on its own).
        """
        with self._lock:
            lease, self._shared.pending_lease = (
                self._shared.pending_lease, None
            )
        if lease is None:
            return False
        old = self.lease
        intent = self._swap_intent_path()
        if intent is not None:
            try:
                self._fs.write_text(intent, json.dumps({
                    "op": "swap",
                    "tenant": self.tenant_id,
                    "from": old.ref,
                    "to": lease.ref,
                    "to_digest": lease.digest,
                }, sort_keys=True))
                durability = self._durability
                if durability is not None and durability.fsync_index:
                    self._fs.fsync_file(intent)
            except OSError as exc:
                # Journal is advisory; a full disk must not veto the
                # swap (the checkpoint still records the outcome).
                log.warning(
                    "tenant %s: swap intent not journaled: %s",
                    self.tenant_id, exc,
                )
                intent = None
            kill_point("swap.intent")
        detector = lease.detector_view()
        detector.instrument(self.registry)
        self.runtime.detector = StreamingDetector(detector)
        self.lease = lease
        self.swaps += 1
        old.release()
        if self._checkpoint_path is not None:
            # Make the swap durable: the checkpoint written under the
            # new model is the commit point a restart observes.
            self.runtime.checkpoint()
            kill_point("swap.applied")
        if intent is not None:
            try:
                self._fs.remove(intent)
            except OSError as exc:  # pragma: no cover - disk flaking
                log.warning(
                    "tenant %s: swap intent not cleared (%s); fsck will",
                    self.tenant_id, exc,
                )
        log.info(
            "tenant %s swapped %s -> %s",
            self.tenant_id, old.ref, lease.ref,
        )
        return True

    def pump(self, quantum: int) -> int:
        """One scheduling turn: apply swaps, then one runtime step."""
        self.apply_pending_swap()
        return self.runtime.step(max_records=quantum)

    def finish(self) -> None:
        """Flush everything (detach / drain epilogue)."""
        self.apply_pending_swap()
        self.runtime.finish()

    def close(self) -> None:
        self.lease.release()
        with self._lock:
            pending, self._shared.pending_lease = (
                self._shared.pending_lease, None
            )
        if pending is not None:
            pending.release()

    # -- introspection -----------------------------------------------------

    @property
    def open_sessions(self) -> int:
        return self.runtime.tracker.open_count

    def _match_paths(self) -> dict[str, int]:
        """Per-tenant ``spell_index_hits_total`` by path (exact/lcs/miss).

        Reads this tenant's private registry, so the counts describe
        exactly this stream's traffic: a tenant whose ``lcs`` or
        ``miss`` share grows is drifting away from its leased model.
        """
        metric = self.registry.get("spell_index_hits_total")
        if metric is None:
            return {}
        return {
            labels["path"]: int(value)
            for labels, value in metric.samples()
            if "path" in labels
        }

    def status(self) -> dict[str, Any]:
        stats = self.runtime.stats
        return {
            "tenant": self.tenant_id,
            "model": self.lease.ref,
            "digest": self.lease.digest,
            "health": (
                "quarantined" if self.quarantined is not None
                else stats.health
            ),
            "failure": self.quarantined
            or self.failure
            or stats.failure,
            "failure_trace": self.quarantine_trace
            or self.failure_trace,
            "restarts": self.restarts,
            "deferred_checkpoints": stats.deferred_checkpoints,
            "records": stats.records,
            "reports": stats.reports,
            "anomalous_sessions": stats.anomalous_sessions,
            "open_sessions": stats.open_sessions,
            "evictions": stats.evictions,
            "queue_depth": self.queue.queue_depth,
            "shed_records": self.queue.shed,
            "swaps": self.swaps,
            "undelivered_reports": stats.undelivered_reports,
            "match_paths": self._match_paths(),
        }
