"""Offline consistency check & repair for a model-registry directory.

:class:`RegistryFsck` is the recovery half of the registry's journaled
publish protocol (see :mod:`repro.serve.registry`): publish writes an
*intent* record, then the artifact, then the index entry, then clears
the intent — so after a crash the on-disk state tells fsck exactly how
far the dead publisher got, and every state has a deterministic repair:

=====================  ==============================================
on-disk state          repair
=====================  ==============================================
intent + index entry   publish finished — clear the intent
intent + verified      roll **forward**: append the version the dead
artifact, no entry     publisher was about to write, clear the intent
intent, artifact       roll **back**: reclaim the intent and any
missing or torn        partial bytes — the publish never happened
torn intent            reclaim it (the journal write itself died)
orphan artifact        unreferenced, no intent — the pre-journal
                       crash legacy; reclaim the file
dangling version       index entry whose artifact is missing/torn —
                       drop the entry (loudly: model bytes are gone)
stray ``.tmp``         reclaim (atomic-write temp siblings)
=====================  ==============================================

A corrupt ``index.json`` is reported but never auto-repaired, and it
disables the orphan sweep for that run — with no index, "unreferenced"
cannot be distinguished from "referenced", and fsck must never delete
model bytes it cannot prove are garbage.

With a ``checkpoint_dir`` the sweep also covers the serving layer's
checkpoint directory: stray checkpoint temp files and leftover
*swap intents* (a tenant crashed mid-model-swap; the checkpoint already
decides which model version won, so the intent is cleared with a note).

Exposed as ``repro fsck [--repair]`` and run automatically at service
startup (:class:`~repro.serve.service.DetectionService`).  Single
writer assumed: run it before serving/publishing, never concurrently
with a live publisher.
"""

from __future__ import annotations

import hashlib
import json
import logging
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..core.fsio import REAL_FS, FileSystem, atomic_replace_write
from .registry import INDEX_FORMAT

__all__ = ["Finding", "FsckReport", "RegistryFsck", "run_fsck"]

log = logging.getLogger(__name__)

#: Finding kinds fsck knows how to repair automatically.
REPAIRABLE = (
    "intent_complete",
    "intent_rollforward",
    "intent_rollback",
    "intent_torn",
    "orphan_artifact",
    "dangling_version",
    "torn_artifact",
    "stray_tmp",
    "checkpoint_stray_tmp",
    "swap_intent",
)


@dataclass(slots=True)
class Finding:
    """One inconsistency, what it means, and what repair did about it."""

    kind: str
    path: str
    detail: str
    repaired: bool = False
    action: str | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "path": self.path,
            "detail": self.detail,
            "repaired": self.repaired,
            "action": self.action,
        }


@dataclass(slots=True)
class FsckReport:
    """Everything one fsck run found (and, with repair, fixed)."""

    root: str
    findings: list[Finding] = field(default_factory=list)
    repair: bool = False

    @property
    def clean(self) -> bool:
        """No findings at all — the registry was consistent."""
        return not self.findings

    @property
    def remaining(self) -> list[Finding]:
        """Findings still unresolved after this run."""
        return [f for f in self.findings if not f.repaired]

    @property
    def ok(self) -> bool:
        """Safe to serve: nothing found, or everything repaired."""
        return not self.remaining

    def to_dict(self) -> dict[str, Any]:
        return {
            "root": self.root,
            "repair": self.repair,
            "clean": self.clean,
            "ok": self.ok,
            "findings": [f.to_dict() for f in self.findings],
        }

    def render(self) -> str:
        if self.clean:
            return f"fsck {self.root}: clean"
        lines = [
            f"fsck {self.root}: {len(self.findings)} finding(s)"
            + (" (repair mode)" if self.repair else " (scan only)")
        ]
        for f in self.findings:
            status = (
                f"repaired: {f.action}" if f.repaired else "NOT repaired"
            )
            lines.append(f"  [{f.kind}] {f.path}: {f.detail} — {status}")
        return "\n".join(lines)


class RegistryFsck:
    """Detect and repair crash damage in a registry directory tree."""

    def __init__(
        self,
        root: str | Path,
        checkpoint_dir: str | Path | None = None,
        fs: FileSystem | None = None,
    ) -> None:
        self.root = Path(root)
        self.artifacts_dir = self.root / "artifacts"
        self.intents_dir = self.root / "intents"
        self.index_path = self.root / "index.json"
        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.fs = fs or REAL_FS

    def scan(self) -> FsckReport:
        """Report inconsistencies without touching anything."""
        return self._run(repair=False)

    def repair(self) -> FsckReport:
        """Report and fix every automatically-repairable finding."""
        return self._run(repair=True)

    # -- sweep -------------------------------------------------------------

    def _run(self, repair: bool) -> FsckReport:
        report = FsckReport(root=str(self.root), repair=repair)
        index, index_ok = self._load_index(report)
        index_dirty = False
        if index_ok:
            index_dirty |= self._check_intents(report, index, repair)
            index_dirty |= self._check_versions(report, index, repair)
            self._check_orphans(report, index, repair)
        else:
            # Without a readable index fsck cannot prove any artifact
            # is unreferenced; only clearly-dead journal entries and
            # temp files are safe to touch.
            self._check_intents_conservative(report, repair)
        self._check_strays(report, repair)
        if self.checkpoint_dir is not None:
            self._check_checkpoints(report, repair)
        if repair and index_ok and index_dirty:
            self._write_index(index)
        for f in report.findings:
            level = logging.WARNING if f.repaired else logging.ERROR
            log.log(
                level, "fsck [%s] %s: %s%s",
                f.kind, f.path, f.detail,
                f" (repaired: {f.action})" if f.repaired else "",
            )
        return report

    # -- index -------------------------------------------------------------

    def _load_index(
        self, report: FsckReport
    ) -> tuple[dict[str, list[dict]], bool]:
        if not self.index_path.exists():
            return {}, True
        try:
            data = json.loads(self.fs.read_text(self.index_path))
            if data.get("format") != INDEX_FORMAT:
                raise ValueError(
                    f"format {data.get('format')!r}, "
                    f"expected {INDEX_FORMAT!r}"
                )
            index: dict[str, list[dict]] = {}
            for name, entries in data.get("models", {}).items():
                parsed = [
                    {
                        "version": int(e["version"]),
                        "digest": str(e["digest"]),
                    }
                    for e in entries
                ]
                parsed.sort(key=lambda e: e["version"])
                index[str(name)] = parsed
            return index, True
        except (OSError, ValueError, KeyError, TypeError) as exc:
            report.findings.append(Finding(
                kind="index_corrupt",
                path=str(self.index_path),
                detail=(
                    f"index unreadable ({exc}); not auto-repaired — "
                    f"restore it or rebuild from artifacts by hand"
                ),
            ))
            return {}, False

    def _write_index(self, index: dict[str, list[dict]]) -> None:
        payload = json.dumps(
            {"format": INDEX_FORMAT, "models": index},
            indent=2,
            sort_keys=True,
        )
        atomic_replace_write(
            self.index_path, payload, fs=self.fs, fsync=True
        )

    # -- intents -----------------------------------------------------------

    def _iter_intents(self) -> list[Path]:
        if not self.intents_dir.is_dir():
            return []
        return sorted(self.intents_dir.glob("*.intent.json"))

    def _check_intents(
        self,
        report: FsckReport,
        index: dict[str, list[dict]],
        repair: bool,
    ) -> bool:
        """Resolve every publish intent; returns True if index changed."""
        dirty = False
        for path in self._iter_intents():
            payload = self._read_intent(path)
            if payload is None:
                self._resolve(
                    report, repair, "intent_torn", path,
                    "unreadable publish intent (journal write died)",
                    lambda p=path: self.fs.remove(p),
                    "removed torn intent",
                )
                continue
            name = payload["name"]
            digest = payload["digest"]
            artifact = self.artifacts_dir / f"{digest}.json"
            entries = index.get(name, [])
            if any(e["digest"] == digest for e in entries):
                self._resolve(
                    report, repair, "intent_complete", path,
                    f"publish of {name!r} finished but the intent was "
                    f"not cleared",
                    lambda p=path: self.fs.remove(p),
                    "cleared intent",
                )
            elif self._verify_artifact(artifact, digest):
                def _forward(
                    p: Path = path, n: str = name, d: str = digest
                ) -> None:
                    versions = index.setdefault(n, [])
                    nxt = (
                        versions[-1]["version"] + 1 if versions else 1
                    )
                    versions.append({"version": nxt, "digest": d})
                    self.fs.remove(p)
                done = self._resolve(
                    report, repair, "intent_rollforward", path,
                    f"publish of {name!r} crashed after the artifact "
                    f"was durable; completing the version append",
                    _forward,
                    "appended version and cleared intent",
                )
                dirty |= done
            else:
                def _back(
                    p: Path = path, a: Path = artifact
                ) -> None:
                    tmp = a.with_name(a.name + ".tmp")
                    for stray in (a, tmp):
                        if stray.exists():
                            self.fs.remove(stray)
                    self.fs.remove(p)
                self._resolve(
                    report, repair, "intent_rollback", path,
                    f"publish of {name!r} crashed before the artifact "
                    f"was durable; rolling it back",
                    _back,
                    "reclaimed intent and partial artifact",
                )
        return dirty

    def _check_intents_conservative(
        self, report: FsckReport, repair: bool
    ) -> None:
        """Index unreadable: only torn intents are provably garbage."""
        for path in self._iter_intents():
            if self._read_intent(path) is None:
                self._resolve(
                    report, repair, "intent_torn", path,
                    "unreadable publish intent (journal write died)",
                    lambda p=path: self.fs.remove(p),
                    "removed torn intent",
                )
            else:
                report.findings.append(Finding(
                    kind="intent_unresolved",
                    path=str(path),
                    detail=(
                        "publish intent cannot be resolved while the "
                        "index is corrupt"
                    ),
                ))

    def _read_intent(self, path: Path) -> dict[str, str] | None:
        try:
            data = json.loads(self.fs.read_text(path))
            if data.get("op") != "publish":
                return None
            return {
                "name": str(data["name"]),
                "digest": str(data["digest"]),
            }
        except (OSError, ValueError, KeyError, TypeError):
            return None

    # -- versions & artifacts ----------------------------------------------

    def _check_versions(
        self,
        report: FsckReport,
        index: dict[str, list[dict]],
        repair: bool,
    ) -> bool:
        """Drop index entries whose artifact is missing or torn."""
        dirty = False
        for name in sorted(index):
            kept: list[dict] = []
            for entry in index[name]:
                digest = entry["digest"]
                artifact = self.artifacts_dir / f"{digest}.json"
                if self._verify_artifact(artifact, digest):
                    kept.append(entry)
                    continue
                kind = (
                    "dangling_version" if not artifact.exists()
                    else "torn_artifact"
                )
                def _drop(a: Path = artifact) -> None:
                    if a.exists():
                        self.fs.remove(a)
                done = self._resolve(
                    report, repair, kind, artifact,
                    f"{name}@{entry['version']} references digest "
                    f"{digest[:12]}… whose artifact is "
                    + (
                        "missing" if not artifact.exists()
                        else "torn (content hash mismatch)"
                    )
                    + " — MODEL BYTES ARE LOST; dropping the version",
                    _drop,
                    f"dropped {name}@{entry['version']} from the index",
                )
                if done:
                    dirty = True
                else:
                    kept.append(entry)
            if repair:
                if kept:
                    index[name] = kept
                elif name in index and not kept:
                    del index[name]
        return dirty

    def _check_orphans(
        self,
        report: FsckReport,
        index: dict[str, list[dict]],
        repair: bool,
    ) -> None:
        """Reclaim artifacts nothing references (the legacy orphan)."""
        if not self.artifacts_dir.is_dir():
            return
        referenced = {
            entry["digest"]
            for entries in index.values()
            for entry in entries
        }
        intents = {
            payload["digest"]
            for path in self._iter_intents()
            if (payload := self._read_intent(path)) is not None
        }
        for path in sorted(self.artifacts_dir.glob("*.json")):
            digest = path.stem
            if digest in referenced or digest in intents:
                continue
            self._resolve(
                report, repair, "orphan_artifact", path,
                "artifact is referenced by no version and no intent "
                "(pre-journal crash between artifact write and index "
                "append)",
                lambda p=path: self.fs.remove(p),
                "reclaimed orphaned artifact",
            )

    def _verify_artifact(self, path: Path, digest: str) -> bool:
        try:
            body = self.fs.read_bytes(path)
        except OSError:
            return False
        return hashlib.sha256(body).hexdigest() == digest

    # -- strays ------------------------------------------------------------

    def _check_strays(self, report: FsckReport, repair: bool) -> None:
        dirs = [self.root, self.artifacts_dir, self.intents_dir]
        for directory in dirs:
            if not directory.is_dir():
                continue
            for path in sorted(directory.glob("*.tmp")):
                self._resolve(
                    report, repair, "stray_tmp", path,
                    "temp sibling left by an interrupted atomic write",
                    lambda p=path: self.fs.remove(p),
                    "removed stray temp file",
                )

    def _check_checkpoints(
        self, report: FsckReport, repair: bool
    ) -> None:
        directory = self.checkpoint_dir
        if directory is None or not directory.is_dir():
            return
        for path in sorted(directory.glob("*.tmp")):
            self._resolve(
                report, repair, "checkpoint_stray_tmp", path,
                "temp sibling left by an interrupted checkpoint save",
                lambda p=path: self.fs.remove(p),
                "removed stray checkpoint temp file",
            )
        for path in sorted(directory.glob("*.swap-intent.json")):
            self._resolve(
                report, repair, "swap_intent", path,
                "tenant crashed mid-model-swap; the checkpoint decides "
                "which version won — a swap that missed its checkpoint "
                "must be re-requested",
                lambda p=path: self.fs.remove(p),
                "cleared swap intent",
            )

    # -- plumbing ----------------------------------------------------------

    def _resolve(
        self,
        report: FsckReport,
        repair: bool,
        kind: str,
        path: Path,
        detail: str,
        fix,
        action: str,
    ) -> bool:
        """Record a finding; in repair mode, attempt its fix."""
        finding = Finding(kind=kind, path=str(path), detail=detail)
        report.findings.append(finding)
        if not repair:
            return False
        try:
            fix()
        except OSError as exc:
            finding.detail += f" (repair failed: {exc})"
            return False
        finding.repaired = True
        finding.action = action
        return True


def run_fsck(
    root: str | Path,
    checkpoint_dir: str | Path | None = None,
    repair: bool = False,
    fs: FileSystem | None = None,
) -> FsckReport:
    """One-shot convenience wrapper around :class:`RegistryFsck`."""
    fsck = RegistryFsck(root, checkpoint_dir=checkpoint_dir, fs=fs)
    return fsck.repair() if repair else fsck.scan()
