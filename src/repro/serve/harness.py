"""Crash-recovery harness: kill the service at labeled points, recover.

The durability story of the serving layer is only credible if it is
*executed*: every claim ("publish is journaled", "checkpoints are
atomic", "reports are exactly-once across a crash") corresponds to a
labeled kill point (:mod:`repro.core.killpoints`) inside the write
protocol it protects.  This harness enumerates those labels, runs a
**victim** process per label (``python -m repro.serve.harness victim
...``) that arms the label and exercises the protocol until
``os._exit(73)`` fires mid-write, then **recovers** in the orchestrator
process — startup fsck, re-attach, drain — and asserts the invariants:

* the registry is fsck-clean after repair and every surviving version
  resolves (a publish either happened or didn't — never half);
* a republish after the crash converges to the same version sequence;
* the tenant's reports are exactly-once: no finalization id lost, none
  duplicated, session coverage identical to a crash-free reference run;
* every tenant ends healthy or *explicitly* quarantined — never parked
  silently.

Scenarios map labels to protocols: ``registry.publish.*`` run the
two-phase publish; ``checkpoint.*``, ``swap.*`` and
``finalize.emitted`` run a single-tenant serve fleet.  Everything is
seeded (workload generator, model training), so victim and reference
runs see byte-identical streams.

Used by ``tools/crash_harness.py`` and the ``crash-recovery`` CI job;
``tests/test_crash_recovery.py`` sweeps the same entry points.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path
from typing import Any

from ..core.config import DurabilityConfig, ServeConfig
from ..core.intellog import IntelLog
from ..core.killpoints import KILL_EXIT_CODE, KILL_POINTS, arm
from ..query.store import ModelStore
from ..simulators import WorkloadGenerator, sessions_of
from ..stream import IterableSource, JsonLinesSink
from .fsck import run_fsck
from .registry import ModelRegistry
from .service import DetectionService
from .tenant import TenantSpec

__all__ = ["run_sweep", "scenario_for", "main"]

#: Labels exercised through the registry publish protocol.
PUBLISH_LABELS = (
    "registry.publish.intent",
    "registry.publish.artifact",
    "registry.publish.index",
)

#: Labels exercised through a single-tenant serve fleet.
SERVE_LABELS = (
    "checkpoint.tmp",
    "checkpoint.bak",
    "swap.intent",
    "swap.applied",
    "finalize.emitted",
)

_MODEL = "spark-prod"
_TENANT = "t1"
_STREAM_SEED = 55
#: Tracker settings that close sessions only at drain (never early) so
#: victim/recovery/reference runs partition one deterministic stream.
_UNBOUNDED = {"idle_timeout": 1e12, "max_open_sessions": 10**9}


def scenario_for(label: str) -> str:
    """Which protocol a kill label lives in (``publish`` / ``serve``)."""
    if label in PUBLISH_LABELS:
        return "publish"
    if label in SERVE_LABELS:
        return "serve"
    raise ValueError(f"unknown kill-point label {label!r}")


def _store(seed: int, jobs: int = 6) -> ModelStore:
    """A deterministic model (distinct per seed, identical per seed)."""
    gen = WorkloadGenerator(seed=seed)
    intellog = IntelLog()
    intellog.train(sessions_of(gen.run_batch("spark", jobs)))
    return ModelStore.from_intellog(intellog)


def _stream_records(seed: int = _STREAM_SEED):
    gen = WorkloadGenerator(seed=seed)
    batch = gen.run_batch("spark", 2)
    records = [r for job in batch for r in job.records]
    records.sort(key=lambda r: r.timestamp)
    return records


def _serve_service(workdir: Path) -> tuple[DetectionService, TenantSpec]:
    registry = ModelRegistry(
        workdir / "registry", durability=DurabilityConfig.durable()
    )
    service = DetectionService(
        registry,
        ServeConfig(workers=0, quantum=40),
        checkpoint_dir=workdir / "ckpt",
        durability=DurabilityConfig.durable(),
    )
    spec = TenantSpec(tenant_id=_TENANT, model=_MODEL, **_UNBOUNDED)
    return service, spec


def _attach(service: DetectionService, spec: TenantSpec, workdir: Path):
    return service.attach(
        spec,
        source=IterableSource(_stream_records()),
        sink=JsonLinesSink(workdir / "reports.jsonl"),
    )


# -- victims (run in a subprocess; die at the armed kill point) ---------


def victim_publish(workdir: Path, label: str) -> int:
    """Publish v1 cleanly, then die mid-publish of v2."""
    registry = ModelRegistry(
        workdir / "registry", durability=DurabilityConfig.durable()
    )
    registry.publish(_store(7), _MODEL)
    arm(label)
    registry.publish(_store(11), _MODEL)  # never returns when armed
    return 0


def victim_serve(workdir: Path, label: str) -> int:
    """Serve one tenant; die inside checkpoint/swap/finalize."""
    service, spec = _serve_service(workdir)
    service.registry.publish(_store(7), _MODEL)
    tenant = _attach(service, spec, workdir)
    service.cycle()
    tenant.runtime.checkpoint()  # a clean durable base to resume from
    if label.startswith("checkpoint."):
        service.cycle()
        arm(label)
        tenant.runtime.checkpoint()  # never returns when armed
    elif label.startswith("swap."):
        service.registry.publish(_store(11), _MODEL)  # v2
        service.swap(_TENANT, 2)
        arm(label)
        service.cycle()  # pump applies the swap -> dies in the journal
    else:  # finalize.emitted
        arm(label)
        service.drain()  # dies delivering the first finalized report
    return 0


def run_victim(scenario: str, workdir: Path, label: str) -> int:
    if scenario == "publish":
        return victim_publish(workdir, label)
    if scenario == "serve":
        return victim_serve(workdir, label)
    raise ValueError(f"unknown scenario {scenario!r}")


# -- recovery + invariants (run in the orchestrator process) ------------


def _recover_publish(workdir: Path, result: dict[str, Any]) -> None:
    root = workdir / "registry"
    repaired = run_fsck(root, repair=True)
    result["fsck_findings"] = len(repaired.findings)
    result["fsck_repaired_ok"] = repaired.ok
    rescan = run_fsck(root)
    result["fsck_clean_after_repair"] = rescan.clean
    registry = ModelRegistry(root)
    v1 = registry.resolve(_MODEL, 1)
    result["v1_resolvable"] = v1[0] == 1
    # Whatever the crash left (nothing / rolled forward), republishing
    # the same bytes must converge on exactly version 2.
    version, _digest = registry.publish(_store(11), _MODEL)
    result["republish_version"] = version
    result["ok"] = bool(
        repaired.ok
        and rescan.clean
        and result["v1_resolvable"]
        and version == 2
    )


def _recover_serve(workdir: Path, result: dict[str, Any]) -> None:
    service, spec = _serve_service(workdir)  # startup fsck repairs here
    fsck = service.startup_fsck
    result["fsck_findings"] = (
        len(fsck.findings) if fsck is not None else 0
    )
    tenant = _attach(service, spec, workdir)
    result["resumed"] = tenant.runtime.resumed
    service.drain()
    healthy = tenant.failure is None and tenant.quarantined is None
    quarantined = tenant.quarantined is not None
    service.close()
    rescan = run_fsck(
        workdir / "registry", checkpoint_dir=workdir / "ckpt"
    )
    result["fsck_clean_after_repair"] = rescan.clean
    fids: list[str] = []
    sessions: list[str] = []
    for line in (workdir / "reports.jsonl").read_text(
        encoding="utf-8", errors="replace"
    ).splitlines():
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn trailing line: never delivered
        if entry.get("finalization_id"):
            fids.append(entry["finalization_id"])
            sessions.append(entry.get("session_id"))
    expected = {r.session_id for r in _stream_records()}
    result["reports"] = len(fids)
    result["duplicate_fids"] = len(fids) - len(set(fids))
    result["missing_sessions"] = sorted(expected - set(sessions))
    result["tenant_state"] = (
        "quarantined" if quarantined else
        "healthy" if healthy else "parked"
    )
    result["ok"] = bool(
        rescan.clean
        and result["duplicate_fids"] == 0
        and not result["missing_sessions"]
        and result["tenant_state"] in ("healthy", "quarantined")
    )


# -- the sweep ----------------------------------------------------------


def _spawn_victim(
    scenario: str, workdir: Path, label: str
) -> subprocess.CompletedProcess:
    src_root = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(src_root) + os.pathsep + env.get("PYTHONPATH", "")
    ).rstrip(os.pathsep)
    return subprocess.run(
        [
            sys.executable, "-m", "repro.serve.harness",
            "victim", scenario,
            "--workdir", str(workdir), "--label", label,
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )


def run_one(label: str, workdir: Path) -> dict[str, Any]:
    """Victim + recovery for one kill point; returns the result row."""
    scenario = scenario_for(label)
    workdir.mkdir(parents=True, exist_ok=True)
    proc = _spawn_victim(scenario, workdir, label)
    result: dict[str, Any] = {
        "label": label,
        "scenario": scenario,
        "victim_exit": proc.returncode,
        "killed": proc.returncode == KILL_EXIT_CODE,
    }
    if not result["killed"]:
        result["ok"] = False
        result["error"] = (
            f"victim exited {proc.returncode} without reaching the "
            f"kill point"
        )
        tail = proc.stderr.strip().splitlines()[-5:]
        if tail:
            result["victim_stderr_tail"] = tail
        return result
    try:
        if scenario == "publish":
            _recover_publish(workdir, result)
        else:
            _recover_serve(workdir, result)
    except Exception as exc:  # noqa: BLE001 - harness must report, not die
        result["ok"] = False
        result["error"] = f"recovery raised {type(exc).__name__}: {exc}"
    return result


def run_sweep(
    workroot: Path, labels: list[str] | None = None
) -> dict[str, Any]:
    """Run every (or the given) kill point; returns the JSON report."""
    labels = list(labels) if labels else list(KILL_POINTS)
    results = []
    for label in labels:
        results.append(run_one(label, workroot / label.replace(".", "_")))
    return {
        "format": "repro-crash-harness-v1",
        "results": results,
        "passed": sum(1 for r in results if r.get("ok")),
        "failed": sum(1 for r in results if not r.get("ok")),
        "ok": all(r.get("ok") for r in results),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.serve.harness",
        description="kill-point crash-recovery harness",
    )
    sub = parser.add_subparsers(dest="mode", required=True)
    victim = sub.add_parser("victim", help="(internal) die at a label")
    victim.add_argument("scenario", choices=("publish", "serve"))
    victim.add_argument("--workdir", required=True)
    victim.add_argument("--label", required=True)
    sweep = sub.add_parser("sweep", help="run every kill point")
    sweep.add_argument("--workdir", required=True,
                       help="scratch directory for per-label state")
    sweep.add_argument("--label", action="append", default=None,
                       help="restrict to this label (repeatable)")
    sweep.add_argument("--json", default=None, metavar="PATH",
                       help="write the JSON report here")
    args = parser.parse_args(argv)
    if args.mode == "victim":
        return run_victim(
            args.scenario, Path(args.workdir), args.label
        )
    report = run_sweep(Path(args.workdir), args.label)
    for row in report["results"]:
        status = "ok" if row.get("ok") else "FAIL"
        detail = row.get("error", "")
        print(f"{row['label']:28s} {status}  {detail}".rstrip())
    print(
        f"crash-recovery sweep: {report['passed']} passed, "
        f"{report['failed']} failed"
    )
    if args.json:
        Path(args.json).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
    return 0 if report["ok"] else 1


if __name__ == "__main__":  # pragma: no cover - exercised in subprocess
    sys.exit(main())
