"""Content-addressed, versioned model registry for the serving layer.

:class:`ModelRegistry` grows :meth:`repro.query.store.ModelStore.digest`
into a small artifact store:

* **artifacts** live under ``<root>/artifacts/<digest>.json`` holding
  exactly the model's canonical bytes, so every stored file can be
  re-verified against its own filename.  Artifacts are write-once —
  publishing the same model twice is a no-op at the byte level;
* the **index** (``<root>/index.json``) maps model *names* to an
  append-only list of ``{"version": n, "digest": ...}`` entries with
  sequential integer versions (no wall-clock stamps — the repo's
  determinism rules treat time as poison, and ordering is what a
  version means);
* **publish** is a journaled two-phase operation: an *intent record*
  (``<root>/intents/``) naming the model and digest is written first,
  then the artifact (temp + ``os.replace``, optionally fsync'd per
  :class:`~repro.core.config.DurabilityConfig`), then the index entry,
  and the intent is cleared last.  A crash at any point leaves a state
  :class:`~repro.serve.fsck.RegistryFsck` can roll forward (artifact
  durable → complete the publish) or roll back (artifact missing/torn
  → reclaim the intent and any partial file) — never a silent orphan
  and never an index entry pointing at a missing or torn file;
* loaded models are **shared**: one immutable in-memory
  :class:`~repro.core.intellog.IntelLog` per digest, ref-counted across
  the tenants leasing it.  Tenants get detection state of their own via
  :meth:`LeasedModel.detector_view` (a fresh
  :class:`~repro.detection.detector.AnomalyDetector` over a
  :meth:`~repro.parsing.spell.SpellParser.view` of the shared parser);
* releasing the last lease parks the deserialized model in a bounded
  **warm cache** so the next attach of that version skips
  deserialization (a warm cold-start).

Lock discipline (checked by ``repro lint-concurrency``): ``_lock``
guards the in-memory maps only; file IO and model deserialization
always happen outside it.  ``_io_lock`` serializes on-disk publishes
and is acquired *before* ``_lock`` when both are needed — never after.
"""

from __future__ import annotations

import hashlib
import json
import logging
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from ..core.config import DurabilityConfig
from ..core.errors import IntelLogError
from ..core.fsio import REAL_FS, FileSystem, atomic_replace_write
from ..core.killpoints import kill_point
from ..detection.detector import AnomalyDetector
from ..extraction.pipeline import InformationExtractor
from ..query.store import ModelStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.intellog import IntelLog

__all__ = ["INDEX_FORMAT", "LeasedModel", "ModelRegistry", "RegistryError"]

log = logging.getLogger(__name__)

INDEX_FORMAT = "repro-registry-v1"


class RegistryError(IntelLogError):
    """Unknown model/version, or a corrupt registry on disk."""


@dataclass(slots=True)
class _LiveModel:
    """One deserialized model plus the tenants leasing it."""

    intellog: "IntelLog"
    refcount: int


class LeasedModel:
    """A ref-counted lease on one immutable in-memory model.

    The underlying :class:`IntelLog` is shared by every lease of the
    same digest; treat it as read-only.  Per-tenant mutable detection
    state comes from :meth:`detector_view`.  Call :meth:`release` (or
    :meth:`ModelRegistry.release`) when the tenant detaches.
    """

    def __init__(
        self,
        registry: "ModelRegistry",
        name: str,
        version: int,
        digest: str,
        intellog: "IntelLog",
    ) -> None:
        self._registry = registry
        self.name = name
        self.version = version
        self.digest = digest
        self.intellog = intellog
        self._released = False

    @property
    def ref(self) -> str:
        return f"{self.name}@{self.version}"

    def detector_view(self) -> AnomalyDetector:
        """A tenant-private detector over the shared model.

        The HW-graph and log-key list are aliased (immutable at detect
        time); the Spell parser is a :meth:`~repro.parsing.spell.
        SpellParser.view`, so per-tenant instrumentation and
        misalignment bookkeeping never touch the shared object.
        """
        intellog = self.intellog
        return AnomalyDetector(
            intellog.hw_graph(),
            intellog.spell.view(),
            InformationExtractor(),
            intellog.config.detector,
        )

    def release(self) -> None:
        """Drop this lease (idempotent)."""
        if self._released:
            return
        self._released = True
        self._registry._release(self.digest)


class ModelRegistry:
    """Versioned model artifacts with ref-counted in-memory sharing."""

    def __init__(
        self,
        root: str | Path,
        warm_capacity: int = 4,
        durability: DurabilityConfig | None = None,
        fs: FileSystem | None = None,
    ) -> None:
        self.root = Path(root)
        self.artifacts_dir = self.root / "artifacts"
        self.artifacts_dir.mkdir(parents=True, exist_ok=True)
        self.intents_dir = self.root / "intents"
        self.intents_dir.mkdir(parents=True, exist_ok=True)
        self.durability = durability or DurabilityConfig()
        self.fs = fs or REAL_FS
        self._io_lock = threading.Lock()  # serializes index writes
        self._lock = threading.Lock()     # guards the maps below
        #: name -> [{"version": int, "digest": str}], version-ascending.
        self._index: dict[str, list[dict]] = {}
        #: digest -> live (leased) model.
        self._live: dict[str, _LiveModel] = {}
        #: digest -> parked model (refcount 0), LRU, bounded.
        self._warm: OrderedDict[str, "IntelLog"] = OrderedDict()
        self.warm_capacity = max(0, warm_capacity)
        # Plain counters (ints under _lock); the service layer mirrors
        # them into its metrics registry.
        self._publishes = 0
        self._cold_loads = 0
        self._warm_hits = 0
        self._load_index()

    # -- index persistence ------------------------------------------------

    @property
    def index_path(self) -> Path:
        return self.root / "index.json"

    def _load_index(self) -> None:
        path = self.index_path
        if not path.exists():
            return
        try:
            data = json.loads(path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise RegistryError(
                f"registry index {path} is corrupt: {exc}"
            ) from exc
        if data.get("format") != INDEX_FORMAT:
            raise RegistryError(
                f"registry index {path} has format "
                f"{data.get('format')!r}, expected {INDEX_FORMAT!r}"
            )
        models = data.get("models", {})
        index: dict[str, list[dict]] = {}
        for name, entries in models.items():
            parsed = [
                {
                    "version": int(entry["version"]),
                    "digest": str(entry["digest"]),
                }
                for entry in entries
            ]
            parsed.sort(key=lambda e: e["version"])
            index[str(name)] = parsed
        with self._lock:
            self._index = index

    def _index_payload(self) -> str:
        # Caller holds _lock; pure serialization, no IO.
        return json.dumps(
            {"format": INDEX_FORMAT, "models": self._index},
            indent=2,
            sort_keys=True,
        )

    # -- publish ----------------------------------------------------------

    def artifact_path(self, digest: str) -> Path:
        return self.artifacts_dir / f"{digest}.json"

    def intent_path(self, name: str, digest: str) -> Path:
        """Journal entry for an in-flight publish of ``name``/``digest``.

        The filename is derived (digest prefix + name hash) purely to be
        filesystem-safe and unique; fsck reads the JSON payload, never
        the filename.
        """
        tag = hashlib.sha256(name.encode("utf-8")).hexdigest()[:8]
        return self.intents_dir / f"{digest[:16]}-{tag}.intent.json"

    def reload_index(self) -> None:
        """Re-read ``index.json`` (after an external repair, e.g. fsck)."""
        with self._lock:
            self._index = {}
        self._load_index()

    def publish(self, store: ModelStore, name: str) -> tuple[int, str]:
        """Store ``store`` as the next version of ``name``.

        Returns ``(version, digest)``.  Publishing bytes identical to
        the current latest version is idempotent — the existing version
        number comes back and nothing is written.

        The write sequence is journaled (intent → artifact → index →
        intent clear) so a crash at any point is recoverable by
        :class:`~repro.serve.fsck.RegistryFsck`: an intent with a
        durable artifact rolls *forward* (the version append is
        completed), one without rolls *back* (intent and partial bytes
        reclaimed).  A clean ``OSError`` (disk full, not a crash)
        rolls itself back before raising :class:`RegistryError` —
        journal entries on disk always mean a dead publisher.
        """
        if not name:
            raise RegistryError("model name must be non-empty")
        digest = store.digest()
        with self._io_lock:
            with self._lock:
                versions = self._index.get(name, [])
                if versions and versions[-1]["digest"] == digest:
                    return versions[-1]["version"], digest
            intent = self.intent_path(name, digest)
            artifact = self.artifact_path(digest)
            version: int | None = None
            created_artifact = False
            try:
                self.fs.write_text(intent, json.dumps(
                    {"op": "publish", "name": name, "digest": digest},
                    sort_keys=True,
                ))
                if self.durability.fsync_index:
                    self.fs.fsync_file(intent)
                    self.fs.fsync_dir(self.intents_dir)
                kill_point("registry.publish.intent")
                if not artifact.exists():
                    atomic_replace_write(
                        artifact,
                        store.canonical_bytes(),
                        fs=self.fs,
                        fsync=self.durability.fsync_artifacts,
                    )
                    created_artifact = True
                kill_point("registry.publish.artifact")
                with self._lock:
                    versions = self._index.setdefault(name, [])
                    version = (
                        versions[-1]["version"] + 1 if versions else 1
                    )
                    versions.append(
                        {"version": version, "digest": digest}
                    )
                    self._publishes += 1
                    payload = self._index_payload()
                atomic_replace_write(
                    self.index_path,
                    payload,
                    fs=self.fs,
                    fsync=self.durability.fsync_index,
                )
                kill_point("registry.publish.index")
            except OSError as exc:
                self._rollback_publish(
                    name, digest, version, intent,
                    created_artifact=created_artifact,
                )
                raise RegistryError(
                    f"publish of {name!r} failed: {exc}"
                ) from exc
            try:
                self.fs.remove(intent)
            except OSError as exc:  # pragma: no cover - disk flaking
                # The publish itself is durable; a stranded intent is
                # only noise that the next fsck clears as "complete".
                log.warning(
                    "publish intent %s not cleared (%s); fsck will",
                    intent, exc,
                )
        log.info("published %s@%d (%s)", name, version, digest[:12])
        return version, digest

    def _rollback_publish(
        self,
        name: str,
        digest: str,
        version: int | None,
        intent: Path,
        created_artifact: bool = False,
    ) -> None:
        """Undo a publish that failed with the process still alive."""
        referenced = False
        with self._lock:
            if version is not None:
                versions = self._index.get(name, [])
                if versions and versions[-1] == {
                    "version": version, "digest": digest,
                }:
                    versions.pop()
                    self._publishes -= 1
                if not versions:
                    self._index.pop(name, None)
            referenced = any(
                entry["digest"] == digest
                for entries in self._index.values()
                for entry in entries
            )
        artifact = self.artifact_path(digest)
        strays = [
            intent,
            artifact.with_name(artifact.name + ".tmp"),
            self.index_path.with_name(self.index_path.name + ".tmp"),
        ]
        if created_artifact and not referenced:
            strays.append(artifact)
        for stray in strays:
            try:
                if stray.exists():
                    self.fs.remove(stray)
            except OSError:  # pragma: no cover - leave it for fsck
                pass

    # -- resolve / acquire / release --------------------------------------

    def models(self) -> dict[str, list[dict]]:
        """Snapshot of the index: name -> version entries (ascending)."""
        with self._lock:
            return {
                name: [dict(e) for e in entries]
                for name, entries in self._index.items()
            }

    def resolve(
        self, name: str, version: int | None = None
    ) -> tuple[int, str]:
        """Map ``name`` (+ optional version) to ``(version, digest)``."""
        with self._lock:
            entries = self._index.get(name)
            if not entries:
                raise RegistryError(f"unknown model {name!r}")
            if version is None:
                entry = entries[-1]
            else:
                entry = next(
                    (e for e in entries if e["version"] == version),
                    None,
                )
                if entry is None:
                    known = ", ".join(
                        str(e["version"]) for e in entries
                    )
                    raise RegistryError(
                        f"unknown version {version} of {name!r} "
                        f"(have: {known})"
                    )
            return entry["version"], entry["digest"]

    def acquire(
        self, name: str, version: int | None = None
    ) -> LeasedModel:
        """Lease the model, sharing any already-loaded copy.

        Resolution order: live (leased by someone — share it), warm
        (recently released — revive it), cold (read + verify + rebuild
        the artifact from disk, outside every lock).
        """
        version, digest = self.resolve(name, version)
        with self._lock:
            live = self._live.get(digest)
            if live is not None:
                live.refcount += 1
                return LeasedModel(
                    self, name, version, digest, live.intellog
                )
            warm = self._warm.pop(digest, None)
            if warm is not None:
                self._warm_hits += 1
                self._live[digest] = _LiveModel(
                    intellog=warm, refcount=1
                )
                return LeasedModel(self, name, version, digest, warm)
        intellog = self._load_artifact(digest)
        with self._lock:
            live = self._live.get(digest)
            if live is not None:
                # Lost a concurrent cold-load race: share the winner's
                # copy so one digest never has two live instances.
                live.refcount += 1
                return LeasedModel(
                    self, name, version, digest, live.intellog
                )
            self._cold_loads += 1
            self._live[digest] = _LiveModel(
                intellog=intellog, refcount=1
            )
        return LeasedModel(self, name, version, digest, intellog)

    def _load_artifact(self, digest: str) -> "IntelLog":
        path = self.artifact_path(digest)
        try:
            body = path.read_bytes()
        except OSError as exc:
            raise RegistryError(
                f"artifact {path} unreadable: {exc}"
            ) from exc
        actual = hashlib.sha256(body).hexdigest()
        if actual != digest:
            raise RegistryError(
                f"artifact {path} content digest {actual} does not "
                f"match its name (torn write or tampering)"
            )
        return ModelStore.from_json(body.decode("ascii")).to_intellog()

    def _release(self, digest: str) -> None:
        with self._lock:
            live = self._live.get(digest)
            if live is None:  # pragma: no cover - defensive
                return
            live.refcount -= 1
            if live.refcount > 0:
                return
            del self._live[digest]
            if self.warm_capacity > 0:
                self._warm[digest] = live.intellog
                self._warm.move_to_end(digest)
                while len(self._warm) > self.warm_capacity:
                    self._warm.popitem(last=False)

    def release(self, lease: LeasedModel) -> None:
        lease.release()

    # -- introspection ----------------------------------------------------

    def refcount(self, digest: str) -> int:
        with self._lock:
            live = self._live.get(digest)
            return live.refcount if live is not None else 0

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "publishes": self._publishes,
                "cold_loads": self._cold_loads,
                "warm_hits": self._warm_hits,
                "live_models": len(self._live),
                "warm_models": len(self._warm),
            }
