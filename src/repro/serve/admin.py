"""Control plane: tenants files, model refs, fleet reconciliation.

The ``repro serve`` CLI describes its fleet in a **tenants file** —
TOML (when the interpreter ships ``tomllib``, 3.11+) or JSON, decided
by extension::

    # tenants.toml
    [[tenants]]
    id = "team-a"
    model = "spark-prod"        # latest version, or "spark-prod@3"
    log = "/var/log/team-a/app.log"
    formatter = "spark"
    reports = "/var/run/repro/team-a.reports.jsonl"

    [[tenants]]
    id = "team-b"
    model = "spark-prod@2"      # pinned
    log = "/var/log/team-b/app.log"

The JSON equivalent is ``{"tenants": [{...}, ...]}`` with the same
keys.  :func:`apply_tenants` reconciles a running
:class:`~repro.serve.service.DetectionService` against the parsed
specs: new ids attach, missing ids detach (flushing their sessions),
and an id whose model *ref* changed gets an atomic
:meth:`~repro.serve.service.DetectionService.swap` — everything else
about a surviving tenant is left untouched, because its queue, tracker
and checkpoint state are exactly what a reload must preserve.
"""

from __future__ import annotations

import json
import logging
from pathlib import Path
from typing import TYPE_CHECKING, Any

try:  # 3.11+; the JSON path below covers older interpreters
    import tomllib
except ImportError:  # pragma: no cover - 3.10 fallback
    tomllib = None  # type: ignore[assignment]

from .tenant import TenantSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .service import DetectionService

__all__ = [
    "apply_tenants",
    "apply_tenants_file",
    "load_tenants_file",
    "parse_model_ref",
]

log = logging.getLogger(__name__)


def parse_model_ref(ref: str) -> tuple[str, int | None]:
    """Split ``"name"`` / ``"name@version"`` into ``(name, version)``."""
    name, sep, tail = ref.partition("@")
    if not name:
        raise ValueError(f"empty model name in ref {ref!r}")
    if not sep:
        return name, None
    try:
        return name, int(tail)
    except ValueError as exc:
        raise ValueError(
            f"model ref {ref!r} has a non-integer version {tail!r}"
        ) from exc


def load_tenants_file(path: str | Path) -> list[TenantSpec]:
    """Parse a tenants file (TOML by ``.toml`` extension, else JSON)."""
    path = Path(path)
    if path.suffix.lower() == ".toml":
        if tomllib is None:
            raise ValueError(
                f"{path} is TOML but this interpreter has no tomllib "
                f"(Python < 3.11) — use the JSON tenants format"
            )
        data = tomllib.loads(path.read_text())
    else:
        data = json.loads(path.read_text())
    if not isinstance(data, dict) or not isinstance(
        data.get("tenants"), list
    ):
        raise ValueError(
            f"{path} must contain a 'tenants' array of tables/objects"
        )
    specs = [TenantSpec.from_dict(entry) for entry in data["tenants"]]
    seen: set[str] = set()
    for spec in specs:
        if spec.tenant_id in seen:
            raise ValueError(
                f"{path} declares tenant {spec.tenant_id!r} twice"
            )
        seen.add(spec.tenant_id)
    return specs


def apply_tenants(
    service: "DetectionService", specs: list[TenantSpec]
) -> dict[str, Any]:
    """Reconcile the running fleet against ``specs`` (diff-based).

    Returns a summary ``{"attached": [...], "detached": [...],
    "swapped": [...], "kept": [...]}``.  Individual failures (say a
    spec naming an unpublished model) are logged and skipped so one bad
    entry cannot take down a reload.
    """
    wanted = {spec.tenant_id: spec for spec in specs}
    current = set(service.tenant_ids)
    summary: dict[str, list[str]] = {
        "attached": [], "detached": [], "swapped": [], "kept": [],
    }
    for tenant_id in sorted(current - set(wanted)):
        try:
            service.detach(tenant_id, flush=True)
            summary["detached"].append(tenant_id)
        except Exception:  # noqa: BLE001 - reload must survive
            log.exception("detach of %s failed during reload", tenant_id)
    for tenant_id, spec in sorted(wanted.items()):
        if tenant_id not in current:
            try:
                service.attach(spec)
                summary["attached"].append(tenant_id)
            except Exception:  # noqa: BLE001 - reload must survive
                log.exception(
                    "attach of %s failed during reload", tenant_id
                )
            continue
        tenant = service.tenant(tenant_id)
        want_version = spec.version
        have = tenant.lease
        changed = spec.model != have.name or (
            want_version is not None and want_version != have.version
        )
        if changed:
            if spec.model != have.name:
                log.warning(
                    "tenant %s changed model %s -> %s in reload; "
                    "model renames require detach/attach — skipping",
                    tenant_id, have.name, spec.model,
                )
                summary["kept"].append(tenant_id)
                continue
            if tenant.quarantined is not None:
                # A changed spec is the operator's way out of
                # quarantine: rebuild the tenant from scratch (its
                # checkpoint survives the detach) instead of swapping
                # a model under a permanently parked runtime.
                try:
                    service.detach(tenant_id, flush=False)
                    service.attach(spec)
                    summary["swapped"].append(tenant_id)
                    log.info(
                        "tenant %s revived from quarantine by "
                        "changed spec", tenant_id,
                    )
                except Exception:  # noqa: BLE001 - reload must survive
                    log.exception(
                        "revive of %s failed during reload", tenant_id
                    )
                continue
            try:
                service.swap(tenant_id, want_version)
                summary["swapped"].append(tenant_id)
            except Exception:  # noqa: BLE001 - reload must survive
                log.exception(
                    "swap of %s failed during reload", tenant_id
                )
        else:
            summary["kept"].append(tenant_id)
    return summary


def apply_tenants_file(
    service: "DetectionService", path: str | Path
) -> dict[str, Any]:
    """Hot-reload entry point: parse ``path`` and reconcile."""
    specs = load_tenants_file(path)
    summary = apply_tenants(service, specs)
    log.info(
        "tenants file %s applied: +%d -%d ~%d =%d",
        path,
        len(summary["attached"]),
        len(summary["detached"]),
        len(summary["swapped"]),
        len(summary["kept"]),
    )
    return summary
