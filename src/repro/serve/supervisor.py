"""Per-tenant restart policy: backoff, budget, quarantine.

Before this module a tenant whose pump raised was parked ``failed``
forever; :class:`TenantSupervisor` turns that into a self-healing loop
driven from the service's sweep:

* a failure schedules a **restart** after an exponential-backoff delay
  with seeded jitter — the same
  :class:`~repro.stream.resilience.RetryPolicy` curve the streaming
  runtime uses for IO retries, instantiated per tenant with a seed
  derived from the tenant id so delays are deterministic per tenant
  and de-synchronized across the fleet;
* restarts are **budgeted** over a rolling window
  (``SupervisorConfig.restart_budget`` within ``restart_window``
  seconds): a tenant that keeps dying stops consuming restarts and
  escalates to a permanent **quarantined** state carrying the final
  reason and traceback, visible on ``/tenants`` until an operator
  intervenes;
* a :class:`~repro.stream.resilience.CircuitBreaker` per tenant counts
  the *consecutive* failures that drive the backoff exponent (any
  successful pump resets it) and accumulates time spent unhealthy.

Threading: the supervisor is called only from the service's sweep loop
(between pump barriers) and from control-plane accessors; a single lock
keeps :meth:`status` snapshots consistent with mutations.  All time is
the injected monotonic clock — never wall time.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from ..core.config import SupervisorConfig
from ..stream.resilience import CircuitBreaker, RetryPolicy

__all__ = [
    "RUNNING",
    "BACKOFF",
    "QUARANTINED",
    "TenantSupervisor",
]

#: Supervision states surfaced in /tenants.
RUNNING = "running"
BACKOFF = "backoff"
QUARANTINED = "quarantined"


def _tenant_seed(base: int, tenant_id: str) -> int:
    """Deterministic per-tenant jitter seed (id-hash XOR base)."""
    tag = int(
        hashlib.sha256(tenant_id.encode("utf-8")).hexdigest()[:8], 16
    )
    return base ^ tag


@dataclass(slots=True)
class _Entry:
    """Supervision state for one tenant."""

    policy: RetryPolicy
    breaker: CircuitBreaker
    state: str = RUNNING
    restarts: int = 0
    next_restart_at: float | None = None
    #: Monotonic timestamps of restarts inside the rolling window.
    window: deque = field(default_factory=deque)
    history: list = field(default_factory=list)
    quarantine_reason: str | None = None
    quarantine_trace: str | None = None


class TenantSupervisor:
    """Schedules tenant restarts; escalates repeat offenders."""

    def __init__(
        self,
        config: SupervisorConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config or SupervisorConfig()
        self.config.validate()
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: dict[str, _Entry] = {}

    # -- bookkeeping -------------------------------------------------------

    def _entry(self, tenant_id: str) -> _Entry:
        # Caller holds _lock.
        entry = self._entries.get(tenant_id)
        if entry is None:
            cfg = self.config
            entry = _Entry(
                policy=RetryPolicy.for_backoff(
                    cfg.backoff_base,
                    cfg.backoff_max,
                    cfg.backoff_jitter,
                    _tenant_seed(cfg.backoff_seed, tenant_id),
                ),
                breaker=CircuitBreaker(clock=self._clock),
            )
            self._entries[tenant_id] = entry
        return entry

    def forget(self, tenant_id: str) -> None:
        """Drop all state for a detached tenant."""
        with self._lock:
            self._entries.pop(tenant_id, None)

    def _note(self, entry: _Entry, event: dict[str, Any]) -> None:
        entry.history.append(event)
        cap = self.config.history_cap
        while len(entry.history) > cap:
            entry.history.pop(0)

    # -- the policy --------------------------------------------------------

    def record_failure(
        self,
        tenant_id: str,
        reason: str,
        trace: str | None = None,
    ) -> str:
        """A tenant died this sweep.  Returns the resulting state:
        :data:`BACKOFF` (restart scheduled) or :data:`QUARANTINED`
        (budget exhausted — permanent until operator action)."""
        now = self._clock()
        with self._lock:
            entry = self._entry(tenant_id)
            entry.breaker.record_failure()
            window = entry.window
            horizon = now - self.config.restart_window
            while window and window[0] < horizon:
                window.popleft()
            if len(window) >= self.config.restart_budget:
                entry.state = QUARANTINED
                entry.next_restart_at = None
                entry.quarantine_reason = reason
                entry.quarantine_trace = trace
                self._note(entry, {
                    "at": now,
                    "event": "quarantine",
                    "reason": reason,
                    "restarts_in_window": len(window),
                })
                return QUARANTINED
            # Backoff exponent = consecutive failures so far (1st
            # failure waits ~base, then doubles), via the shared
            # RetryPolicy curve.
            delay = entry.policy.delay(
                max(0, entry.breaker.consecutive_failures - 1)
            )
            entry.state = BACKOFF
            entry.next_restart_at = now + delay
            window.append(now)
            self._note(entry, {
                "at": now,
                "event": "backoff",
                "reason": reason,
                "delay_s": round(delay, 3),
            })
            return BACKOFF

    def record_restart(self, tenant_id: str) -> None:
        """The service actually restarted the tenant."""
        now = self._clock()
        with self._lock:
            entry = self._entry(tenant_id)
            entry.state = RUNNING
            entry.next_restart_at = None
            entry.restarts += 1
            self._note(entry, {"at": now, "event": "restart"})

    def record_success(self, tenant_id: str) -> None:
        """A pump completed cleanly; consecutive-failure count resets.

        The rolling restart window is deliberately *not* cleared: a
        tenant flapping between one good pump and one crash still
        exhausts its budget instead of restarting forever.
        """
        with self._lock:
            entry = self._entries.get(tenant_id)
            if entry is None:
                return
            entry.breaker.record_success()
            if entry.state == BACKOFF:
                return
            entry.state = RUNNING

    def due(self) -> list[str]:
        """Tenant ids whose backoff has elapsed (sorted, deterministic)."""
        now = self._clock()
        with self._lock:
            return sorted(
                tid for tid, e in self._entries.items()
                if e.state == BACKOFF
                and e.next_restart_at is not None
                and e.next_restart_at <= now
            )

    # -- introspection -----------------------------------------------------

    def state(self, tenant_id: str) -> str:
        with self._lock:
            entry = self._entries.get(tenant_id)
            return entry.state if entry is not None else RUNNING

    def total_restarts(self) -> int:
        with self._lock:
            return sum(e.restarts for e in self._entries.values())

    def quarantined(self) -> list[str]:
        with self._lock:
            return sorted(
                tid for tid, e in self._entries.items()
                if e.state == QUARANTINED
            )

    def status(self, tenant_id: str) -> dict[str, Any]:
        """Supervision block for one tenant's /tenants entry."""
        now = self._clock()
        with self._lock:
            entry = self._entries.get(tenant_id)
            if entry is None:
                return {
                    "state": RUNNING,
                    "restarts": 0,
                    "restart_history": [],
                    "next_restart_in": None,
                    "quarantine_reason": None,
                    "quarantine_trace": None,
                }
            next_in = None
            if entry.state == BACKOFF and entry.next_restart_at:
                next_in = round(
                    max(0.0, entry.next_restart_at - now), 3
                )
            return {
                "state": entry.state,
                "restarts": entry.restarts,
                "restart_history": [dict(e) for e in entry.history],
                "next_restart_in": next_in,
                "quarantine_reason": entry.quarantine_reason,
                "quarantine_trace": entry.quarantine_trace,
            }
