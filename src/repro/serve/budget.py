"""Fair cross-tenant session-budget planning.

The serving layer caps *open sessions summed over every tenant*
(``ServeConfig.global_session_budget``).  Each tenant's own tracker cap
still applies; this module decides who gives sessions back when the
fleet as a whole is over budget.

The policy is **largest-first water-filling**: repeatedly take one
session from the tenant currently holding the most (ties broken by
tenant id, so plans are deterministic) until the sum fits.  Two
properties follow directly and are locked in by the property tests:

* the plan always reaches the budget exactly (never over-evicts);
* **fairness** — a tenant at or below its fair share
  (``budget // n_tenants``) is never asked to evict: pressure lands on
  the tenants actually holding the surplus, so a small tenant cannot be
  starved by a noisy neighbour.
"""

from __future__ import annotations

import heapq

__all__ = ["plan_evictions"]


def plan_evictions(
    open_counts: dict[str, int], budget: int
) -> dict[str, int]:
    """Evictions per tenant bringing ``sum(open_counts)`` under budget.

    Returns ``{tenant_id: sessions_to_evict}`` with only positive
    entries; empty when the fleet already fits.  Pure and deterministic
    — the caller applies it via ``StreamRuntime.force_evict``.
    """
    if budget < 0:
        raise ValueError(f"budget must be >= 0, got {budget}")
    total = sum(open_counts.values())
    excess = total - budget
    if excess <= 0:
        return {}
    # Max-heap of (-count, tenant); pop the largest holder, take one
    # session, push it back.  O(excess * log n) with small constants —
    # excess is bounded by one scheduling sweep's worth of growth.
    heap = [
        (-count, tenant)
        for tenant, count in open_counts.items()
        if count > 0
    ]
    heapq.heapify(heap)
    plan: dict[str, int] = {}
    while excess > 0 and heap:
        neg, tenant = heapq.heappop(heap)
        count = -neg
        if count <= 0:
            break
        plan[tenant] = plan.get(tenant, 0) + 1
        excess -= 1
        if count - 1 > 0:
            heapq.heappush(heap, (-(count - 1), tenant))
    return plan
