"""Multi-tenant detection serving over versioned, shared models.

``repro watch`` is one process, one model, one stream; this subsystem
is the long-running service layer above it (ROADMAP item 1):

* :mod:`~repro.serve.registry` — content-addressed, versioned model
  artifacts with atomic publish, ref-counted in-memory sharing and a
  warm cache for fast re-attach;
* :mod:`~repro.serve.tenant` — one stream per tenant: a bounded
  shed-oldest ingest queue in front of an embedded
  :class:`~repro.stream.StreamRuntime` (so every per-stream guarantee
  — exactly-once reports, checkpoints, breaker — carries over
  verbatim), plus the pending-lease slot for atomic model swaps;
* :mod:`~repro.serve.budget` — fair largest-first planning for the
  global open-session budget;
* :mod:`~repro.serve.service` — the sweep scheduler multiplexing every
  tenant (inline-deterministic or thread-pool), with per-tenant health
  isolation and fleet metrics;
* :mod:`~repro.serve.admin` — tenants files (TOML/JSON), hot-reload
  reconciliation, model refs;
* :mod:`~repro.serve.supervisor` — per-tenant restart policy
  (seeded-jitter exponential backoff, rolling restart budget,
  quarantine escalation) driven from the sweep loop;
* :mod:`~repro.serve.fsck` — crash-consistency checker/repairer for
  the registry's journaled publish/swap protocol, run at service
  startup and via ``repro fsck``.

Surfaced on the command line as ``repro serve`` / ``repro publish``.
The load-bearing invariant, inherited from the streaming layer and
locked in by ``tests/test_serve.py``: a tenant's reports are
byte-identical to a standalone ``repro watch`` over the same stream.
"""

from .admin import (
    apply_tenants,
    apply_tenants_file,
    load_tenants_file,
    parse_model_ref,
)
from .budget import plan_evictions
from .fsck import Finding, FsckReport, RegistryFsck, run_fsck
from .registry import (
    INDEX_FORMAT,
    LeasedModel,
    ModelRegistry,
    RegistryError,
)
from .service import DetectionService
from .supervisor import TenantSupervisor
from .tenant import BoundedQueueSource, Tenant, TenantSpec

__all__ = [
    "BoundedQueueSource",
    "DetectionService",
    "Finding",
    "FsckReport",
    "INDEX_FORMAT",
    "LeasedModel",
    "ModelRegistry",
    "RegistryError",
    "RegistryFsck",
    "Tenant",
    "TenantSpec",
    "TenantSupervisor",
    "apply_tenants",
    "apply_tenants_file",
    "load_tenants_file",
    "parse_model_ref",
    "plan_evictions",
    "run_fsck",
]
