"""The multi-tenant scheduler: many streams, one process, one model.

:class:`DetectionService` multiplexes any number of tenants
(:class:`~repro.serve.tenant.Tenant`) over a shared
:class:`~repro.serve.registry.ModelRegistry`.  Scheduling is
sweep-based: each sweep pumps every healthy tenant for one bounded
quantum (``ServeConfig.quantum`` records), then enforces the global
session budget (:func:`~repro.serve.budget.plan_evictions`) and mirrors
per-tenant stats into the fleet metrics registry.  With
``ServeConfig.workers == 0`` sweeps run inline in deterministic
tenant-id order (tests, ``--drain`` batch runs); with workers the pumps
of one sweep run on a thread pool — still at most one worker per tenant
(the sweep is a barrier), which is what lets tenant internals stay
lock-free.

Health isolation is now *self-healing*: a pump that raises (or a
breaker that opens) marks that tenant failed — with the exception type
and a traceback tail, not just ``str(exc)`` — and hands it to the
:class:`~repro.serve.supervisor.TenantSupervisor`, which schedules a
restart with seeded-jitter exponential backoff.  Restarts resume from
the tenant's durable checkpoint (exactly-once reports hold across the
replay); a tenant that exhausts its restart budget inside the rolling
window is **quarantined** permanently with the reason and traceback on
``/tenants``.  The rest of the fleet keeps streaming throughout.  At
startup the service runs :class:`~repro.serve.fsck.RegistryFsck` in
repair mode over the registry (and checkpoint directory), so a crashed
publish or swap is rolled forward/back before any tenant attaches.
Fleet state is exposed as labeled ``serve_*`` gauges on the fleet
registry (``/metrics``) and as a JSON document
(:meth:`DetectionService.tenants_status`, the ``/tenants`` route).
"""

from __future__ import annotations

import logging
import threading
import time
import traceback as _traceback
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Callable

from ..core.config import (
    DurabilityConfig,
    ResilienceConfig,
    ServeConfig,
    SupervisorConfig,
)
from ..core.fsio import FileSystem
from ..obs import MetricsRegistry
from ..stream.sink import JsonLinesSink, ListSink, ReportSink
from ..stream.source import FileFollowSource, LogSource
from .budget import plan_evictions
from .fsck import FsckReport, RegistryFsck
from .registry import ModelRegistry
from .supervisor import BACKOFF, QUARANTINED, TenantSupervisor
from .tenant import Tenant, TenantSpec

__all__ = ["DetectionService"]

log = logging.getLogger(__name__)


class DetectionService:
    """Runs many tenant streams against shared, versioned models."""

    def __init__(
        self,
        registry: ModelRegistry,
        config: ServeConfig | None = None,
        checkpoint_dir: str | Path | None = None,
        metrics: MetricsRegistry | None = None,
        resilience: ResilienceConfig | None = None,
        supervisor: TenantSupervisor | None = None,
        supervisor_config: SupervisorConfig | None = None,
        durability: DurabilityConfig | None = None,
        fs: FileSystem | None = None,
        fsck_on_start: bool = True,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.registry = registry
        self.config = config or ServeConfig()
        self.config.validate()
        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.resilience = resilience
        self.durability = durability or DurabilityConfig()
        self._fs = fs
        self.supervisor = supervisor or TenantSupervisor(
            supervisor_config, clock=clock
        )
        self._clock = clock
        self._sleep = sleep
        # _lock guards the tenant map; pumps never run under it (the
        # sweep snapshots the map first), so a slow tenant cannot block
        # attach/detach/status calls.
        self._lock = threading.Lock()
        self._tenants: dict[str, Tenant] = {}
        self._stop = threading.Event()
        self._init_metrics()
        self.budget_evictions = 0
        self.fleet_dead = False
        # Repair any half-finished publish/swap/checkpoint *before* the
        # first tenant attaches, so leases and resumes only ever see a
        # consistent registry.
        self.startup_fsck: FsckReport | None = None
        if fsck_on_start:
            self.startup_fsck = RegistryFsck(
                registry.root,
                checkpoint_dir=self.checkpoint_dir,
                fs=fs,
            ).repair()
            if not self.startup_fsck.clean:
                registry.reload_index()
                log.warning(
                    "startup fsck repaired %d finding(s) in %s",
                    len(self.startup_fsck.findings),
                    registry.root,
                )

    def _init_metrics(self) -> None:
        reg = self.metrics
        self._g_active = reg.gauge(
            "serve_active_tenants", "Tenants currently attached."
        )
        self._g_failed = reg.gauge(
            "serve_failed_tenants",
            "Tenants parked after a pump failure or open breaker.",
        )
        self._g_fleet_open = reg.gauge(
            "serve_open_sessions",
            "Open sessions summed over every tenant.",
        )
        self._g_budget = reg.gauge(
            "serve_session_budget", "Configured global session budget."
        )
        self._g_budget.set(self.config.global_session_budget)
        self._c_budget_evictions = reg.counter(
            "serve_budget_evictions_total",
            "Sessions force-closed by the global budget, by tenant.",
        )
        self._c_swaps = reg.counter(
            "serve_model_swaps_total", "Model swaps applied, by tenant."
        )
        self._c_restarts = reg.counter(
            "serve_restarts_total",
            "Supervised tenant restarts performed, by tenant.",
        )
        self._g_quarantined = reg.gauge(
            "serve_quarantined_tenants",
            "Tenants permanently parked after exhausting their "
            "restart budget.",
        )
        self._g_t_records = reg.gauge(
            "serve_tenant_records", "Records consumed, by tenant."
        )
        self._g_t_reports = reg.gauge(
            "serve_tenant_reports", "Reports finalized, by tenant."
        )
        self._g_t_open = reg.gauge(
            "serve_tenant_open_sessions", "Open sessions, by tenant."
        )
        self._g_t_queue = reg.gauge(
            "serve_tenant_queue_depth", "Queued records, by tenant."
        )
        self._g_t_shed = reg.gauge(
            "serve_tenant_shed_records",
            "Oldest-first records shed by the bounded queue, by tenant.",
        )
        self._g_reg_live = reg.gauge(
            "serve_registry_live_models",
            "Distinct model digests currently leased.",
        )
        self._g_reg_warm = reg.gauge(
            "serve_registry_warm_models",
            "Pre-deserialized models parked in the warm cache.",
        )
        self._g_reg_cold = reg.gauge(
            "serve_registry_cold_loads",
            "Artifact deserializations performed.",
        )
        self._g_reg_warm_hits = reg.gauge(
            "serve_registry_warm_hits",
            "Attaches served from the warm cache.",
        )

    # -- control plane -----------------------------------------------------

    def attach(
        self,
        spec: TenantSpec,
        source: LogSource | None = None,
        sink: ReportSink | None = None,
    ) -> Tenant:
        """Attach one tenant; leases its model from the registry.

        ``source``/``sink`` override the spec (tests and embedders pass
        them directly; the tenants-file path builds a
        :class:`~repro.stream.FileFollowSource` /
        :class:`~repro.stream.JsonLinesSink` pair).
        """
        with self._lock:
            if spec.tenant_id in self._tenants:
                raise ValueError(
                    f"tenant {spec.tenant_id!r} already attached"
                )
        if source is None:
            if spec.log_path is None:
                raise ValueError(
                    f"tenant {spec.tenant_id!r} has no log path and no "
                    f"explicit source"
                )
            source = FileFollowSource(
                spec.log_path, formatter=spec.formatter
            )
        if sink is None:
            sink = (
                JsonLinesSink(spec.reports_path)
                if spec.reports_path is not None else ListSink()
            )
        lease = self.registry.acquire(spec.model, spec.version)
        tenant = Tenant(
            spec,
            lease,
            source=source,
            sink=sink,
            checkpoint_dir=self.checkpoint_dir,
            queue_capacity=self.config.queue_capacity,
            ingest_batch=self.config.ingest_batch,
            resilience=self.resilience,
            durability=self.durability,
            fs=self._fs,
        )
        with self._lock:
            if spec.tenant_id in self._tenants:
                # Lost an attach race; give the lease back.
                tenant.close()
                raise ValueError(
                    f"tenant {spec.tenant_id!r} already attached"
                )
            self._tenants[spec.tenant_id] = tenant
        # A fresh attach is an operator action: start with a clean
        # supervision slate (re-attaching is how a quarantine is lifted).
        self.supervisor.forget(spec.tenant_id)
        self.fleet_dead = False
        log.info(
            "attached tenant %s on %s", spec.tenant_id, lease.ref
        )
        return tenant

    def detach(self, tenant_id: str, flush: bool = True) -> None:
        """Detach a tenant; ``flush`` finalizes its open sessions."""
        with self._lock:
            tenant = self._tenants.pop(tenant_id, None)
        if tenant is None:
            raise KeyError(f"tenant {tenant_id!r} is not attached")
        if flush and tenant.failure is None:
            tenant.finish()
        else:
            # Not flushing: leave open sessions in the checkpoint so a
            # future attach resumes them instead of losing them.
            tenant.runtime.checkpoint()
        tenant.close()
        self.supervisor.forget(tenant_id)
        log.info("detached tenant %s", tenant_id)

    def swap(
        self, tenant_id: str, version: int | None = None
    ) -> tuple[int, str]:
        """Atomically move one tenant to another model version.

        The new lease is acquired *first* (so a missing version fails
        before anything changes), then parked on the tenant; the pump
        installs it between quanta.  Other tenants keep their leases —
        and with them, the old in-memory model.
        """
        tenant = self._get(tenant_id)
        lease = self.registry.acquire(tenant.spec.model, version)
        tenant.request_swap(lease)
        return lease.version, lease.digest

    def _get(self, tenant_id: str) -> Tenant:
        with self._lock:
            tenant = self._tenants.get(tenant_id)
        if tenant is None:
            raise KeyError(f"tenant {tenant_id!r} is not attached")
        return tenant

    def tenant(self, tenant_id: str) -> Tenant:
        return self._get(tenant_id)

    @property
    def tenant_ids(self) -> list[str]:
        with self._lock:
            return sorted(self._tenants)

    # -- scheduling --------------------------------------------------------

    def _snapshot(self) -> list[Tenant]:
        with self._lock:
            return [
                self._tenants[tid] for tid in sorted(self._tenants)
            ]

    @staticmethod
    def _trace_tail(limit: int = 12) -> str:
        """Last ``limit`` lines of the current exception's traceback."""
        lines = _traceback.format_exc().strip().splitlines()
        return "\n".join(lines[-limit:])

    def _pump_one(
        self, tenant: Tenant
    ) -> tuple[int, tuple[str, str] | None]:
        """Pump one quantum.  Returns ``(consumed, failure)`` where
        ``failure`` is ``(reason, traceback_tail)`` if the pump raised —
        the supervisor call itself happens back on the sweep thread."""
        try:
            return tenant.pump(self.config.quantum), None
        except Exception as exc:  # noqa: BLE001 - isolation boundary
            note = f"pump: {type(exc).__name__}: {exc}"
            trace = self._trace_tail()
            tenant.mark_failed(note, trace=trace)
            log.exception(
                "tenant %s pump failed", tenant.tenant_id
            )
            return 0, (note, trace)

    def _register_failure(
        self, tenant: Tenant, reason: str, trace: str | None
    ) -> None:
        """Route one tenant failure through the supervisor."""
        state = self.supervisor.record_failure(
            tenant.tenant_id, reason, trace
        )
        if state == QUARANTINED:
            tenant.mark_quarantined(reason, trace)
            log.error(
                "tenant %s quarantined (restart budget exhausted): %s",
                tenant.tenant_id, reason,
            )
        else:
            status = self.supervisor.status(tenant.tenant_id)
            log.warning(
                "tenant %s failed (%s); restart in %ss",
                tenant.tenant_id, reason, status["next_restart_in"],
            )

    def _revive_due(self) -> None:
        """Restart every tenant whose backoff has elapsed."""
        for tenant_id in self.supervisor.due():
            with self._lock:
                tenant = self._tenants.get(tenant_id)
            if tenant is None:
                self.supervisor.forget(tenant_id)
                continue
            if (
                tenant.quarantined is not None
                or tenant.detach_requested
            ):
                continue
            try:
                tenant.restart()
            except Exception as exc:  # noqa: BLE001 - isolation boundary
                note = f"restart: {type(exc).__name__}: {exc}"
                trace = self._trace_tail()
                tenant.mark_failed(note, trace=trace)
                log.exception(
                    "tenant %s restart failed", tenant_id
                )
                self._register_failure(tenant, note, trace)
                continue
            self.supervisor.record_restart(tenant_id)
            self._c_restarts.labels(tenant=tenant_id).inc()
            log.info(
                "restarted tenant %s (restart #%d)",
                tenant_id, tenant.restarts,
            )

    def cycle(self, executor: ThreadPoolExecutor | None = None) -> int:
        """One sweep: pump every healthy tenant once, enforce budget.

        Returns total records consumed.  Inline (no executor) the
        tenants run in sorted-id order — fully deterministic; with an
        executor the pumps of the sweep run concurrently, one task per
        tenant, and the sweep itself is the barrier that keeps a tenant
        from ever being pumped twice at once.  Supervision happens at
        the sweep edges, always on the calling thread: due restarts
        first, then pump failures and newly opened breakers are fed to
        the supervisor after the barrier.
        """
        self._revive_due()
        tenants = [
            t for t in self._snapshot()
            if t.quarantined is None
            and t.failure is None
            and not t.runtime.failed
        ]
        if executor is None:
            results = [(t, *self._pump_one(t)) for t in tenants]
        else:
            futures = [
                (t, executor.submit(self._pump_one, t))
                for t in tenants
            ]
            results = [(t, *f.result()) for t, f in futures]
        consumed = 0
        for tenant, n, failure in results:
            consumed += n
            if failure is not None:
                self._register_failure(tenant, *failure)
            elif tenant.runtime.failed:
                # The pump returned but left the breaker open (e.g. a
                # run of source errors): same supervision path as a
                # raised exception, minus the traceback.
                note = (
                    "breaker: "
                    f"{tenant.runtime.stats.failure or 'circuit open'}"
                )
                tenant.mark_failed(note)
                self._register_failure(tenant, note, None)
            else:
                self.supervisor.record_success(tenant.tenant_id)
        self._apply_detaches()
        self.enforce_budget()
        self._mirror_metrics()
        return consumed

    def _apply_detaches(self) -> None:
        for tenant in self._snapshot():
            if tenant.detach_requested:
                try:
                    self.detach(tenant.tenant_id, flush=True)
                except KeyError:  # pragma: no cover - benign race
                    pass

    def enforce_budget(self) -> int:
        """Evict LRU sessions until the fleet fits the global budget."""
        tenants = self._snapshot()
        plan = plan_evictions(
            {t.tenant_id: t.open_sessions for t in tenants},
            self.config.global_session_budget,
        )
        evicted = 0
        for tenant in tenants:
            want = plan.get(tenant.tenant_id, 0)
            if want <= 0:
                continue
            done = tenant.runtime.force_evict(want)
            evicted += done
            self._c_budget_evictions.labels(
                tenant=tenant.tenant_id
            ).inc(done)
        self.budget_evictions += evicted
        return evicted

    def drain(self) -> dict[str, Any]:
        """Process every tenant to exhaustion, then finalize them all.

        The multi-tenant analogue of ``StreamRuntime.drain()``: sweeps
        run until no healthy tenant has records left *right now*, then
        each tenant's tracker is flushed so every open session reports.
        Tenants stay attached (callers can inspect, swap, keep going).
        """
        executor = self._executor()
        try:
            while True:
                consumed = self.cycle(executor)
                if consumed:
                    continue
                # An empty sweep ends the drain — mirroring
                # run(once=True), which stops on an OK-but-empty poll —
                # unless some tenant is mid-retry (DEGRADED: its poll
                # *failed* rather than came back empty; run() keeps
                # polling through transient outages, so the drain must
                # too, until the tenant recovers or its breaker opens).
                retrying = [
                    t for t in self._snapshot()
                    if t.failure is None and not t.runtime.failed
                    and t.runtime.stats.health == "degraded"
                ]
                # Likewise a tenant waiting out a supervised backoff is
                # *healing*, not done — sleep through the backoff so its
                # restart (and replay) happens inside the drain.
                healing = [
                    t for t in self._snapshot()
                    if t.quarantined is None
                    and self.supervisor.state(t.tenant_id) == BACKOFF
                ]
                if healing:
                    self._sleep(self.config.poll_interval)
                    continue
                if not retrying:
                    break
        finally:
            if executor is not None:
                executor.shutdown(wait=True)
        for tenant in self._snapshot():
            if tenant.failure is None and not tenant.runtime.failed:
                tenant.finish()
        self._mirror_metrics()
        return self.tenants_status()

    def _executor(self) -> ThreadPoolExecutor | None:
        if self.config.workers <= 0:
            return None
        return ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-serve",
        )

    def run(
        self,
        duration: float | None = None,
        max_cycles: int | None = None,
        tenants_file: str | Path | None = None,
        apply_tenants_file: Callable[["DetectionService", Path], Any]
        | None = None,
    ) -> dict[str, Any]:
        """Serve until stopped (:meth:`stop`), for ``duration`` seconds,
        or for ``max_cycles`` sweeps — whichever comes first.

        With ``tenants_file`` the file's mtime is polled every
        ``ServeConfig.reload_every`` seconds and changes are applied via
        ``apply_tenants_file`` (the control plane's diff-based
        reconciler — injected to keep this module free of parsing).
        """
        executor = self._executor()
        started = self._clock()
        cycles = 0
        last_reload_check = started
        last_mtime: float | None = None
        path = Path(tenants_file) if tenants_file is not None else None
        if path is not None:
            try:
                last_mtime = path.stat().st_mtime
            except OSError:
                last_mtime = None
        try:
            while not self._stop.is_set():
                if (
                    duration is not None
                    and self._clock() - started >= duration
                ):
                    break
                if max_cycles is not None and cycles >= max_cycles:
                    break
                if (
                    path is not None
                    and apply_tenants_file is not None
                    and self._clock() - last_reload_check
                    >= self.config.reload_every
                ):
                    last_reload_check = self._clock()
                    try:
                        mtime = path.stat().st_mtime
                    except OSError:
                        mtime = None
                    if mtime is not None and mtime != last_mtime:
                        last_mtime = mtime
                        try:
                            apply_tenants_file(self, path)
                        except Exception:  # noqa: BLE001 - keep serving
                            log.exception(
                                "tenants-file reload failed; keeping "
                                "the previous fleet"
                            )
                consumed = self.cycle(executor)
                cycles += 1
                tenants = self._snapshot()
                if tenants and all(
                    t.quarantined is not None for t in tenants
                ):
                    # Nothing left that can ever recover on its own.
                    self.fleet_dead = True
                    log.error(
                        "FLEET dead: all %d tenant(s) quarantined; "
                        "stopping the serve loop",
                        len(tenants),
                    )
                    break
                if not consumed:
                    self._sleep(self.config.poll_interval)
        finally:
            if executor is not None:
                executor.shutdown(wait=True)
        self._mirror_metrics()
        return self.tenants_status()

    def stop(self) -> None:
        self._stop.set()

    def close(self, flush: bool = True) -> None:
        """Detach every tenant and release every lease."""
        self.stop()
        for tenant_id in list(self.tenant_ids):
            try:
                self.detach(tenant_id, flush=flush)
            except KeyError:  # pragma: no cover - concurrent detach
                pass

    # -- fleet state -------------------------------------------------------

    def _mirror_metrics(self) -> None:
        tenants = self._snapshot()
        failed = 0
        fleet_open = 0
        for tenant in tenants:
            status = tenant.status()
            if status["failure"] or status["health"] == "failed":
                failed += 1
            fleet_open += status["open_sessions"]
            labels = {"tenant": tenant.tenant_id}
            self._g_t_records.labels(**labels).set(status["records"])
            self._g_t_reports.labels(**labels).set(status["reports"])
            self._g_t_open.labels(**labels).set(
                status["open_sessions"]
            )
            self._g_t_queue.labels(**labels).set(status["queue_depth"])
            self._g_t_shed.labels(**labels).set(status["shed_records"])
            self._c_swaps.labels(**labels).restore(status["swaps"])
        self._g_active.set(len(tenants))
        self._g_failed.set(failed)
        self._g_quarantined.set(len(self.supervisor.quarantined()))
        self._g_fleet_open.set(fleet_open)
        reg = self.registry.stats()
        self._g_reg_live.set(reg["live_models"])
        self._g_reg_warm.set(reg["warm_models"])
        self._g_reg_cold.set(reg["cold_loads"])
        self._g_reg_warm_hits.set(reg["warm_hits"])

    def tenants_status(self) -> dict[str, Any]:
        """JSON document for the ``/tenants`` route."""
        tenants = []
        for tenant in self._snapshot():
            status = tenant.status()
            status["supervisor"] = self.supervisor.status(
                tenant.tenant_id
            )
            tenants.append(status)
        doc = {
            "tenants": tenants,
            "fleet": {
                "active": len(tenants),
                "open_sessions": sum(
                    t["open_sessions"] for t in tenants
                ),
                "session_budget": self.config.global_session_budget,
                "budget_evictions": self.budget_evictions,
                "restarts": self.supervisor.total_restarts(),
                "quarantined": self.supervisor.quarantined(),
                "dead": self.fleet_dead,
            },
            "registry": {
                "models": self.registry.models(),
                **self.registry.stats(),
            },
        }
        if self.startup_fsck is not None:
            doc["startup_fsck"] = {
                "clean": self.startup_fsck.clean,
                "findings": len(self.startup_fsck.findings),
                "remaining": len(self.startup_fsck.remaining),
            }
        return doc
