"""Command-line interface: ``intellog train|detect|inspect|lint-*``.

Mirrors how the original tool is operated: train a model from normal-run
log files, persist it as JSON, then check new log files against it.  The
``lint-model`` / ``lint-code`` subcommands run the static analysis layer
(``repro.analysis``) over a saved model and over the codebase.

    intellog train  --formatter spark --model model.json train1.log ...
    intellog detect --model model.json suspicious.log
    intellog watch  --model model.json --follow app.log [--once]
    intellog publish --model model.json --name prod --registry DIR
    intellog serve  --tenants tenants.toml --registry DIR [--drain]
    intellog fsck   --registry DIR [--repair] [--json]
    intellog inspect --model model.json [--subroutines]
    intellog stats  metrics.json
    intellog lint-model --model model.json [--strict]
    intellog lint-code [paths...]
    intellog lint-concurrency [paths...] [--json]

``watch`` is the online mode (``repro.stream``): it tails a growing log
file, assembles sessions incrementally and emits one report per closed
session while the job is still running.

``train``, ``detect`` and ``watch`` accept ``--metrics-out PATH`` to
write a canonical JSON snapshot of the run's metrics registry
(``repro.obs``) on exit; ``repro stats PATH`` renders such a snapshot.
``watch --metrics-port N`` additionally serves live Prometheus text
exposition at ``http://127.0.0.1:N/metrics`` while tailing.

(The console script is installed under both names, ``intellog`` and
``repro``.)
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .core.intellog import IntelLog
from .core.config import IntelLogConfig
from .graph.render import render_summary, render_tree, to_json
from .query.store import ModelStore


def _read_lines(paths: list[str]) -> list[str]:
    lines: list[str] = []
    for path in paths:
        lines.extend(Path(path).read_text().splitlines())
    return lines


def _metrics_registry(args: argparse.Namespace):
    """A fresh registry when the command asked for metrics, else None."""
    if getattr(args, "metrics_out", None) or getattr(
        args, "metrics_port", None
    ) is not None:
        from .obs import MetricsRegistry

        return MetricsRegistry()
    return None


def _write_metrics(registry, args: argparse.Namespace) -> None:
    """Write the ``--metrics-out`` snapshot (no-op when not requested)."""
    if registry is None or not getattr(args, "metrics_out", None):
        return
    from .obs import write_snapshot

    write_snapshot(registry, args.metrics_out)
    print(f"METRICS written to {args.metrics_out}", file=sys.stderr)


def cmd_train(args: argparse.Namespace) -> int:
    if args.workers is not None and args.workers < 1:
        raise SystemExit(
            f"error: --workers must be a positive integer, "
            f"got {args.workers}"
        )
    batch_records = getattr(args, "batch_records", None)
    if batch_records is not None and batch_records < 1:
        raise SystemExit(
            f"error: --batch-records must be a positive integer, "
            f"got {batch_records}"
        )
    config = IntelLogConfig(
        spell_tau=args.tau, formatter=args.formatter
    )
    intellog = IntelLog(config)
    registry = _metrics_registry(args)
    summary = intellog.train_lines(
        _read_lines(args.logs), workers=args.workers, cache=args.cache,
        batch_records=batch_records, registry=registry,
    )
    print(
        f"trained on {summary.sessions} sessions / {summary.messages} "
        f"messages -> {summary.log_keys} log keys, "
        f"{summary.entity_groups} entity groups "
        f"({summary.critical_groups} critical)"
    )
    report = intellog.last_parallel_report
    if report is not None:
        print(
            f"parallel: {report.workers} workers "
            f"(pool {report.pool_workers}), {report.batches} batches / "
            f"{report.shards} shards, {report.distinct_forms} distinct "
            f"forms, extraction cache {report.cache_hits} hits / "
            f"{report.cache_misses} misses, "
            f"{report.payload_bytes_total} payload bytes"
        )
    ModelStore.from_intellog(intellog).save(args.model)
    print(f"model written to {args.model}")
    _write_metrics(registry, args)
    return 0


def _load_store(path: str) -> ModelStore:
    """Read a saved model, exiting with a clean error when unreadable."""
    try:
        return ModelStore.load_path(path)
    except OSError as exc:
        raise SystemExit(f"error: cannot read model {path!r}: {exc}")
    except (json.JSONDecodeError, KeyError, TypeError) as exc:
        raise SystemExit(
            f"error: {path!r} is not a saved IntelLog model: {exc}"
        )


def _load(args: argparse.Namespace) -> IntelLog:
    """Rebuild an IntelLog from a saved model with full fidelity.

    The :class:`~repro.query.store.ModelStore` payload carries the log
    keys *and* the complete HW-graph serialization (group statistics,
    subroutines, relation matrix), so the restored instance detects
    exactly like the one that was trained.
    """
    return _load_store(args.model).to_intellog()


def cmd_detect(args: argparse.Namespace) -> int:
    intellog = _load(args)
    registry = _metrics_registry(args)
    if registry is not None:
        intellog.detector().instrument(registry)
    workers = max(1, int(getattr(args, "workers", 1) or 1))
    if workers > 1:
        # Partitioned detect: sessions are split into contiguous chunks
        # and detected by worker processes that each load the model
        # from disk — reports are identical to the single-process path,
        # in the same order.
        from .detection.partition import detect_job_partitioned
        from .parsing.records import split_sessions

        records = intellog._format(_read_lines(args.logs), None)
        report = detect_job_partitioned(
            args.model, list(split_sessions(records)), workers,
            job_id="cli",
        )
    else:
        report = intellog.detect_lines(
            _read_lines(args.logs), job_id="cli"
        )
    print(json.dumps(report.to_dict(), indent=2))
    _write_metrics(registry, args)
    return 1 if report.anomalous else 0


def cmd_inspect(args: argparse.Namespace) -> int:
    intellog = _load(args)
    graph = intellog.hw_graph()
    if args.json:
        print(to_json(graph))
    else:
        print(render_summary(graph))
        print(render_tree(graph, show_subroutines=args.subroutines))
    return 0


def cmd_watch(args: argparse.Namespace) -> int:
    """Online detection: tail a log file against a saved model.

    Streams one JSON report line per closed session to stdout (or
    ``--jsonl``), live unexpected-message alerts, health transitions
    and periodic runtime stats to stderr.  A checkpoint next to the
    model (disable with ``--no-checkpoint``) lets a restarted watch
    resume mid-job without re-emitting reports; corrupt checkpoints
    fall back to their ``.bak``, then to a cold start with a warning.
    Malformed input lines go to the ``--quarantine`` dead-letter file
    (or are counted in memory) instead of being dropped.  ``--once``
    drains the file and exits (exit 1 when any session was anomalous,
    like ``detect``); exit 2 means the circuit breaker opened
    (persistent IO failure) and the watch stopped at its checkpoint.
    """
    from .core.config import ResilienceConfig
    from .core.errors import CheckpointCorruptError
    from .stream import (
        FileFollowSource,
        JsonLinesQuarantine,
        JsonLinesSink,
        StreamRuntime,
        TrackerConfig,
        default_checkpoint_path,
    )
    from .stream.tracker import DEFAULT_END_MARKERS

    intellog = _load(args)
    formatter = args.formatter or intellog.config.formatter
    quarantine = (
        JsonLinesQuarantine(args.quarantine) if args.quarantine else None
    )
    source = FileFollowSource(
        args.follow, formatter=formatter, quarantine=quarantine
    )
    sink = JsonLinesSink(args.jsonl if args.jsonl else sys.stdout)
    checkpoint = None
    if not args.no_checkpoint:
        checkpoint = args.checkpoint or default_checkpoint_path(args.model)
    config = TrackerConfig(
        idle_timeout=args.idle_timeout,
        max_open_sessions=args.max_sessions,
        end_markers=tuple(args.end_marker or DEFAULT_END_MARKERS),
    )
    resilience = ResilienceConfig(
        retry_attempts=args.retry_attempts,
        failed_after=args.fail_after,
    )

    def on_alert(alert) -> None:
        print(f"ALERT {json.dumps(alert.to_dict())}", file=sys.stderr)

    def on_stats(stats) -> None:
        print(f"STATS {json.dumps(stats.to_dict())}", file=sys.stderr)

    def on_health(old: str, new: str, why: str) -> None:
        print(f"HEALTH {old} -> {new} ({why})", file=sys.stderr)

    try:
        runtime = StreamRuntime(
            intellog,
            source,
            sink=sink,
            tracker=config,
            checkpoint_path=checkpoint,
            on_alert=on_alert,
            stats_callback=on_stats if args.stats_every else None,
            stats_every=args.stats_every or 1000,
            poll_interval=args.poll_interval,
            resilience=resilience,
            on_health=on_health,
        )
    except CheckpointCorruptError as exc:
        # recover() normally swallows corruption into a cold start;
        # this is the explicit-path escape hatch (e.g. unreadable dir).
        raise SystemExit(f"error: checkpoint unusable: {exc}")
    for note in runtime.resume_notes:
        print(f"WARNING {note}", file=sys.stderr)
    if runtime.resumed:
        print(
            f"resumed from {runtime.resume_origin} {checkpoint}",
            file=sys.stderr,
        )
    server = None
    if args.metrics_port is not None:
        from .obs import start_metrics_server

        server = start_metrics_server(
            runtime.registry, args.metrics_port
        )
        print(f"METRICS serving {server.url}", file=sys.stderr)
    try:
        try:
            stats = runtime.run(once=args.once)
        except KeyboardInterrupt:  # graceful stop; resume from checkpoint
            print("interrupted — state saved at last checkpoint",
                  file=sys.stderr)
            return 130
        if stats.health == "failed":
            print(
                f"error: stream failed: {stats.failure} — stopped at "
                f"last checkpoint; fix the IO problem and rerun to "
                f"resume",
                file=sys.stderr,
            )
            return 2
        if args.once:
            return 1 if stats.anomalous_sessions else 0
        return 0
    finally:
        if args.metrics_out:
            from .obs import write_snapshot

            write_snapshot(runtime.registry, args.metrics_out)
            print(
                f"METRICS written to {args.metrics_out}", file=sys.stderr
            )
        if server is not None:
            server.close()


def cmd_publish(args: argparse.Namespace) -> int:
    """Publish a trained model file into a serving registry."""
    from .core.config import DurabilityConfig
    from .serve import ModelRegistry, RegistryError

    store = _load_store(args.model)
    durability = (
        DurabilityConfig.durable() if args.fsync else DurabilityConfig()
    )
    try:
        registry = ModelRegistry(args.registry, durability=durability)
        version, digest = registry.publish(store, args.name)
    except RegistryError as exc:
        raise SystemExit(f"error: {exc}")
    print(f"published {args.name}@{version} ({digest})")
    return 0


def cmd_fsck(args: argparse.Namespace) -> int:
    """Check (and optionally repair) a registry's crash consistency.

    Scans for the debris a crash mid-publish or mid-swap can leave —
    orphaned artifacts, dangling index versions, truncated intent
    journals, stray temp files — and with ``--repair`` rolls each one
    forward or back.  Exit 0 when consistent (or fully repaired),
    1 when findings remain.
    """
    from .serve import run_fsck

    try:
        report = run_fsck(
            args.registry,
            checkpoint_dir=args.checkpoint_dir,
            repair=args.repair,
        )
    except OSError as exc:
        raise SystemExit(f"error: cannot scan {args.registry!r}: {exc}")
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.ok else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Multi-tenant serving: many log streams, shared model versions.

    Attaches every tenant in the ``--tenants`` file (TOML or JSON),
    then serves until interrupted — re-reading the file on change to
    attach/detach/swap tenants at runtime — or, with ``--drain``,
    processes everything currently available and exits.  Exit 1 when
    draining found anomalous sessions, 2 when the whole fleet is dead
    (every tenant quarantined or failed — mirroring ``watch``'s exit 2
    on an open breaker), 3 when only some tenants are parked at
    shutdown.
    """
    from .core.config import (
        DurabilityConfig,
        ServeConfig,
        SupervisorConfig,
    )
    from .serve import (
        DetectionService,
        ModelRegistry,
        RegistryError,
        apply_tenants,
        apply_tenants_file,
        load_tenants_file,
    )

    try:
        specs = load_tenants_file(args.tenants)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"error: tenants file unusable: {exc}")
    if not specs:
        raise SystemExit("error: tenants file declares no tenants")
    config = ServeConfig(
        workers=args.workers,
        global_session_budget=args.budget,
        quantum=args.quantum,
        queue_capacity=args.queue_capacity,
        poll_interval=args.poll_interval,
    )
    durability = (
        DurabilityConfig.durable() if args.fsync else DurabilityConfig()
    )
    supervisor_config = SupervisorConfig(
        restart_budget=args.restart_budget,
        restart_window=args.restart_window,
    )
    try:
        registry = ModelRegistry(args.registry, durability=durability)
    except RegistryError as exc:
        raise SystemExit(f"error: registry unusable: {exc}")
    from .obs import MetricsRegistry

    metrics = MetricsRegistry()
    service = DetectionService(
        registry,
        config,
        checkpoint_dir=args.checkpoint_dir,
        metrics=metrics,
        supervisor_config=supervisor_config,
        durability=durability,
    )
    if service.startup_fsck is not None and not service.startup_fsck.clean:
        print(
            f"FSCK repaired {len(service.startup_fsck.findings)} "
            f"finding(s) at startup",
            file=sys.stderr,
        )
    summary = apply_tenants(service, specs)
    attached = summary["attached"]
    if not attached:
        raise SystemExit("error: no tenant could be attached")
    print(
        f"serving {len(attached)} tenant(s): {', '.join(attached)}",
        file=sys.stderr,
    )
    server = None
    if args.metrics_port is not None:
        from .obs import MetricsServer

        server = MetricsServer(
            metrics,
            args.metrics_port,
            json_routes={"/tenants": service.tenants_status},
        )
        print(f"METRICS serving {server.url}", file=sys.stderr)
    try:
        try:
            if args.drain:
                status = service.drain()
            else:
                status = service.run(
                    duration=args.duration,
                    tenants_file=args.tenants,
                    apply_tenants_file=apply_tenants_file,
                )
        except KeyboardInterrupt:
            print(
                "interrupted — tenant state saved at last checkpoints",
                file=sys.stderr,
            )
            return 130
        if args.status_out:
            status = service.tenants_status()
            Path(args.status_out).write_text(
                json.dumps(status, indent=2, sort_keys=True) + "\n"
            )
            print(
                f"STATUS written to {args.status_out}", file=sys.stderr
            )
        parked = [
            t["tenant"] for t in status["tenants"]
            if t["failure"] or t["health"] in ("failed", "quarantined")
        ]
        for tenant in parked:
            print(f"error: tenant {tenant} is parked", file=sys.stderr)
        anomalous = sum(
            t["anomalous_sessions"] for t in status["tenants"]
        )
        if parked and len(parked) == len(status["tenants"]):
            print(
                f"FLEET dead: all {len(parked)} tenant(s) quarantined "
                f"or failed",
                file=sys.stderr,
            )
            return 2
        if parked:
            return 3
        if args.drain:
            return 1 if anomalous else 0
        return 0
    finally:
        service.close(flush=args.drain)
        if args.metrics_out:
            from .obs import write_snapshot

            write_snapshot(metrics, args.metrics_out)
            print(
                f"METRICS written to {args.metrics_out}", file=sys.stderr
            )
        if server is not None:
            server.close()


def cmd_stats(args: argparse.Namespace) -> int:
    """Render a saved ``--metrics-out`` snapshot as a readable table."""
    from .obs import render_snapshot

    try:
        snapshot = json.loads(Path(args.snapshot).read_text())
    except OSError as exc:
        raise SystemExit(
            f"error: cannot read snapshot {args.snapshot!r}: {exc}"
        )
    except json.JSONDecodeError as exc:
        raise SystemExit(
            f"error: {args.snapshot!r} is not JSON: {exc}"
        )
    try:
        print(render_snapshot(snapshot))
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    return 0


def cmd_lint_model(args: argparse.Namespace) -> int:
    """Static validation of a saved model's HW-graph artifacts.

    Exit status: 0 when clean (or warnings only), 1 on error-severity
    diagnostics — or on any diagnostic with ``--strict``.
    """
    store = _load_store(args.model)
    report = store.validate()
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        if report:
            print(report.render())
        print(f"{args.model}: {report.summary()}")
    failed = bool(report) if args.strict else report.has_errors
    return 1 if failed else 0


def cmd_lint_code(args: argparse.Namespace) -> int:
    """AST lint (determinism + hygiene rules) over source paths."""
    from .analysis.astlint import lint_paths

    try:
        report = lint_paths(args.paths)
    except FileNotFoundError as exc:
        raise SystemExit(f"error: {exc}")
    if report:
        print(report.render())
    print(report.summary())
    return 1 if report else 0


def cmd_lint_concurrency(args: argparse.Namespace) -> int:
    """Whole-program concurrency analysis (RACE001-RACE005).

    Exit status: 0 when clean, 1 on any finding, 2 on bad paths.
    """
    from .analysis.concurrency import main as concurrency_main

    argv = list(args.paths)
    if args.json:
        argv.append("--json")
    if args.dump_model:
        argv.append("--dump-model")
    return concurrency_main(argv)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="intellog",
        description="Semantic-aware workflow construction and anomaly "
                    "detection for distributed data analytics systems "
                    "(HPDC'19 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="learn a model from normal logs")
    train.add_argument("logs", nargs="+", help="log files")
    train.add_argument("--model", default="intellog-model.json")
    train.add_argument("--formatter", default="generic",
                       help="hadoop | spark | tez | yarn | generic")
    train.add_argument("--tau", type=float, default=1.7,
                       help="Spell matching threshold t (paper: 1.7)")
    train.add_argument("--workers", type=int, default=None, metavar="N",
                       help="train via the sharded parallel pipeline with "
                            "N worker processes (model is byte-identical "
                            "to serial; default: serial)")
    train.add_argument("--no-cache", dest="cache", action="store_false",
                       help="disable the Intel Key extraction memo cache "
                            "(slower; model is unchanged)")
    train.add_argument("--batch-records", type=int, default=None,
                       metavar="R",
                       help="target records per parallel shard batch "
                            "(performance knob; default derived from the "
                            "corpus size; model is unchanged)")
    train.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write a JSON metrics snapshot on exit")
    train.set_defaults(func=cmd_train, cache=True)

    detect = sub.add_parser("detect", help="check logs against a model")
    detect.add_argument("logs", nargs="+")
    detect.add_argument("--model", default="intellog-model.json")
    detect.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="write a JSON metrics snapshot on exit")
    detect.add_argument("--workers", type=int, default=1, metavar="N",
                        help="detect session chunks across N processes "
                             "(each loads its own model copy; metrics "
                             "then cover only the parent process)")
    detect.set_defaults(func=cmd_detect)

    inspect = sub.add_parser("inspect", help="print the HW-graph")
    inspect.add_argument("--model", default="intellog-model.json")
    inspect.add_argument("--json", action="store_true")
    inspect.add_argument("--subroutines", action="store_true")
    inspect.set_defaults(func=cmd_inspect)

    watch = sub.add_parser(
        "watch",
        help="stream a growing log file through live detection",
    )
    watch.add_argument("--model", default="intellog-model.json")
    watch.add_argument("--follow", required=True, metavar="FILE",
                       help="log file to tail")
    watch.add_argument("--formatter", default=None,
                       help="override the model's log formatter")
    watch.add_argument("--once", action="store_true",
                       help="drain the file and exit instead of tailing")
    watch.add_argument("--idle-timeout", type=float, default=300.0,
                       help="event-time seconds before an idle session "
                            "closes (default 300)")
    watch.add_argument("--max-sessions", type=int, default=10_000,
                       help="LRU cap on concurrently tracked sessions")
    watch.add_argument("--end-marker", action="append", metavar="REGEX",
                       help="session-end message pattern (repeatable; "
                            "replaces the built-in markers)")
    watch.add_argument("--checkpoint", default=None, metavar="PATH",
                       help="checkpoint file (default: next to the model)")
    watch.add_argument("--no-checkpoint", action="store_true",
                       help="run without checkpoint/resume")
    watch.add_argument("--jsonl", default=None, metavar="OUT",
                       help="append reports to this JSON-lines file "
                            "instead of stdout")
    watch.add_argument("--stats-every", type=int, default=1000,
                       help="emit runtime stats every N records "
                            "(0 disables)")
    watch.add_argument("--poll-interval", type=float, default=0.5,
                       help="seconds between polls of a quiet file")
    watch.add_argument("--quarantine", default=None, metavar="PATH",
                       help="append malformed input lines to this "
                            "JSON-lines dead-letter file")
    watch.add_argument("--retry-attempts", type=int, default=4,
                       help="IO retries per operation before giving up "
                            "on the cycle (default 4)")
    watch.add_argument("--fail-after", type=int, default=12,
                       help="consecutive IO failures before the watch "
                            "stops at its checkpoint (default 12)")
    watch.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write a JSON metrics snapshot on exit")
    watch.add_argument("--metrics-port", type=int, default=None,
                       metavar="PORT",
                       help="serve live Prometheus text exposition at "
                            "http://127.0.0.1:PORT/metrics (0 picks a "
                            "free port, printed to stderr)")
    watch.set_defaults(func=cmd_watch)

    publish = sub.add_parser(
        "publish",
        help="publish a trained model into a serving registry",
    )
    publish.add_argument("--model", default="intellog-model.json",
                         help="trained model file to publish")
    publish.add_argument("--name", required=True,
                         help="registry model name (versions are "
                              "sequential per name)")
    publish.add_argument("--registry", default="serve-registry",
                         metavar="DIR",
                         help="registry directory (default: "
                              "serve-registry)")
    publish.add_argument("--fsync", action="store_true",
                         help="fsync artifact, index and journal writes "
                              "(survives power loss, not just crashes)")
    publish.set_defaults(func=cmd_publish)

    fsck = sub.add_parser(
        "fsck",
        help="check/repair a registry after a crash",
    )
    fsck.add_argument("--registry", default="serve-registry",
                      metavar="DIR", help="registry directory to scan")
    fsck.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                      help="also scan per-tenant checkpoints for stray "
                           "temp files and swap journals")
    fsck.add_argument("--repair", action="store_true",
                      help="roll findings forward/back instead of just "
                           "reporting them")
    fsck.add_argument("--json", action="store_true",
                      help="machine-readable report")
    fsck.set_defaults(func=cmd_fsck)

    serve = sub.add_parser(
        "serve",
        help="serve many tenant streams over shared model versions",
    )
    serve.add_argument("--tenants", required=True, metavar="FILE",
                       help="tenants file (TOML or JSON); re-read on "
                            "change while serving")
    serve.add_argument("--registry", default="serve-registry",
                       metavar="DIR", help="model registry directory")
    serve.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                       help="directory for per-tenant checkpoints "
                            "(default: no checkpoints)")
    serve.add_argument("--drain", action="store_true",
                       help="process everything available, flush every "
                            "session, and exit")
    serve.add_argument("--duration", type=float, default=None,
                       metavar="SECONDS", help="stop after this long")
    serve.add_argument("--workers", type=int, default=4,
                       help="scheduler threads (0 = inline, "
                            "deterministic; default 4)")
    serve.add_argument("--budget", type=int, default=100_000,
                       help="global cap on open sessions across all "
                            "tenants (default 100000)")
    serve.add_argument("--quantum", type=int, default=512,
                       help="max records per tenant per scheduling "
                            "turn (default 512)")
    serve.add_argument("--queue-capacity", type=int, default=8192,
                       help="per-tenant ingest queue bound; overflow "
                            "sheds oldest (default 8192)")
    serve.add_argument("--poll-interval", type=float, default=0.2,
                       help="idle pacing between sweeps (default 0.2)")
    serve.add_argument("--fsync", action="store_true",
                       help="fsync checkpoints, registry and journal "
                            "writes (power-loss durability)")
    serve.add_argument("--restart-budget", type=int, default=5,
                       help="supervised restarts allowed per tenant "
                            "inside the rolling window before "
                            "quarantine (default 5)")
    serve.add_argument("--restart-window", type=float, default=300.0,
                       help="rolling window in seconds for the restart "
                            "budget (default 300)")
    serve.add_argument("--status-out", default=None, metavar="PATH",
                       help="write the final /tenants JSON document "
                            "here on exit")
    serve.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write a JSON metrics snapshot on exit")
    serve.add_argument("--metrics-port", type=int, default=None,
                       metavar="PORT",
                       help="serve /metrics and /tenants at "
                            "http://127.0.0.1:PORT (0 picks a free "
                            "port, printed to stderr)")
    serve.set_defaults(func=cmd_serve)

    stats = sub.add_parser(
        "stats",
        help="render a --metrics-out JSON snapshot as a readable table",
    )
    stats.add_argument("snapshot", help="metrics snapshot file")
    stats.set_defaults(func=cmd_stats)

    lint_model = sub.add_parser(
        "lint-model",
        help="statically validate a saved model's HW-graph artifacts",
    )
    lint_model.add_argument("--model", default="intellog-model.json")
    lint_model.add_argument("--json", action="store_true",
                            help="machine-readable diagnostics")
    lint_model.add_argument("--strict", action="store_true",
                            help="fail on warnings too, not just errors")
    lint_model.set_defaults(func=cmd_lint_model)

    lint_code = sub.add_parser(
        "lint-code",
        help="AST lint: determinism contract + Python hygiene",
    )
    lint_code.add_argument("paths", nargs="*", default=["src"],
                           help="files or directories (default: src)")
    lint_code.set_defaults(func=cmd_lint_code)

    lint_conc = sub.add_parser(
        "lint-concurrency",
        help="whole-program race/lock-order/fork-safety analysis",
    )
    lint_conc.add_argument("paths", nargs="*", default=[],
                           help="files or directories "
                                "(default: src/repro)")
    lint_conc.add_argument("--json", action="store_true",
                           help="machine-readable diagnostics")
    lint_conc.add_argument("--dump-model", action="store_true",
                           help="print the per-class lock/sharing model")
    lint_conc.set_defaults(func=cmd_lint_concurrency)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
