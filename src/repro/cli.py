"""Command-line interface: ``intellog train|detect|inspect``.

Mirrors how the original tool is operated: train a model from normal-run
log files, persist it as JSON, then check new log files against it.

    intellog train  --formatter spark --model model.json train1.log ...
    intellog detect --model model.json suspicious.log
    intellog inspect --model model.json [--subroutines]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .core.intellog import IntelLog
from .core.config import IntelLogConfig
from .graph.render import render_summary, render_tree, to_json


def _read_lines(paths: list[str]) -> list[str]:
    lines: list[str] = []
    for path in paths:
        lines.extend(Path(path).read_text().splitlines())
    return lines


def cmd_train(args: argparse.Namespace) -> int:
    config = IntelLogConfig(
        spell_tau=args.tau, formatter=args.formatter
    )
    intellog = IntelLog(config)
    summary = intellog.train_lines(_read_lines(args.logs))
    print(
        f"trained on {summary.sessions} sessions / {summary.messages} "
        f"messages -> {summary.log_keys} log keys, "
        f"{summary.entity_groups} entity groups "
        f"({summary.critical_groups} critical)"
    )
    model = {
        "config": {"spell_tau": args.tau, "formatter": args.formatter},
        "hw_graph": intellog.hw_graph().to_dict(),
        "log_keys": [
            {"key_id": k.key_id, "tokens": k.tokens, "sample": k.sample}
            for k in intellog.spell.keys()
        ],
    }
    Path(args.model).write_text(json.dumps(model, indent=2))
    print(f"model written to {args.model}")
    return 0


def _load(args: argparse.Namespace) -> IntelLog:
    """Rebuild an IntelLog from a saved model by replaying key samples.

    (The HW-graph statistics are retrained from the detect input when only
    a model file is available; full fidelity requires the training logs —
    this loader restores the log keys and Intel Keys, which is what
    unexpected-message detection needs.)
    """
    model = json.loads(Path(args.model).read_text())
    config = IntelLogConfig(
        spell_tau=model["config"]["spell_tau"],
        formatter=model["config"]["formatter"],
    )
    intellog = IntelLog(config)
    from .parsing.spell import LogKey

    for entry in model["log_keys"]:
        key = LogKey(
            key_id=entry["key_id"],
            tokens=list(entry["tokens"]),
            sample=entry["sample"],
        )
        intellog.spell._keys.append(key)  # restoring persisted state
        intellog.spell._next_id += 1
    intellog.spell._reindex()
    intellog.intel_keys = intellog.extractor.build_all(
        intellog.spell.keys()
    )
    from .graph.hwgraph import HWGraphBuilder

    builder = HWGraphBuilder(intellog.intel_keys)
    intellog.graph = builder.build()
    from .detection.detector import AnomalyDetector

    intellog._detector = AnomalyDetector(
        intellog.graph, intellog.spell, intellog.extractor,
        config.detector,
    )
    return intellog


def cmd_detect(args: argparse.Namespace) -> int:
    intellog = _load(args)
    report = intellog.detect_lines(_read_lines(args.logs), job_id="cli")
    print(json.dumps(report.to_dict(), indent=2))
    return 1 if report.anomalous else 0


def cmd_inspect(args: argparse.Namespace) -> int:
    intellog = _load(args)
    graph = intellog.hw_graph()
    if args.json:
        print(to_json(graph))
    else:
        print(render_summary(graph))
        print(render_tree(graph, show_subroutines=args.subroutines))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="intellog",
        description="Semantic-aware workflow construction and anomaly "
                    "detection for distributed data analytics systems "
                    "(HPDC'19 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="learn a model from normal logs")
    train.add_argument("logs", nargs="+", help="log files")
    train.add_argument("--model", default="intellog-model.json")
    train.add_argument("--formatter", default="generic",
                       help="hadoop | spark | tez | yarn | generic")
    train.add_argument("--tau", type=float, default=1.7,
                       help="Spell matching threshold t (paper: 1.7)")
    train.set_defaults(func=cmd_train)

    detect = sub.add_parser("detect", help="check logs against a model")
    detect.add_argument("logs", nargs="+")
    detect.add_argument("--model", default="intellog-model.json")
    detect.set_defaults(func=cmd_detect)

    inspect = sub.add_parser("inspect", help="print the HW-graph")
    inspect.add_argument("--model", default="intellog-model.json")
    inspect.add_argument("--json", action="store_true")
    inspect.add_argument("--subroutines", action="store_true")
    inspect.set_defaults(func=cmd_inspect)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
