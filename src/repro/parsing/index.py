"""Exact-template trie index for the Spell match hot path (ROADMAP 2).

Detection-time matching used to scan every candidate log key and run the
greedy aligner (:func:`~repro.parsing.spell.extract_parameters`) against
each one; with ``match_attempts.hit`` at 100% in the detect bench, the
overwhelming common case paid an O(candidates × template) scan for what
is conceptually a dictionary lookup.  :class:`TemplateIndex` turns that
case into a near-O(template length) trie walk:

* every template with at least one constant token is inserted as a
  root-to-terminal path whose edges are its constant tokens, with each
  *run* of adjacent ``*`` tokens collapsed into a single star edge
  (the greedy aligner treats a star run exactly like one star: one
  capture, skip to the next constant);
* a lookup walks the trie with the aligner's own greedy semantics — a
  constant edge consumes exactly one matching token, a star edge
  absorbs tokens up to the *first* occurrence of the next constant
  (or the rest of the sequence when the template ends with a star);
* terminals carry ``(key index, constant count)`` so the caller can
  apply most-specific-wins tie-breaking (most constants, then lowest
  key index) over the matched set.

The index invariant, relied on by the differential parity harness
(``tests/test_match_parity.py``):

    ``lookup(seq)`` returns exactly the key indices ``i`` for which
    ``extract_parameters(keys[i].tokens, seq) is not None`` and
    ``keys[i]`` has at least one constant token.

i.e. the trie's answers equal the scan's answers — same set, and under
most-specific-wins the same winner.  Greedy (not subsequence) semantics
matter: template ``[*, a, b]`` does *not* align with ``[x, a, c, a, b]``
because the star stops at the first ``a``; the walk reproduces that.

Maintenance is incremental: training-time ``lcs_merge`` drift updates
the affected path only (:meth:`update`), never a full rebuild.
:meth:`snapshot` produces a canonical structure so property tests can
assert the incrementally-maintained index equals a from-scratch one.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Any, Iterable, Sequence

__all__ = ["TemplateIndex"]

STAR = "*"


class _Node:
    """One trie node: constant-token edges, an optional star edge, and
    the keys whose (star-collapsed) template ends here."""

    __slots__ = ("children", "star", "terminal")

    def __init__(self) -> None:
        self.children: dict[str, "_Node"] = {}
        self.star: "_Node | None" = None
        #: Ascending ``(key index, constant count)`` pairs.
        self.terminal: list[tuple[int, int]] = []

    def empty(self) -> bool:
        return not self.children and self.star is None and not self.terminal


def _collapse(tokens: Sequence[str]) -> list[str]:
    """Template path with every star run collapsed to a single star."""
    path: list[str] = []
    for token in tokens:
        if token == STAR and path and path[-1] == STAR:
            continue
        path.append(token)
    return path


class TemplateIndex:
    """Trie over template constants; see the module docstring."""

    def __init__(self) -> None:
        self._root = _Node()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # -- maintenance ------------------------------------------------------

    def insert(self, idx: int, tokens: Sequence[str]) -> None:
        """Index key ``idx`` under template ``tokens``.

        Templates with no constant token (the reserved all-variable key)
        are not indexed — they would align with anything and are matched
        by the parser's dedicated no-constant branch.
        """
        n_consts = sum(1 for t in tokens if t != STAR)
        if n_consts == 0:
            return
        node = self._root
        for token in _collapse(tokens):
            if token == STAR:
                if node.star is None:
                    node.star = _Node()
                node = node.star
            else:
                node = node.children.setdefault(token, _Node())
        insort(node.terminal, (idx, n_consts))
        self._size += 1

    def remove(self, idx: int, tokens: Sequence[str]) -> None:
        """Drop key ``idx``'s entry for ``tokens``, pruning empty nodes
        so the structure stays equal to a from-scratch rebuild."""
        n_consts = sum(1 for t in tokens if t != STAR)
        if n_consts == 0:
            return
        path: list[tuple[_Node, str]] = []  # (parent, edge taken)
        node = self._root
        for token in _collapse(tokens):
            path.append((node, token))
            node = node.star if token == STAR else node.children.get(token)
            if node is None:
                return  # not indexed (defensive; nothing to remove)
        pos = bisect_left(node.terminal, (idx, n_consts))
        if pos < len(node.terminal) and node.terminal[pos] == (
            idx, n_consts,
        ):
            node.terminal.pop(pos)
            self._size -= 1
        while path and node.empty():
            parent, edge = path.pop()
            if edge == STAR:
                parent.star = None
            else:
                del parent.children[edge]
            node = parent

    def update(
        self, idx: int, old_tokens: Sequence[str],
        new_tokens: Sequence[str],
    ) -> None:
        """Move key ``idx`` from ``old_tokens`` to ``new_tokens``
        (training-time ``lcs_merge`` drift)."""
        self.remove(idx, old_tokens)
        self.insert(idx, new_tokens)

    def rebuild(self, templates: Iterable[Sequence[str]]) -> None:
        """Reset and re-index every template (model deserialization)."""
        self._root = _Node()
        self._size = 0
        for idx, tokens in enumerate(templates):
            self.insert(idx, tokens)

    # -- lookup -----------------------------------------------------------

    def lookup(self, seq: Sequence[str]) -> list[tuple[int, int]]:
        """All ``(key index, constant count)`` whose template aligns
        greedily with ``seq``, ascending by key index."""
        matches: list[tuple[int, int]] = []
        # Lazily built first-occurrence table: token -> ascending
        # positions in seq, consulted only when a star edge needs the
        # "first occurrence of the next constant at or after j" jump.
        positions: dict[str, list[int]] | None = None

        def occurrences() -> dict[str, list[int]]:
            nonlocal positions
            if positions is None:
                positions = {}
                for k, token in enumerate(seq):
                    positions.setdefault(token, []).append(k)
            return positions

        m = len(seq)
        stack: list[tuple[_Node, int]] = [(self._root, 0)]
        while stack:
            node, j = stack.pop()
            if j == m and node.terminal:
                matches.extend(node.terminal)
            if j < m:
                child = node.children.get(seq[j])
                if child is not None:
                    stack.append((child, j + 1))
            star = node.star
            if star is None:
                continue
            # A trailing star absorbs the rest of seq (even nothing).
            if star.terminal:
                matches.extend(star.terminal)
            if j < m and star.children:
                occ = occurrences()
                for token, child in star.children.items():
                    hits = occ.get(token)
                    if hits is None:
                        continue
                    pos = bisect_left(hits, j)
                    if pos < len(hits):
                        stack.append((child, hits[pos] + 1))
        matches.sort()
        return matches

    # -- introspection ----------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Canonical nested structure (for equality in property tests)."""

        def dump(node: _Node) -> dict[str, Any]:
            out: dict[str, Any] = {}
            if node.terminal:
                out["terminal"] = list(node.terminal)
            if node.children:
                out["children"] = {
                    token: dump(child)
                    for token, child in sorted(node.children.items())
                }
            if node.star is not None:
                out["star"] = dump(node.star)
            return out

        return dump(self._root)
