"""Spell: streaming structured log-key extraction (Du & Li, ICDM'17).

IntelLog's first stage (paper §2.1) uses Spell to abstract raw log messages
into *log keys*: the constant text of the printing statement with every
variable field replaced by an asterisk.  This module implements the
streaming algorithm — for each incoming message, find the existing key with
the longest common subsequence (LCS) above a threshold and merge, otherwise
create a new key.

The matching threshold follows the IntelLog implementation: a message of
``n`` tokens matches a key when ``|LCS| >= n / t`` with the empirically set
``t = 1.7`` (paper §5).  The original Spell paper uses ``t = 2``.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

from ..nlp.tokenizer import tokenize

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs import MetricsRegistry

log = logging.getLogger(__name__)

STAR = "*"

#: Token kinds that are variable by construction and are masked to ``*``
#: before template matching (the standard log-parser preprocessing step:
#: identifiers, numerals and localities can never be template constants).
_VARIABLE_KINDS = frozenset({"ident", "number", "hostport", "path"})


def mask_message(message: str) -> tuple[list[str], list[str]]:
    """Tokenize ``message`` returning (masked tokens, raw tokens).

    Masked tokens replace identifier/number/locality tokens with ``*``.
    """
    raw: list[str] = []
    masked: list[str] = []
    for token in tokenize(message):
        raw.append(token.text)
        masked.append(STAR if token.kind in _VARIABLE_KINDS else token.text)
    return masked, raw


def lcs_length(a: Sequence[str], b: Sequence[str]) -> int:
    """Length of the longest common subsequence of token lists ``a``, ``b``."""
    if not a or not b:
        return 0
    # Single-row DP; O(len(a) * len(b)).
    prev = [0] * (len(b) + 1)
    for x in a:
        curr = [0] * (len(b) + 1)
        for j, y in enumerate(b, 1):
            if x == y:
                curr[j] = prev[j - 1] + 1
            else:
                curr[j] = max(prev[j], curr[j - 1])
        prev = curr
    return prev[-1]


def lcs_merge(a: Sequence[str], b: Sequence[str]) -> list[str]:
    """Merge two token sequences into a template.

    Tokens on the LCS are kept; any gap (tokens unique to either side)
    becomes a single ``*``.  Existing ``*`` tokens never participate in the
    LCS, so variable positions stay variable.
    """
    n, m = len(a), len(b)
    dp = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(n - 1, -1, -1):
        for j in range(m - 1, -1, -1):
            if a[i] == b[j] and a[i] != STAR:
                dp[i][j] = dp[i + 1][j + 1] + 1
            else:
                dp[i][j] = max(dp[i + 1][j], dp[i][j + 1])
    result: list[str] = []
    i = j = 0

    def emit_star() -> None:
        if not result or result[-1] != STAR:
            result.append(STAR)

    while i < n and j < m:
        if a[i] == b[j] and a[i] != STAR:
            result.append(a[i])
            i += 1
            j += 1
        elif dp[i + 1][j] >= dp[i][j + 1]:
            emit_star()
            i += 1
        else:
            emit_star()
            j += 1
    if i < n or j < m:
        emit_star()
    return result


@dataclass(slots=True)
class LogKey:
    """A log key: template tokens plus bookkeeping.

    ``sample`` is the first raw message that created the key; IntelLog feeds
    the sample (not the starred template) to the POS tagger (§3, Figure 3).
    """

    key_id: str
    tokens: list[str]
    sample: str
    count: int = 0
    line_ids: list[int] = field(default_factory=list)

    @property
    def template(self) -> str:
        return " ".join(self.tokens)

    def constant_tokens(self) -> list[str]:
        return [t for t in self.tokens if t != STAR]

    def __str__(self) -> str:  # pragma: no cover
        return f"{self.key_id}: {self.template}"


@dataclass(slots=True)
class MatchResult:
    """Result of matching one message against the key set."""

    key: LogKey
    #: Values captured by each ``*`` position, in template order.  One star
    #: may capture several adjacent tokens (joined by a space).
    parameters: list[str]
    #: True when the message matched the key by LCS similarity but could
    #: not be aligned against its template, so ``parameters`` is empty
    #: despite the raw message carrying variable fields.  Callers that
    #: care about parameter-level checks should treat such matches as
    #: parameter-free rather than parameter-less-by-construction.
    misaligned: bool = False


class _SpellMetrics:
    """Registry handles for one instrumented :class:`SpellParser`."""

    __slots__ = (
        "match_attempts", "lcs_comparisons", "keys", "match_seconds",
        "param_misaligned",
    )

    def __init__(self, registry: "MetricsRegistry") -> None:
        self.match_attempts = registry.counter(
            "spell_match_attempts_total",
            "Detection-side match() calls by result (hit/miss).",
        )
        self.lcs_comparisons = registry.counter(
            "spell_lcs_comparisons_total",
            "LCS similarity computations performed while matching.",
        )
        self.keys = registry.gauge(
            "spell_keys",
            "Log keys currently known to the parser.",
        )
        self.match_seconds = registry.histogram(
            "spell_match_seconds",
            "Latency of one match() call.",
        )
        self.param_misaligned = registry.counter(
            "spell_param_misaligned_total",
            "Matches whose raw message could not be aligned against the "
            "matched template (parameters dropped), by key.",
        )


class SpellParser:
    """Streaming log-key extractor.

    Usage::

        parser = SpellParser()
        for message in stream:
            key = parser.consume(message)
        parser.keys()  # all discovered log keys
    """

    def __init__(self, tau: float = 1.7) -> None:
        if tau <= 1.0:
            raise ValueError("tau must be > 1 (match if |LCS| >= n/tau)")
        self.tau = tau
        self._keys: list[LogKey] = []
        self._next_id = 0
        self._line_counter = 0
        # Inverted index: constant token -> key indices, to prune the scan.
        self._token_index: dict[str, set[int]] = {}
        self._metrics: _SpellMetrics | None = None
        # Keys already warned about for template/raw misalignment (the
        # log line fires once per key; the counter counts every event).
        self._misaligned_keys: set[str] = set()

    def instrument(self, registry: "MetricsRegistry") -> "SpellParser":
        """Attach metrics (idempotent); returns ``self`` for chaining."""
        self._metrics = _SpellMetrics(registry)
        self._metrics.keys.set(len(self._keys))
        return self

    def view(self) -> "SpellParser":
        """A detection-only view sharing this parser's learned keys.

        The view aliases ``_keys`` and the inverted index — the two
        structures that are immutable once training ends — while owning
        its instrumentation and misalignment bookkeeping, so several
        tenants can :meth:`match` against one in-memory model without
        their metrics clobbering each other.  Views must never
        :meth:`consume` (that would mutate the shared key list under
        every other view's feet); the serving layer only calls
        ``match``.
        """
        clone = SpellParser.__new__(SpellParser)
        clone.tau = self.tau
        clone._keys = self._keys
        clone._token_index = self._token_index
        clone._next_id = self._next_id
        clone._line_counter = self._line_counter
        clone._metrics = None
        clone._misaligned_keys = set()
        return clone

    # -- training ----------------------------------------------------------

    def consume(self, message: str) -> LogKey:
        """Process one message, returning the (possibly new) log key."""
        seq, _ = mask_message(message)
        self._line_counter += 1
        if not [t for t in seq if t != STAR]:
            # Messages with no constant tokens (empty or all-variable)
            # share one reserved key; they carry no template information.
            best = next(
                (k for k in self._keys if not k.constant_tokens()), None
            )
            if best is None:
                best = LogKey(
                    key_id=f"K{self._next_id}", tokens=list(seq),
                    sample=message,
                )
                self._next_id += 1
                self._keys.append(best)
            best.count += 1
            best.line_ids.append(self._line_counter)
            return best
        best = self._find_best(seq)
        if best is None:
            key = LogKey(
                key_id=f"K{self._next_id}",
                tokens=list(seq),
                sample=message,
            )
            self._next_id += 1
            self._keys.append(key)
            self._index_key(len(self._keys) - 1, key)
        else:
            key = best
            merged = lcs_merge(key.tokens, seq)
            if merged != key.tokens:
                key.tokens = merged
                self._reindex()
        key.count += 1
        key.line_ids.append(self._line_counter)
        if self._metrics is not None:
            self._metrics.keys.set(len(self._keys))
        return key

    def consume_all(self, messages: Iterable[str]) -> list[LogKey]:
        return [self.consume(m) for m in messages]

    # -- lookup (detection phase; never creates keys) ------------------------

    def match(self, message: str) -> MatchResult | None:
        """Match a message against the learned keys without mutating them."""
        metrics = self._metrics
        if metrics is None:
            return self._match_uninstrumented(message)
        start = time.perf_counter()
        result = self._match_uninstrumented(message)
        metrics.match_seconds.observe(time.perf_counter() - start)
        metrics.match_attempts.labels(
            result="hit" if result is not None else "miss"
        ).inc()
        return result

    def _match_uninstrumented(self, message: str) -> MatchResult | None:
        masked, raw = mask_message(message)
        if not [t for t in masked if t != STAR]:
            reserved = next(
                (k for k in self._keys if not k.constant_tokens()), None
            )
            if reserved is None:
                return None
            return MatchResult(key=reserved, parameters=list(raw))
        key = self._find_best(masked)
        if key is None:
            return None
        params = extract_parameters(key.tokens, raw)
        if params is None:
            # LCS said the message belongs to this key, but the greedy
            # aligner could not map its raw tokens onto the template
            # (usually a template that drifted during training).  The
            # parameters are unknowable, not absent — flag it instead of
            # silently pretending the message carried none.
            self._note_misalignment(key)
            return MatchResult(key=key, parameters=[], misaligned=True)
        return MatchResult(key=key, parameters=params)

    def _note_misalignment(self, key: LogKey) -> None:
        if self._metrics is not None:
            self._metrics.param_misaligned.labels(key=key.key_id).inc()
        if key.key_id not in self._misaligned_keys:
            self._misaligned_keys.add(key.key_id)
            log.warning(
                "parameter extraction misaligned for key %s (template %r); "
                "parameters dropped for such messages",
                key.key_id, key.template,
            )

    def keys(self) -> list[LogKey]:
        return list(self._keys)

    def __len__(self) -> int:
        return len(self._keys)

    # -- replay support (parallel training) ----------------------------------

    def rebuild_bookkeeping(
        self, line_ids_by_key: dict[str, list[int]], total_lines: int
    ) -> None:
        """Overwrite per-key occurrence bookkeeping after a form replay.

        The parallel trainer (:mod:`repro.parallel`) discovers log keys by
        consuming each *distinct masked form* once, then accounts for the
        duplicate occurrences in bulk: ``line_ids_by_key`` maps each key to
        the 1-based global line numbers of every message it matched, in any
        order (they are sorted here, matching the streaming parser's
        consumption-order append).
        """
        for key in self._keys:
            ids = sorted(line_ids_by_key.get(key.key_id, ()))
            key.line_ids = list(ids)
            key.count = len(ids)
        self._line_counter = total_lines

    # -- internals -----------------------------------------------------------

    def _threshold(self, seq_len: int, template_len: int) -> float:
        # Similarity is measured against the shorter of the two sequences:
        # a message whose constant backbone is fully explained by a shorter
        # template must still match it (e.g. state-transition keys whose
        # long variable tails differ), which is how the IntelLog Spell
        # deployment behaves with its empirical t = 1.7 (paper §5).
        return min(seq_len, template_len) / self.tau

    def _candidates(self, seq: list[str]) -> set[int]:
        cands: set[int] = set()
        for token in seq:
            cands |= self._token_index.get(token, set())
        return cands if cands else set(range(len(self._keys)))

    def _find_best(self, seq: list[str]) -> LogKey | None:
        candidates = self._candidates(seq)

        # Fast path: a key whose template aligns exactly (constants in
        # order, stars absorbing the rest) is always the right match; pick
        # the most specific (most constants) such key.
        aligned: LogKey | None = None
        aligned_consts = 0
        for idx in candidates:
            key = self._keys[idx]
            # Keys without constants (the reserved all-variable key) would
            # align with anything; they are matched only by the dedicated
            # no-constant branch of consume()/match().
            n_consts = len(key.constant_tokens())
            if n_consts == 0:
                continue
            if extract_parameters(key.tokens, seq) is not None:
                if n_consts > aligned_consts:
                    aligned, aligned_consts = key, n_consts
        if aligned is not None:
            return aligned

        best_key: LogKey | None = None
        best_len = 0
        lcs_calls = 0
        for idx in candidates:
            key = self._keys[idx]
            consts = key.constant_tokens()
            # Cheap upper bound prune.
            if min(len(consts), len(seq)) <= best_len:
                continue
            lcs_calls += 1
            common = lcs_length(consts, seq)
            if common >= self._threshold(len(seq), len(key.tokens)) and (
                common > best_len
            ):
                best_key, best_len = key, common
        if lcs_calls and self._metrics is not None:
            self._metrics.lcs_comparisons.inc(lcs_calls)
        return best_key

    def _index_key(self, idx: int, key: LogKey) -> None:
        for token in key.constant_tokens():
            self._token_index.setdefault(token, set()).add(idx)

    def _reindex(self) -> None:
        self._token_index.clear()
        for idx, key in enumerate(self._keys):
            self._index_key(idx, key)


def extract_parameters(
    template: Sequence[str], seq: Sequence[str]
) -> list[str] | None:
    """Align ``seq`` against ``template``, returning the ``*`` captures.

    Greedy alignment: constant template tokens must appear in order in the
    message; tokens between them are assigned to the interleaved stars.
    Returns None when the message cannot be aligned.
    """
    captures: list[str] = []
    i = 0  # template position
    j = 0  # sequence position
    n, m = len(template), len(seq)
    while i < n:
        tok = template[i]
        if tok != STAR:
            if j < m and seq[j] == tok:
                i += 1
                j += 1
                continue
            return None
        # A star: capture up to the next constant token.
        nxt = i + 1
        while nxt < n and template[nxt] == STAR:
            nxt += 1
        if nxt == n:
            captures.append(" ".join(seq[j:]))
            return captures
        anchor = template[nxt]
        k = j
        while k < m and seq[k] != anchor:
            k += 1
        if k == m:
            return None
        captures.append(" ".join(seq[j:k]))
        i = nxt
        j = k
    if j != m:
        return None
    return captures
