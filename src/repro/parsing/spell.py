"""Spell: streaming structured log-key extraction (Du & Li, ICDM'17).

IntelLog's first stage (paper §2.1) uses Spell to abstract raw log messages
into *log keys*: the constant text of the printing statement with every
variable field replaced by an asterisk.  This module implements the
streaming algorithm — for each incoming message, find the existing key with
the longest common subsequence (LCS) above a threshold and merge, otherwise
create a new key.

The matching threshold follows the IntelLog implementation: a message of
``n`` tokens matches a key when ``|LCS| >= n / t`` with the empirically set
``t = 1.7`` (paper §5).  The original Spell paper uses ``t = 2``.

Matching is tiered (ROADMAP 2 — "as fast as the hardware allows"):

1. **exact** — the masked message aligns greedily against a known
   template; resolved by a :class:`~repro.parsing.index.TemplateIndex`
   trie walk in near-O(message length), with most-specific-wins
   (most constants, then lowest key index) tie-breaking;
2. **lcs** — drift fallback: an LCS similarity scan over the keys that
   share at least one constant token with the message;
3. **miss** — no key shares a constant token.  Because an LCS above the
   threshold needs at least one common constant, such messages provably
   cannot match and the scan is skipped entirely (the old code paid a
   full-key-set LCS scan here).

The tiers are observable via ``spell_index_hits_total{path=...}`` and the
per-path ``spell_match_seconds`` histogram.  The differential parity
harness (``tests/test_match_parity.py``) proves the tiered matcher
returns results identical to the original full scan.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

from ..nlp.tokenizer import tokenize
from .index import TemplateIndex

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs import MetricsRegistry

log = logging.getLogger(__name__)

STAR = "*"

#: Token kinds that are variable by construction and are masked to ``*``
#: before template matching (the standard log-parser preprocessing step:
#: identifiers, numerals and localities can never be template constants).
_VARIABLE_KINDS = frozenset({"ident", "number", "hostport", "path"})

#: Whitespace-delimited chunk -> (masked tokens, raw tokens) memo.  No
#: token pattern can span whitespace, so tokenizing chunk-by-chunk is
#: exactly equivalent to tokenizing the whole message (proven by
#: ``tests/test_match_parity.py``); log streams draw their chunks from a
#: small working vocabulary, so the memo turns the regex tokenizer —
#: the dominant cost of a match — into a few dict hits per message.
#: Bounded by wholesale reset; worst case under races is a duplicate
#: tokenize, never a wrong one.
_CHUNK_MEMO: dict[str, tuple[tuple[str, ...], tuple[str, ...]]] = {}
_CHUNK_MEMO_CAP = 65536


def _tokenize_chunk(chunk: str) -> tuple[tuple[str, ...], tuple[str, ...]]:
    masked: list[str] = []
    raw: list[str] = []
    for token in tokenize(chunk):
        raw.append(token.text)
        masked.append(
            STAR if token.kind in _VARIABLE_KINDS else token.text
        )
    return tuple(masked), tuple(raw)


def mask_message(message: str) -> tuple[list[str], list[str]]:
    """Tokenize ``message`` returning (masked tokens, raw tokens).

    Masked tokens replace identifier/number/locality tokens with ``*``.
    """
    masked: list[str] = []
    raw: list[str] = []
    memo = _CHUNK_MEMO
    for chunk in message.split():
        entry = memo.get(chunk)
        if entry is None:
            entry = _tokenize_chunk(chunk)
            if len(memo) >= _CHUNK_MEMO_CAP:
                memo.clear()
            memo[chunk] = entry
        masked.extend(entry[0])
        raw.extend(entry[1])
    return masked, raw


def lcs_length(a: Sequence[str], b: Sequence[str]) -> int:
    """Length of the longest common subsequence of token lists ``a``, ``b``."""
    if not a or not b:
        return 0
    # Single-row DP; O(len(a) * len(b)).
    prev = [0] * (len(b) + 1)
    for x in a:
        curr = [0] * (len(b) + 1)
        for j, y in enumerate(b, 1):
            if x == y:
                curr[j] = prev[j - 1] + 1
            else:
                curr[j] = max(prev[j], curr[j - 1])
        prev = curr
    return prev[-1]


def lcs_merge(a: Sequence[str], b: Sequence[str]) -> list[str]:
    """Merge two token sequences into a template.

    Tokens on the LCS are kept; any gap (tokens unique to either side)
    becomes a single ``*``.  Existing ``*`` tokens never participate in the
    LCS, so variable positions stay variable.
    """
    n, m = len(a), len(b)
    dp = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(n - 1, -1, -1):
        for j in range(m - 1, -1, -1):
            if a[i] == b[j] and a[i] != STAR:
                dp[i][j] = dp[i + 1][j + 1] + 1
            else:
                dp[i][j] = max(dp[i + 1][j], dp[i][j + 1])
    result: list[str] = []
    i = j = 0

    def emit_star() -> None:
        if not result or result[-1] != STAR:
            result.append(STAR)

    while i < n and j < m:
        if a[i] == b[j] and a[i] != STAR:
            result.append(a[i])
            i += 1
            j += 1
        elif dp[i + 1][j] >= dp[i][j + 1]:
            emit_star()
            i += 1
        else:
            emit_star()
            j += 1
    if i < n or j < m:
        emit_star()
    return result


@dataclass(slots=True)
class LogKey:
    """A log key: template tokens plus bookkeeping.

    ``sample`` is the first raw message that created the key; IntelLog feeds
    the sample (not the starred template) to the POS tagger (§3, Figure 3).
    """

    key_id: str
    tokens: list[str]
    sample: str
    count: int = 0
    line_ids: list[int] = field(default_factory=list)

    @property
    def template(self) -> str:
        return " ".join(self.tokens)

    def constant_tokens(self) -> list[str]:
        return [t for t in self.tokens if t != STAR]

    def __str__(self) -> str:  # pragma: no cover
        return f"{self.key_id}: {self.template}"


@dataclass(slots=True)
class MatchResult:
    """Result of matching one message against the key set."""

    key: LogKey
    #: Values captured by each ``*`` position, in template order.  One star
    #: may capture several adjacent tokens (joined by a space).
    parameters: list[str]
    #: True when the message matched the key by LCS similarity but could
    #: not be aligned against its template, so ``parameters`` is empty
    #: despite the raw message carrying variable fields.  Callers that
    #: care about parameter-level checks should treat such matches as
    #: parameter-free rather than parameter-less-by-construction.
    misaligned: bool = False
    #: Raw token texts of the matched message (tokenizer output), so
    #: downstream extraction can reuse them instead of re-tokenizing.
    raw_tokens: list[str] | None = None


#: Match-path labels (``spell_index_hits_total{path=...}``).
PATH_EXACT = "exact"
PATH_LCS = "lcs"
PATH_MISS = "miss"


class _SpellMetrics:
    """Registry handles for one instrumented :class:`SpellParser`."""

    __slots__ = (
        "match_attempts", "lcs_comparisons", "keys", "match_seconds",
        "param_misaligned", "index_hits",
    )

    def __init__(self, registry: "MetricsRegistry") -> None:
        self.match_attempts = registry.counter(
            "spell_match_attempts_total",
            "Detection-side match() calls by result (hit/miss).",
        )
        self.lcs_comparisons = registry.counter(
            "spell_lcs_comparisons_total",
            "LCS similarity computations performed while matching.",
        )
        self.keys = registry.gauge(
            "spell_keys",
            "Log keys currently known to the parser.",
        )
        self.match_seconds = registry.histogram(
            "spell_match_seconds",
            "Latency of one match() call, by path (exact/lcs/miss).",
        )
        self.param_misaligned = registry.counter(
            "spell_param_misaligned_total",
            "Matches whose raw message could not be aligned against the "
            "matched template (parameters dropped), by key.",
        )
        self.index_hits = registry.counter(
            "spell_index_hits_total",
            "Matches resolved per path: exact (trie walk), lcs (drift "
            "fallback scan), miss (no shared constant token).",
        )


class SpellParser:
    """Streaming log-key extractor.

    Usage::

        parser = SpellParser()
        for message in stream:
            key = parser.consume(message)
        parser.keys()  # all discovered log keys
    """

    def __init__(self, tau: float = 1.7) -> None:
        if tau <= 1.0:
            raise ValueError("tau must be > 1 (match if |LCS| >= n/tau)")
        self.tau = tau
        self._keys: list[LogKey] = []
        self._next_id = 0
        self._line_counter = 0
        # Inverted index: constant token -> key indices.  Prunes the LCS
        # fallback and proves misses without scanning (an LCS match
        # needs at least one shared constant token).
        self._token_index: dict[str, set[int]] = {}
        # Exact-template trie: masked sequence -> aligned key indices.
        self._index = TemplateIndex()
        # Index of the reserved all-variable key, once created.
        self._reserved_idx: int | None = None
        self._metrics: _SpellMetrics | None = None
        # Keys already warned about for template/raw misalignment (the
        # log line fires once per key; the counter counts every event).
        self._misaligned_keys: set[str] = set()

    def instrument(self, registry: "MetricsRegistry") -> "SpellParser":
        """Attach metrics (idempotent); returns ``self`` for chaining."""
        self._metrics = _SpellMetrics(registry)
        self._metrics.keys.set(len(self._keys))
        return self

    def view(self) -> "SpellParser":
        """A detection-only view sharing this parser's learned keys.

        The view aliases ``_keys`` and both match indexes (token
        postings and the exact-template trie) — the structures that are
        immutable once training ends — while owning its instrumentation
        and misalignment bookkeeping, so several tenants can
        :meth:`match` against one in-memory model without their metrics
        clobbering each other.  Views must never :meth:`consume` (that
        would mutate the shared key list under every other view's
        feet); the serving layer only calls ``match``.
        """
        clone = SpellParser.__new__(SpellParser)
        clone.tau = self.tau
        clone._keys = self._keys
        clone._token_index = self._token_index
        clone._index = self._index
        clone._reserved_idx = self._reserved_idx
        clone._next_id = self._next_id
        clone._line_counter = self._line_counter
        clone._metrics = None
        clone._misaligned_keys = set()
        return clone

    # -- training ----------------------------------------------------------

    def consume(self, message: str) -> LogKey:
        """Process one message, returning the (possibly new) log key."""
        seq, _ = mask_message(message)
        self._line_counter += 1
        if not [t for t in seq if t != STAR]:
            # Messages with no constant tokens (empty or all-variable)
            # share one reserved key; they carry no template information.
            best = self._reserved_key()
            if best is None:
                best = LogKey(
                    key_id=f"K{self._next_id}", tokens=list(seq),
                    sample=message,
                )
                self._next_id += 1
                self._keys.append(best)
                self._reserved_idx = len(self._keys) - 1
            best.count += 1
            best.line_ids.append(self._line_counter)
            return best
        best_idx, _path = self._find_best_idx(seq)
        if best_idx is None:
            key = LogKey(
                key_id=f"K{self._next_id}",
                tokens=list(seq),
                sample=message,
            )
            self._next_id += 1
            self._keys.append(key)
            self._index_key(len(self._keys) - 1, key)
        else:
            key = self._keys[best_idx]
            merged = lcs_merge(key.tokens, seq)
            if merged != key.tokens:
                old_tokens = key.tokens
                key.tokens = merged
                self._update_key_index(best_idx, old_tokens, merged)
        key.count += 1
        key.line_ids.append(self._line_counter)
        if self._metrics is not None:
            self._metrics.keys.set(len(self._keys))
        return key

    def consume_all(self, messages: Iterable[str]) -> list[LogKey]:
        return [self.consume(m) for m in messages]

    # -- lookup (detection phase; never creates keys) ------------------------

    def match(self, message: str) -> MatchResult | None:
        """Match a message against the learned keys without mutating them."""
        metrics = self._metrics
        if metrics is None:
            result, _path = self._match_core(message)
            if result is not None and result.misaligned:
                self._note_misalignment(result.key)
            return result
        start = time.perf_counter()
        result, path = self._match_core(message)
        metrics.match_seconds.labels(path=path).observe(
            time.perf_counter() - start
        )
        metrics.index_hits.labels(path=path).inc()
        metrics.match_attempts.labels(
            result="hit" if result is not None else "miss"
        ).inc()
        if result is not None and result.misaligned:
            self._note_misalignment(result.key)
        return result

    def match_batch(
        self, messages: Sequence[str]
    ) -> list[MatchResult | None]:
        """Match many messages in one call, amortizing per-record cost.

        Identical per-message results to :meth:`match` (the differential
        parity harness asserts this), with batch-level savings:
        duplicate messages within the batch are matched once (valid
        because matching never mutates the key set), and instrumentation
        is flushed once per batch instead of per record — counters are
        still advanced per *record*, and per-record latency is reported
        as the batch's amortized cost, so counter semantics are
        unchanged.  Must not run concurrently with :meth:`consume`.
        """
        metrics = self._metrics
        # Batch-scoped memo for the masked-form lookup: distinct
        # messages collapse onto very few masked sequences (the
        # variable fields are exactly what varies), so most distinct
        # messages skip the trie walk too.  Safe because matching never
        # mutates the key set.
        find_memo: dict[tuple[str, ...], tuple[int | None, str]] = {}
        if metrics is None:
            memo: dict[str, MatchResult | None] = {}
            out: list[MatchResult | None] = []
            for message in messages:
                result = memo.get(message, _UNSEEN)
                if result is _UNSEEN:
                    result, _path = self._match_core(message, find_memo)
                    memo[message] = result
                if result is not None and result.misaligned:
                    self._note_misalignment(result.key)
                out.append(result)
            return out
        start = time.perf_counter()
        seen: dict[str, tuple[MatchResult | None, str]] = {}
        out = []
        paths: dict[str, int] = {}
        hits = 0
        misaligned: list[LogKey] = []
        for message in messages:
            entry = seen.get(message)
            if entry is None:
                entry = self._match_core(message, find_memo)
                seen[message] = entry
            result, path = entry
            out.append(result)
            paths[path] = paths.get(path, 0) + 1
            if result is not None:
                hits += 1
                if result.misaligned:
                    misaligned.append(result.key)
        elapsed = time.perf_counter() - start
        n = len(messages)
        if n:
            amortized = elapsed / n
            for path, count in paths.items():
                metrics.match_seconds.labels(path=path).observe_many(
                    amortized, count
                )
                metrics.index_hits.labels(path=path).inc(count)
        if hits:
            metrics.match_attempts.labels(result="hit").inc(hits)
        if n - hits:
            metrics.match_attempts.labels(result="miss").inc(n - hits)
        for key in misaligned:
            self._note_misalignment(key)
        return out

    def _match_core(
        self,
        message: str,
        find_memo: dict[tuple[str, ...], tuple[int | None, str]]
        | None = None,
    ) -> tuple[MatchResult | None, str]:
        """Uninstrumented match returning ``(result, path)``.

        ``path`` labels how the match resolved: ``exact`` (trie walk,
        including the reserved all-variable key — a constant-time
        branch), ``lcs`` (drift fallback scan) or ``miss``.
        ``find_memo`` (batch-scoped) caches ``_find_best_idx`` results
        by masked sequence.
        """
        masked, raw = mask_message(message)
        if not [t for t in masked if t != STAR]:
            reserved = self._reserved_key()
            if reserved is None:
                return None, PATH_MISS
            return (
                MatchResult(
                    key=reserved, parameters=list(raw), raw_tokens=raw
                ),
                PATH_EXACT,
            )
        if find_memo is None:
            best_idx, path = self._find_best_idx(masked)
        else:
            form = tuple(masked)
            cached = find_memo.get(form)
            if cached is None:
                cached = self._find_best_idx(masked)
                find_memo[form] = cached
            best_idx, path = cached
        if best_idx is None:
            return None, path
        key = self._keys[best_idx]
        params = extract_parameters(key.tokens, raw)
        if params is None:
            # The similarity scan said the message belongs to this key,
            # but the greedy aligner could not map its raw tokens onto
            # the template (usually a template that drifted during
            # training).  The parameters are unknowable, not absent —
            # flag it instead of silently pretending the message
            # carried none.  (Exact-path matches align the *masked*
            # sequence by construction, but the raw sequence can still
            # disagree when a variable field tokenized differently.)
            return (
                MatchResult(
                    key=key, parameters=[], misaligned=True,
                    raw_tokens=raw,
                ),
                path,
            )
        return (
            MatchResult(key=key, parameters=params, raw_tokens=raw),
            path,
        )

    def _note_misalignment(self, key: LogKey) -> None:
        if self._metrics is not None:
            self._metrics.param_misaligned.labels(key=key.key_id).inc()
        if key.key_id not in self._misaligned_keys:
            self._misaligned_keys.add(key.key_id)
            log.warning(
                "parameter extraction misaligned for key %s (template %r); "
                "parameters dropped for such messages",
                key.key_id, key.template,
            )

    def keys(self) -> list[LogKey]:
        return list(self._keys)

    def __len__(self) -> int:
        return len(self._keys)

    # -- replay support (parallel training) ----------------------------------

    def rebuild_bookkeeping(
        self, line_ids_by_key: dict[str, list[int]], total_lines: int
    ) -> None:
        """Overwrite per-key occurrence bookkeeping after a form replay.

        The parallel trainer (:mod:`repro.parallel`) discovers log keys by
        consuming each *distinct masked form* once, then accounts for the
        duplicate occurrences in bulk: ``line_ids_by_key`` maps each key to
        the 1-based global line numbers of every message it matched, in any
        order (they are sorted here, matching the streaming parser's
        consumption-order append).
        """
        for key in self._keys:
            ids = sorted(line_ids_by_key.get(key.key_id, ()))
            key.line_ids = list(ids)
            key.count = len(ids)
        self._line_counter = total_lines

    # -- internals -----------------------------------------------------------

    def _reserved_key(self) -> LogKey | None:
        """The all-variable key, if one exists.

        The cached index is authoritative once set; a linear scan only
        runs when keys were restored without going through consume()
        (model deserialization calls :meth:`_reindex`, which re-derives
        the cache).
        """
        if self._reserved_idx is not None:
            return self._keys[self._reserved_idx]
        for idx, key in enumerate(self._keys):
            if not key.constant_tokens():
                self._reserved_idx = idx
                return key
        return None

    def _threshold(self, seq_len: int, template_len: int) -> float:
        # Similarity is measured against the shorter of the two sequences:
        # a message whose constant backbone is fully explained by a shorter
        # template must still match it (e.g. state-transition keys whose
        # long variable tails differ), which is how the IntelLog Spell
        # deployment behaves with its empirical t = 1.7 (paper §5).
        return min(seq_len, template_len) / self.tau

    def _find_best(self, seq: list[str]) -> LogKey | None:
        best_idx, _path = self._find_best_idx(seq)
        return None if best_idx is None else self._keys[best_idx]

    def _find_best_idx(
        self, seq: list[str]
    ) -> tuple[int | None, str]:
        """Best-matching key index for a masked sequence, plus the path.

        Tier 1: exact-template trie lookup; among aligned keys the most
        specific wins (most constants, then lowest key index — the same
        winner the old candidate scan produced).  Tier 2: LCS similarity
        scan over keys sharing at least one constant token, ascending by
        key index (first key reaching the maximal LCS wins).  No shared
        token means no key can reach the LCS threshold, so the miss path
        does no template work at all.
        """
        matches = self._index.lookup(seq)
        if matches:
            best_idx, best_consts = matches[0]
            for idx, n_consts in matches:
                if n_consts > best_consts:
                    best_idx, best_consts = idx, n_consts
            return best_idx, PATH_EXACT

        candidates: set[int] = set()
        for token in seq:
            postings = self._token_index.get(token)
            if postings:
                candidates |= postings
        if not candidates:
            return None, PATH_MISS
        best_idx = None
        best_len = 0
        lcs_calls = 0
        for idx in sorted(candidates):
            key = self._keys[idx]
            consts = key.constant_tokens()
            # Cheap upper bound prune.
            if min(len(consts), len(seq)) <= best_len:
                continue
            lcs_calls += 1
            common = lcs_length(consts, seq)
            if common >= self._threshold(len(seq), len(key.tokens)) and (
                common > best_len
            ):
                best_idx, best_len = idx, common
        if lcs_calls and self._metrics is not None:
            self._metrics.lcs_comparisons.inc(lcs_calls)
        if best_idx is None:
            return None, PATH_MISS
        return best_idx, PATH_LCS

    def _index_key(self, idx: int, key: LogKey) -> None:
        for token in key.constant_tokens():
            self._token_index.setdefault(token, set()).add(idx)
        self._index.insert(idx, key.tokens)

    def _update_key_index(
        self, idx: int, old_tokens: list[str], new_tokens: list[str]
    ) -> None:
        """Incremental maintenance after a training-time template merge.

        Replaces the historical full ``_reindex()`` per merge: only the
        drifted key's postings and trie path move.  A property test
        asserts interleaved consume/merge sequences leave both indexes
        equal to a from-scratch rebuild.
        """
        old_consts = set(old_tokens) - {STAR}
        new_consts = set(new_tokens) - {STAR}
        for token in old_consts - new_consts:
            postings = self._token_index.get(token)
            if postings is not None:
                postings.discard(idx)
                if not postings:
                    del self._token_index[token]
        for token in new_consts - old_consts:
            self._token_index.setdefault(token, set()).add(idx)
        self._index.update(idx, old_tokens, new_tokens)

    def _reindex(self) -> None:
        """Full rebuild of both match indexes (and the reserved-key
        cache) from the key list — model deserialization, and the
        oracle the incremental-maintenance property tests compare
        against."""
        self._token_index.clear()
        self._index.rebuild(key.tokens for key in self._keys)
        self._reserved_idx = None
        for idx, key in enumerate(self._keys):
            for token in key.constant_tokens():
                self._token_index.setdefault(token, set()).add(idx)
            if self._reserved_idx is None and not key.constant_tokens():
                self._reserved_idx = idx


#: Sentinel distinguishing "not yet matched" from a memoized None.
_UNSEEN: object = object()


def extract_parameters(
    template: Sequence[str], seq: Sequence[str]
) -> list[str] | None:
    """Align ``seq`` against ``template``, returning the ``*`` captures.

    Greedy alignment: constant template tokens must appear in order in the
    message; tokens between them are assigned to the interleaved stars.
    Returns None when the message cannot be aligned.
    """
    captures: list[str] = []
    i = 0  # template position
    j = 0  # sequence position
    n, m = len(template), len(seq)
    while i < n:
        tok = template[i]
        if tok != STAR:
            if j < m and seq[j] == tok:
                i += 1
                j += 1
                continue
            return None
        # A star: capture up to the next constant token.
        nxt = i + 1
        while nxt < n and template[nxt] == STAR:
            nxt += 1
        if nxt == n:
            captures.append(" ".join(seq[j:]))
            return captures
        anchor = template[nxt]
        k = j
        while k < m and seq[k] != anchor:
            k += 1
        if k == m:
            return None
        captures.append(" ".join(seq[j:k]))
        i = nxt
        j = k
    if j != m:
        return None
    return captures
