"""Log parsing substrate: formatters, Spell log-key extraction, sessions."""

from .formatters import (
    Formatter,
    FormatterRegistry,
    GenericFormatter,
    HadoopFormatter,
    SparkFormatter,
    default_registry,
    format_lines,
)
from .records import (
    GroundTruth,
    LogRecord,
    Session,
    session_bucket,
    split_sessions,
)
from .spell import (
    STAR,
    LogKey,
    MatchResult,
    SpellParser,
    extract_parameters,
    lcs_length,
    lcs_merge,
)

__all__ = [
    "Formatter",
    "FormatterRegistry",
    "GenericFormatter",
    "GroundTruth",
    "HadoopFormatter",
    "LogKey",
    "LogRecord",
    "MatchResult",
    "STAR",
    "Session",
    "SparkFormatter",
    "SpellParser",
    "default_registry",
    "extract_parameters",
    "format_lines",
    "lcs_length",
    "lcs_merge",
    "session_bucket",
    "split_sessions",
]
