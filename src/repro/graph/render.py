"""Rendering of HW-graphs as text trees and JSON (paper §5: "Both HW-graphs
and its instances are output as JSON files which can be queried by JSON
query tools")."""

from __future__ import annotations

import json
from typing import IO

from .hwgraph import HWGraph


def to_json(graph: HWGraph, indent: int = 2) -> str:
    """Serialize a HW-graph to a JSON string."""
    return json.dumps(graph.to_dict(), indent=indent, sort_keys=True)


def dump_json(graph: HWGraph, fp: IO[str], indent: int = 2) -> None:
    json.dump(graph.to_dict(), fp, indent=indent, sort_keys=True)


def render_tree(
    graph: HWGraph,
    critical_only: bool = False,
    show_subroutines: bool = False,
) -> str:
    """Render the group hierarchy as an indented text tree (Figure 8(a)).

    Critical groups are marked with ``*``; sibling ordering constraints are
    listed as ``-> later-sibling`` suffixes.
    """
    lines: list[str] = []

    def visible(label: str) -> bool:
        node = graph.groups[label]
        return node.critical or not critical_only or any(
            visible(c) for c in node.children
        )

    def emit(label: str, depth: int) -> None:
        node = graph.groups[label]
        if not visible(label):
            return
        mark = "*" if node.critical else " "
        suffix = ""
        if node.before:
            suffix = "  -> " + ", ".join(sorted(node.before))
        lines.append(f"{'  ' * depth}{mark} {label}{suffix}")
        if show_subroutines:
            for sig, sub in sorted(node.model.subroutines.items()):
                sig_text = "{" + ", ".join(sig) + "}" if sig else "{none}"
                ops = _subroutine_ops(graph, sub.ordered_keys())
                lines.append(
                    f"{'  ' * (depth + 1)}  s{sig_text}: {' -> '.join(ops)}"
                )
        for child in node.children:
            emit(child, depth + 1)

    for root in graph.roots:
        emit(root, 0)
    return "\n".join(lines)


def _subroutine_ops(graph: HWGraph, key_ids: list[str]) -> list[str]:
    """Display each Intel Key by its extracted operation (Figure 8(b))."""
    display: list[str] = []
    for key_id in key_ids:
        key = graph.intel_keys.get(key_id)
        if key is None:
            display.append(key_id)
            continue
        if key.operations:
            op = key.operations[0]
            display.append(op.surface or op.predicate)
        else:
            display.append(key_id)
    return display


def render_summary(graph: HWGraph) -> str:
    """One-paragraph statistics summary (feeds Table 5)."""
    group_count = len(graph.groups)
    critical = len(graph.critical_groups())
    lengths = [
        length
        for node in graph.groups.values()
        for sub in node.model.subroutines.values()
        for length in sub.instance_lengths
    ]
    max_len = max(lengths) if lengths else 0
    avg_len = sum(lengths) / len(lengths) if lengths else 0.0
    return (
        f"groups: {group_count} ({critical} critical); "
        f"subroutine instances: {len(lengths)} "
        f"(max {max_len}, avg {avg_len:.1f} messages); "
        f"training sessions: {graph.training_sessions}"
    )
