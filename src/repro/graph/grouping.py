"""Entity grouping by nomenclature (paper §4.1, Algorithm 1).

Correlated entities usually share a common sub-phrase in their names
("block", "block manager", "block manager endpoint" share "block"), *except*
when the shared part is only the last few words, which tend to have generic
meanings ("block manager" vs "security manager" share "manager" but are not
tightly correlated).

Algorithm 1 is implemented line-for-line: entities are processed in
ascending word-count order; each entity joins every existing group with a
non-empty ``LongestCommonPhrase`` (shrinking that group's name to the common
phrase), and starts its own group when none matches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence


def longest_common_word_substring(
    a: Sequence[str], b: Sequence[str]
) -> tuple[str, ...]:
    """Longest common *contiguous* word subsequence of two phrases."""
    best: tuple[str, ...] = ()
    for i in range(len(a)):
        for j in range(len(b)):
            k = 0
            while (
                i + k < len(a)
                and j + k < len(b)
                and a[i + k] == b[j + k]
            ):
                k += 1
            if k > len(best):
                best = tuple(a[i:i + k])
    return best


#: Function words that cannot anchor a nomenclature correlation on their
#: own ("output of map" vs "of task" must not group under "of").
_FUNCTION_WORDS = frozenset({
    "of", "in", "on", "at", "by", "for", "with", "from", "to", "the",
    "a", "an", "and", "or", "is", "be",
})


def longest_common_phrase(
    group: Sequence[str], entity: Sequence[str]
) -> tuple[str, ...]:
    """The paper's ``LongestCommonPhrase`` (Algorithm 1, lines 23-30).

    * If either operand has one word, return their longest common string —
      a one-word phrase that is part of the other phrase is correlated
      with it.
    * If both are multi-word and they share only their last few words
      (generic tails like "manager", "file", "output"), return empty.
    * Otherwise return the longest common contiguous phrase.
    """
    common = longest_common_word_substring(group, entity)
    if not common:
        return ()
    # A common phrase made of function words only is not a correlation.
    if all(word in _FUNCTION_WORDS for word in common):
        return ()
    if len(group) == 1 or len(entity) == 1:
        return common
    # Reject matches that are purely a shared suffix of both phrases.
    if (
        tuple(group[-len(common):]) == common
        and tuple(entity[-len(common):]) == common
        and group[0] != entity[0]
    ):
        return ()
    return common


@dataclass(slots=True)
class EntityGroup:
    """A nomenclature group: its (possibly shrunk) name and member
    entities."""

    name: tuple[str, ...]
    entities: set[tuple[str, ...]] = field(default_factory=set)

    @property
    def label(self) -> str:
        return " ".join(self.name)

    def __contains__(self, entity: tuple[str, ...]) -> bool:
        return entity in self.entities


@dataclass(slots=True)
class GroupingResult:
    """Output of Algorithm 1: the groups plus the reverse entity index."""

    groups: list[EntityGroup]
    #: Reverse index D_r: entity phrase -> indices of containing groups.
    reverse: dict[tuple[str, ...], set[int]]

    def groups_for(self, entity: tuple[str, ...] | str) -> list[EntityGroup]:
        if isinstance(entity, str):
            entity = tuple(entity.split())
        return [self.groups[i] for i in sorted(self.reverse.get(entity, ()))]

    def labels(self) -> list[str]:
        return [g.label for g in self.groups]


def group_entities(entities: Iterable[str | Sequence[str]]) -> GroupingResult:
    """Run Algorithm 1 over the extracted entity phrases.

    ``entities`` may be strings ("block manager") or word sequences; they
    are de-duplicated and sorted ascending by word count (Algorithm 1's
    input precondition) with an alphabetical tiebreak for determinism.
    """
    phrases: set[tuple[str, ...]] = set()
    for entity in entities:
        if isinstance(entity, str):
            phrase = tuple(entity.split())
        else:
            phrase = tuple(entity)
        if phrase:
            phrases.add(phrase)

    ordered = sorted(phrases, key=lambda p: (len(p), p))
    groups: list[EntityGroup] = []

    for phrase in ordered:
        grouped = False
        for group in groups:
            common = longest_common_phrase(group.name, phrase)
            if common:
                group.entities.add(phrase)
                group.name = common
                grouped = True
        if not grouped:
            groups.append(EntityGroup(name=phrase, entities={phrase}))

    # Merge groups whose names collapsed to the same phrase.
    merged: dict[tuple[str, ...], EntityGroup] = {}
    for group in groups:
        existing = merged.get(group.name)
        if existing is None:
            merged[group.name] = group
        else:
            existing.entities |= group.entities
    final = list(merged.values())

    reverse: dict[tuple[str, ...], set[int]] = {}
    for idx, group in enumerate(final):
        for entity in group.entities:
            reverse.setdefault(entity, set()).add(idx)
    return GroupingResult(groups=final, reverse=reverse)
