"""HW-graph modelling: entity grouping, subroutines, lifespans, hierarchy."""

from .grouping import (
    EntityGroup,
    GroupingResult,
    group_entities,
    longest_common_phrase,
    longest_common_word_substring,
)
from .hwgraph import (
    GroupNode,
    GroupSessionStats,
    HWGraph,
    HWGraphBuilder,
    SessionStats,
    session_group_stats,
)
from .lifespan import (
    AFTER,
    BEFORE,
    CHILD,
    PARALLEL,
    PARENT,
    Lifespan,
    RelationMatrix,
    session_lifespans,
)
from .render import dump_json, render_summary, render_tree, to_json
from .subroutine import (
    Subroutine,
    SubroutineInstance,
    SubroutineModel,
    SubroutineUpdate,
    assign_instances,
    session_updates,
)

__all__ = [
    "AFTER",
    "BEFORE",
    "CHILD",
    "EntityGroup",
    "GroupNode",
    "GroupSessionStats",
    "GroupingResult",
    "HWGraph",
    "HWGraphBuilder",
    "Lifespan",
    "SessionStats",
    "PARALLEL",
    "PARENT",
    "RelationMatrix",
    "Subroutine",
    "SubroutineInstance",
    "SubroutineModel",
    "SubroutineUpdate",
    "assign_instances",
    "dump_json",
    "group_entities",
    "session_group_stats",
    "session_updates",
    "longest_common_phrase",
    "longest_common_word_substring",
    "render_summary",
    "render_tree",
    "session_lifespans",
    "to_json",
]
