"""Lifespan analysis and entity-group relations (paper §4.1, Figure 6).

The lifespan of an entity group in a session is the interval between its
first and last log message.  Two groups are related by:

* ``PARENT`` — a's lifespan contains b's in *every* session where both
  appear (b depends on a);
* ``BEFORE`` — a ends before b starts in every such session;
* ``PARALLEL`` — otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

PARENT = "PARENT"
CHILD = "CHILD"
BEFORE = "BEFORE"
AFTER = "AFTER"
PARALLEL = "PARALLEL"


@dataclass(frozen=True, slots=True)
class Lifespan:
    """Closed time interval ``[start, end]`` of a group's activity.

    Both endpoints are inclusive: they are the timestamps of the group's
    first and last log message in the session, and both messages belong
    to the group.  Boundary semantics (shared by training-side
    :meth:`RelationMatrix.observe_session` and detection-side
    ``_check_hierarchy`` — they must agree, or relations learned in
    training are unenforceable at detection time):

    * :meth:`contains` is closed on both ends — a group whose first/last
      messages coincide with its parent's is still contained;
    * :meth:`precedes` accepts touching intervals (``end <= start``) — a
      handoff logged at the same timestamp still orders the groups.
    """

    start: float
    end: float

    def contains(self, other: "Lifespan") -> bool:
        return self.start <= other.start and other.end <= self.end

    def strictly_contains(self, other: "Lifespan") -> bool:
        return self.contains(other) and (
            self.start < other.start or other.end < self.end
        )

    def precedes(self, other: "Lifespan") -> bool:
        return self.end <= other.start


class RelationMatrix:
    """Pairwise relations between entity groups, aggregated over sessions.

    Feed one session at a time via :meth:`observe_session`; query final
    relations via :meth:`relation`.
    """

    def __init__(self, min_support: int = 5) -> None:
        # (a, b) -> per-relation observation counts across sessions, with
        # a, b in lexicographic order and the relation one of PARENT /
        # CHILD / BEFORE / AFTER / PARALLEL / EQUAL.
        self._observations: dict[tuple[str, str], dict[str, int]] = {}
        self._groups: set[str] = set()
        #: Minimum co-occurring sessions before a directional relation
        #: (PARENT/BEFORE) is trusted; fewer observations give PARALLEL.
        #: Guards against spurious orderings learned from scarce training
        #: data (the paper's own false-positive analysis, §6.4).
        self.min_support = min_support

    def observe_session(self, lifespans: Mapping[str, Lifespan]) -> None:
        """Record the pairwise relations implied by one session."""
        names = sorted(lifespans)
        self._groups.update(names)
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                la, lb = lifespans[a], lifespans[b]
                if la.strictly_contains(lb):
                    rel = PARENT
                elif lb.strictly_contains(la):
                    rel = CHILD
                elif la.contains(lb) and lb.contains(la):
                    # Identical lifespans (checked before BEFORE/AFTER so
                    # zero-width intervals do not read as orderings); a
                    # dedicated mark that does not break a consistent
                    # PARENT vote from other sessions.
                    rel = "EQUAL"
                elif la.precedes(lb):
                    # Same boundary as detection-side _check_hierarchy:
                    # touching spans (la.end == lb.start) count as
                    # ordered.  The EQUAL branch above already caught
                    # identical (incl. zero-width) lifespans, so the two
                    # precedes tests cannot both be true here.
                    rel = BEFORE
                elif lb.precedes(la):
                    rel = AFTER
                else:
                    rel = PARALLEL
                counts = self._observations.setdefault((a, b), {})
                counts[rel] = counts.get(rel, 0) + 1

    @property
    def groups(self) -> set[str]:
        return set(self._groups)

    def relation(self, a: str, b: str) -> str:
        """Final relation of ``a`` towards ``b`` (Figure 6 semantics).

        PARENT/BEFORE require agreement in every co-occurring session
        (EQUAL observations are compatible with either); any disagreement
        collapses to PARALLEL.
        """
        if a == b:
            return "SELF"
        swap = a > b
        key = (b, a) if swap else (a, b)
        observed = self._observations.get(key)
        if not observed:
            return PARALLEL
        if sum(observed.values()) < self.min_support:
            return PARALLEL
        effective = {rel for rel in observed if rel != "EQUAL"}
        if not effective:
            return PARALLEL
        if len(effective) == 1:
            rel = next(iter(effective))
            if swap:
                rel = {PARENT: CHILD, CHILD: PARENT,
                       BEFORE: AFTER, AFTER: BEFORE,
                       PARALLEL: PARALLEL}[rel]
            return rel
        return PARALLEL

    def relations_of(self, group: str) -> dict[str, str]:
        """Relations from ``group`` to every other observed group."""
        return {
            other: self.relation(group, other)
            for other in sorted(self._groups)
            if other != group
        }

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        """Round-trippable form (see :meth:`from_dict`)."""
        return {
            "min_support": self.min_support,
            "groups": sorted(self._groups),
            "observations": [
                [a, b, {rel: count for rel, count in sorted(
                    counts.items()
                )}]
                for (a, b), counts in sorted(self._observations.items())
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "RelationMatrix":
        matrix = cls(min_support=int(data.get("min_support", 5)))
        matrix._groups.update(data.get("groups", ()))
        for a, b, counts in data.get("observations", ()):
            matrix._observations[(a, b)] = {
                rel: int(count) for rel, count in counts.items()
            }
        return matrix


def session_lifespans(
    group_messages: Mapping[str, Iterable[float]],
) -> dict[str, Lifespan]:
    """Compute lifespans from per-group message timestamps of one session."""
    spans: dict[str, Lifespan] = {}
    for group, stamps in group_messages.items():
        times = list(stamps)
        if times:
            spans[group] = Lifespan(min(times), max(times))
    return spans
