"""The Hierarchical Workflow graph (HW-graph) (paper §4.1, Figures 7-8).

A HW-graph abstracts a system's workflow as a hierarchy of entity groups:
``PARENT`` containment edges derived from lifespans, ``BEFORE`` ordering
edges between siblings, and per-group subroutines over Intel Keys.  It is
built once from normal-execution training sessions and later instantiated
per incoming session for anomaly detection (§4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

import networkx as nx

from ..extraction.intelkey import IntelKey, IntelMessage
from .grouping import GroupingResult, group_entities
from .lifespan import BEFORE, PARENT, Lifespan, RelationMatrix
from .subroutine import (
    Subroutine,
    SubroutineModel,
    SubroutineUpdate,
    session_updates,
)


@dataclass(slots=True)
class GroupSessionStats:
    """What one session contributes to one entity group's model."""

    label: str
    updates: list[SubroutineUpdate]
    lifespan: tuple[float, float]
    max_key_repeat: int

    def to_payload(self) -> list:
        """Compact picklable form (used by ``repro.parallel`` shards)."""
        return [
            self.label,
            [[list(sig), list(seq)] for sig, seq in self.updates],
            list(self.lifespan),
            self.max_key_repeat,
        ]

    @classmethod
    def from_payload(cls, data: list) -> "GroupSessionStats":
        label, updates, lifespan, max_key_repeat = data
        return cls(
            label=label,
            updates=[(tuple(sig), list(seq)) for sig, seq in updates],
            lifespan=(lifespan[0], lifespan[1]),
            max_key_repeat=int(max_key_repeat),
        )


@dataclass(slots=True)
class SessionStats:
    """One session's full contribution to the HW-graph model.

    Produced by :func:`session_group_stats` (a pure function of the
    session's Intel Messages), applied by
    :meth:`HWGraphBuilder.apply_session_stats`.  The serial trainer fuses
    the two; the parallel trainer computes stats in worker processes and
    applies them in deterministic corpus order.
    """

    groups: list[GroupSessionStats] = field(default_factory=list)


def session_group_stats(
    messages: Iterable[IntelMessage],
    key_groups: Mapping[str, set[str]],
) -> SessionStats:
    """Compute one session's per-group statistics (pure, picklable).

    Group labels are visited in sorted order so the result — and
    everything downstream of it — is independent of set iteration order
    (PYTHONHASHSEED).
    """
    ordered = sorted(messages, key=lambda m: m.timestamp)
    per_group: dict[str, list[IntelMessage]] = {}
    for message in ordered:
        for label in sorted(key_groups.get(message.key_id, ())):
            per_group.setdefault(label, []).append(message)

    stats = SessionStats()
    for label, group_msgs in per_group.items():
        key_repeats: dict[str, int] = {}
        for message in group_msgs:
            key_repeats[message.key_id] = (
                key_repeats.get(message.key_id, 0) + 1
            )
        stats.groups.append(
            GroupSessionStats(
                label=label,
                updates=session_updates(group_msgs),
                lifespan=(
                    group_msgs[0].timestamp, group_msgs[-1].timestamp
                ),
                max_key_repeat=max(key_repeats.values()),
            )
        )
    return stats


@dataclass(slots=True)
class GroupNode:
    """One entity group in the HW-graph."""

    label: str
    entities: set[tuple[str, ...]] = field(default_factory=set)
    key_ids: set[str] = field(default_factory=set)
    model: SubroutineModel = field(default_factory=SubroutineModel)
    parent: str | None = None
    children: list[str] = field(default_factory=list)
    #: Sibling groups that must come after this one.
    before: set[str] = field(default_factory=set)
    #: Max number of messages one Intel Key of this group produced within a
    #: single session (criterion 2 for critical groups, §6.3).
    max_key_repeat: int = 0
    #: Sessions in which the group appeared / total training sessions.
    session_count: int = 0

    @property
    def critical(self) -> bool:
        """§6.3: critical iff multiple Intel Keys, or one key that repeats
        within a single session."""
        return len(self.key_ids) > 1 or self.max_key_repeat > 1


@dataclass(slots=True)
class HWGraph:
    """The trained hierarchical workflow graph of a targeted system."""

    groups: dict[str, GroupNode] = field(default_factory=dict)
    #: Intel Keys by key id (the vocabulary of the model).
    intel_keys: dict[str, IntelKey] = field(default_factory=dict)
    #: key id -> labels of groups containing the key.
    key_groups: dict[str, set[str]] = field(default_factory=dict)
    relations: RelationMatrix = field(default_factory=RelationMatrix)
    #: Keys observed during training that are key-value dumps; ignored by
    #: detection instead of reported (paper §5).
    ignored_keys: set[str] = field(default_factory=set)
    training_sessions: int = 0

    # -- structure queries ------------------------------------------------------

    @property
    def roots(self) -> list[str]:
        return sorted(
            label for label, node in self.groups.items()
            if node.parent is None
        )

    def critical_groups(self) -> list[str]:
        return sorted(
            label for label, node in self.groups.items() if node.critical
        )

    def descendants(self, label: str) -> set[str]:
        out: set[str] = set()
        stack = list(self.groups[label].children)
        while stack:
            child = stack.pop()
            if child not in out:
                out.add(child)
                stack.extend(self.groups[child].children)
        return out

    def groups_of_message(self, message: IntelMessage) -> set[str]:
        return self.key_groups.get(message.key_id, set())

    def to_networkx(self) -> "nx.DiGraph":
        """Export hierarchy + ordering as a networkx DiGraph.

        PARENT edges carry ``relation='PARENT'``; sibling ordering edges
        carry ``relation='BEFORE'``.
        """
        graph = nx.DiGraph()
        for label, node in self.groups.items():
            graph.add_node(label, critical=node.critical,
                           keys=sorted(node.key_ids))
        for label, node in self.groups.items():
            for child in node.children:
                graph.add_edge(label, child, relation=PARENT)
            for later in node.before:
                graph.add_edge(label, later, relation=BEFORE)
        return graph

    def to_dict(self) -> dict[str, Any]:
        """Serialize the full trained model.

        The payload is round-trippable through :meth:`from_dict`
        (``repro.analysis.validate.validate_round_trip`` enforces this):
        per-group statistics (``session_count``, ``max_key_repeat``) and
        the subroutines' order/occurrence state are all preserved, not
        just the derived summaries.
        """
        return {
            "training_sessions": self.training_sessions,
            "groups": {
                label: {
                    "entities": sorted(" ".join(e) for e in node.entities),
                    "keys": sorted(node.key_ids),
                    "parent": node.parent,
                    "children": sorted(node.children),
                    "before": sorted(node.before),
                    "critical": node.critical,
                    "session_count": node.session_count,
                    "max_key_repeat": node.max_key_repeat,
                    "subroutines": {
                        "|".join(sig) or "NONE": {
                            "keys": sub.ordered_keys(),
                            "critical_keys": sorted(sub.critical_keys),
                            "instances": sub.instance_count,
                            "key_counts": dict(sorted(
                                sub.key_counts.items()
                            )),
                            "before_pairs": sorted(
                                list(pair) for pair in sub.before
                            ),
                            "compared_pairs": sorted(
                                list(pair) for pair in sub.compared
                            ),
                            "instance_lengths": list(
                                sub.instance_lengths
                            ),
                        }
                        for sig, sub in node.model.subroutines.items()
                    },
                }
                for label, node in sorted(self.groups.items())
            },
            "intel_keys": {
                key_id: key.to_dict()
                for key_id, key in sorted(self.intel_keys.items())
            },
            "ignored_keys": sorted(self.ignored_keys),
            "relations": self.relations.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "HWGraph":
        """Reconstruct a trained graph from :meth:`to_dict` output."""
        intel_keys = {
            key_id: IntelKey.from_dict(entry)
            for key_id, entry in data.get("intel_keys", {}).items()
        }
        graph = cls(
            intel_keys=intel_keys,
            ignored_keys=set(data.get("ignored_keys", ())),
            training_sessions=int(data.get("training_sessions", 0)),
            relations=RelationMatrix.from_dict(data.get("relations", {})),
        )
        graph.key_groups = {key_id: set() for key_id in intel_keys}
        for label, entry in data.get("groups", {}).items():
            node = GroupNode(
                label=label,
                entities={
                    tuple(phrase.split())
                    for phrase in entry.get("entities", ())
                },
                key_ids=set(entry.get("keys", ())),
                parent=entry.get("parent"),
                children=list(entry.get("children", ())),
                before=set(entry.get("before", ())),
                max_key_repeat=int(entry.get("max_key_repeat", 0)),
                session_count=int(entry.get("session_count", 0)),
            )
            for sig_text, sub_entry in entry.get(
                "subroutines", {}
            ).items():
                signature = (
                    () if sig_text == "NONE"
                    else tuple(sig_text.split("|"))
                )
                sub = Subroutine(
                    signature=signature,
                    keys=list(sub_entry.get("keys", ())),
                    before={
                        tuple(pair)
                        for pair in sub_entry.get("before_pairs", ())
                    },
                    compared={
                        tuple(pair)
                        for pair in sub_entry.get("compared_pairs", ())
                    },
                    key_counts=dict(sub_entry.get("key_counts", {})),
                    instance_count=int(sub_entry.get("instances", 0)),
                    instance_lengths=list(
                        sub_entry.get("instance_lengths", ())
                    ),
                )
                node.model.subroutines[signature] = sub
            graph.groups[label] = node
            for key_id in node.key_ids:
                graph.key_groups.setdefault(key_id, set()).add(label)
        return graph


class HWGraphBuilder:
    """Builds a :class:`HWGraph` from Intel Keys and training sessions."""

    def __init__(self, intel_keys: Mapping[str, IntelKey]) -> None:
        self.intel_keys = dict(intel_keys)
        # Key-value dumps (non-natural-language keys, §5) are learned but
        # excluded from workflow modelling; their tokens are not entities.
        self.grouping: GroupingResult = group_entities(
            entity
            for key in self.intel_keys.values()
            if key.natural_language
            for entity in key.entities
        )
        self.graph = HWGraph(intel_keys=self.intel_keys)
        self._init_groups()

    def _init_groups(self) -> None:
        for group in self.grouping.groups:
            self.graph.groups[group.label] = GroupNode(
                label=group.label, entities=set(group.entities)
            )
        for key_id, key in self.intel_keys.items():
            if not key.natural_language:
                self.graph.ignored_keys.add(key_id)
                self.graph.key_groups[key_id] = set()
                continue
            labels: set[str] = set()
            for entity in key.entities:
                phrase = tuple(entity.split())
                for group in self.grouping.groups_for(phrase):
                    labels.add(group.label)
            self.graph.key_groups[key_id] = labels
            for label in labels:
                self.graph.groups[label].key_ids.add(key_id)

    # -- training -----------------------------------------------------------------

    def train_session(self, messages: Iterable[IntelMessage]) -> None:
        """Consume one normal-execution session (time-ordered messages)."""
        self.apply_session_stats(
            session_group_stats(messages, self.graph.key_groups)
        )

    def apply_session_stats(self, stats: SessionStats) -> None:
        """Fold one session's pre-computed statistics into the model.

        This is the only mutating half of training; feeding sessions'
        stats in corpus order reproduces the fused serial path exactly,
        which is what lets ``repro.parallel`` compute the stats in worker
        processes.
        """
        lifespans: dict[str, Lifespan] = {}
        for group_stats in stats.groups:
            node = self.graph.groups[group_stats.label]
            node.session_count += 1
            node.model.apply_updates(group_stats.updates)
            lifespans[group_stats.label] = Lifespan(*group_stats.lifespan)
            node.max_key_repeat = max(
                node.max_key_repeat, group_stats.max_key_repeat
            )

        self.graph.relations.observe_session(lifespans)
        self.graph.training_sessions += 1

    # -- finalisation ---------------------------------------------------------------

    def build(self) -> HWGraph:
        """Derive the hierarchy from the relation matrix (Figure 7)."""
        graph = self.graph
        labels = sorted(
            label for label, node in graph.groups.items()
            if node.session_count > 0
        )
        # Drop groups never observed in training.
        for label in list(graph.groups):
            if graph.groups[label].session_count == 0:
                removed = graph.groups.pop(label)
                for key_id in removed.key_ids:
                    graph.key_groups.get(key_id, set()).discard(label)

        # Ancestor sets from PARENT relations.
        ancestors: dict[str, set[str]] = {label: set() for label in labels}
        for a in labels:
            for b in labels:
                if a != b and graph.relations.relation(a, b) == PARENT:
                    ancestors[b].add(a)

        # Parent of g = the ancestor that is itself a descendant of all of
        # g's other ancestors (the deepest one); ties break alphabetically.
        for label in labels:
            anc = ancestors[label]
            if not anc:
                continue
            deepest = max(
                sorted(anc),
                key=lambda a: len(ancestors[a] & anc),
            )
            node = graph.groups[label]
            node.parent = deepest
            graph.groups[deepest].children.append(label)
        for node in graph.groups.values():
            node.children.sort()

        # Sibling BEFORE edges.
        for label in labels:
            node = graph.groups[label]
            for other in labels:
                if other == label:
                    continue
                if graph.groups[other].parent != node.parent:
                    continue
                if graph.relations.relation(label, other) == BEFORE:
                    node.before.add(other)
        return graph
