"""Subroutine construction inside entity groups (paper §4.1, Algorithm 2).

A *subroutine* is an ordered set of Intel Keys that execute together,
distinguished at runtime by identifier values: all messages whose identifier
value sets overlap (subset in either direction) belong to the same
*subroutine instance*.  Messages without identifiers fall into the special
``NONE`` instance.

Per identifier-type *signature* (e.g. ``{ID_1, ID_2}``), ``UpdateSubroutine``
maintains:

* BEFORE relations between Intel Keys — kept only while every observed
  instance agrees on the order (Figure 5: once B and C appear interchanged,
  they become parallel);
* *critical* Intel Keys — keys present in every observed instance; a missed
  critical key at detection time is an anomaly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..extraction.intelkey import IntelMessage


@dataclass(slots=True)
class SubroutineInstance:
    """One runtime instance: accumulated identifier values + messages."""

    values: frozenset[str]
    messages: list[IntelMessage] = field(default_factory=list)

    @property
    def key_sequence(self) -> list[str]:
        return [m.key_id for m in self.messages]

    @property
    def signature(self) -> tuple[str, ...]:
        types: set[str] = set()
        for message in self.messages:
            types.update(message.identifiers.keys())
        return tuple(sorted(types))

    def __len__(self) -> int:
        return len(self.messages)


def assign_instances(
    messages: Iterable[IntelMessage],
) -> list[SubroutineInstance]:
    """Algorithm 2's main loop: split one session's group messages into
    subroutine instances by identifier-value overlap.

    The ``NONE`` instance (no identifiers) is returned first when present.
    """
    none_instance = SubroutineInstance(values=frozenset())
    instances: list[SubroutineInstance] = []
    for message in messages:
        value_set = frozenset(message.identifier_values)
        if not value_set:
            none_instance.messages.append(message)
            continue
        placed = False
        for instance in instances:
            if value_set <= instance.values or instance.values <= value_set:
                instance.values = frozenset(instance.values | value_set)
                instance.messages.append(message)
                placed = True
                break
        if not placed:
            instances.append(
                SubroutineInstance(values=value_set, messages=[message])
            )
    result: list[SubroutineInstance] = []
    if none_instance.messages:
        result.append(none_instance)
    result.extend(instances)
    return result


#: One subroutine observation: ``(signature, key sequence)`` of a single
#: instance.  The unit exchanged between the per-session stats pass and
#: the model update pass (and therefore what parallel training shards
#: ship back to the merge step).
SubroutineUpdate = tuple[tuple[str, ...], list[str]]


def session_updates(
    messages: Iterable[IntelMessage],
) -> list[SubroutineUpdate]:
    """Pure per-session pass of Algorithm 2: the ``(signature, key
    sequence)`` updates one session's group messages contribute.

    Splitting this from :meth:`SubroutineModel.train_session` lets the
    observation (parallelisable, per session) and the model mutation
    (serial, order-sensitive) run in different processes while remaining
    byte-identical to the fused serial path.
    """
    return [
        (instance.signature, instance.key_sequence)
        for instance in assign_instances(messages)
    ]


@dataclass(slots=True)
class Subroutine:
    """The learned model for one identifier-type signature."""

    signature: tuple[str, ...]
    #: Keys ever observed, in first-seen order.
    keys: list[str] = field(default_factory=list)
    #: Pairs (a, b) for which a preceded b in every instance so far.
    before: set[tuple[str, str]] = field(default_factory=set)
    #: Pairs observed in *some* order at least once (to distinguish a
    #: never-compared pair from a parallel one).
    compared: set[tuple[str, str]] = field(default_factory=set)
    #: Number of instances each key appeared in.
    key_counts: dict[str, int] = field(default_factory=dict)
    #: Total instances consumed.
    instance_count: int = 0
    #: Observed instance lengths in log messages (Table 5 statistics).
    instance_lengths: list[int] = field(default_factory=list)

    @property
    def critical_keys(self) -> set[str]:
        """Keys present in every observed instance (bold in Figure 5)."""
        if self.instance_count == 0:
            return set()
        return {
            key
            for key, count in self.key_counts.items()
            if count == self.instance_count
        }

    def relation(self, a: str, b: str) -> str:
        """BEFORE / AFTER / PARALLEL / UNKNOWN between two keys."""
        if (a, b) in self.before:
            return "BEFORE"
        if (b, a) in self.before:
            return "AFTER"
        if (a, b) in self.compared or (b, a) in self.compared:
            return "PARALLEL"
        return "UNKNOWN"

    def ordered_keys(self) -> list[str]:
        """Keys in a topological order consistent with BEFORE relations."""
        remaining = list(self.keys)
        ordered: list[str] = []
        placed: set[str] = set()
        while remaining:
            progressed = False
            for key in list(remaining):
                preds = {
                    a for (a, b) in self.before if b == key and a not in
                    placed and a in remaining
                }
                if not preds:
                    ordered.append(key)
                    placed.add(key)
                    remaining.remove(key)
                    progressed = True
            if not progressed:  # cycle safety; should not happen
                ordered.extend(remaining)
                break
        return ordered

    # -- training ------------------------------------------------------------

    def update(self, key_sequence: Sequence[str]) -> None:
        """Consume one instance's Intel Key sequence (UpdateSubroutine)."""
        self.instance_count += 1
        self.instance_lengths.append(len(key_sequence))
        first_pos: dict[str, int] = {}
        for pos, key in enumerate(key_sequence):
            first_pos.setdefault(key, pos)
        observed = list(first_pos)

        for key in observed:
            if key not in self.key_counts:
                self.keys.append(key)
                # A key first seen now was missing from earlier instances.
                self.key_counts[key] = 0
            self.key_counts[key] += 1

        # Update pairwise order relations among co-occurring keys.
        for i, a in enumerate(observed):
            for b in observed[i + 1:]:
                pa, pb = first_pos[a], first_pos[b]
                earlier, later = (a, b) if pa < pb else (b, a)
                pair = (earlier, later)
                reverse = (later, earlier)
                if pair in self.compared or reverse in self.compared:
                    # Seen before: keep BEFORE only if consistent.
                    if reverse in self.before:
                        self.before.discard(reverse)
                    # pair in before stays; pair order matches.
                else:
                    self.compared.add(pair)
                    self.before.add(pair)

    # -- detection -------------------------------------------------------------

    def check_instance(
        self, key_sequence: Sequence[str], complete: bool = True
    ) -> list[str]:
        """Validate an instance against the model; returns problem strings.

        ``complete`` indicates the session has ended, so missing critical
        keys are reportable.
        """
        problems: list[str] = []
        first_pos: dict[str, int] = {}
        for pos, key in enumerate(key_sequence):
            first_pos.setdefault(key, pos)
        present = set(first_pos)

        # Iterate sets in sorted order so the problem list (and any report
        # serialization built from it) is byte-stable across interpreter
        # runs regardless of PYTHONHASHSEED.
        for key in sorted(present):
            if key not in self.key_counts:
                problems.append(f"unexpected key {key} in subroutine "
                                f"{self.signature}")
        if complete:
            for key in sorted(self.critical_keys):
                if key not in present:
                    problems.append(
                        f"missing critical key {key} in subroutine "
                        f"{self.signature}"
                    )
        for a, b in sorted(self.before):
            if a in present and b in present and first_pos[a] > first_pos[b]:
                problems.append(
                    f"order violation: {b} before {a} in subroutine "
                    f"{self.signature}"
                )
        return problems


class SubroutineModel:
    """All subroutines of one entity group, keyed by signature (D_ti)."""

    def __init__(self) -> None:
        self.subroutines: dict[tuple[str, ...], Subroutine] = {}

    def train_session(self, messages: Iterable[IntelMessage]) -> None:
        """Consume one session's messages for this group (Algorithm 2)."""
        self.apply_updates(session_updates(messages))

    def apply_updates(self, updates: Iterable[SubroutineUpdate]) -> None:
        """Apply pre-computed per-session updates (see
        :func:`session_updates`) in their recorded order."""
        for signature, key_sequence in updates:
            self._subroutine_for(signature).update(key_sequence)

    def _subroutine_for(self, signature: tuple[str, ...]) -> Subroutine:
        sub = self.subroutines.get(signature)
        if sub is None:
            sub = Subroutine(signature=signature)
            self.subroutines[signature] = sub
        return sub

    def get(self, signature: tuple[str, ...]) -> Subroutine | None:
        return self.subroutines.get(signature)

    def best_match(self, signature: tuple[str, ...]) -> Subroutine | None:
        """The trained subroutine whose signature best matches ``signature``.

        Exact match preferred; otherwise the largest-overlap signature whose
        types are a superset or subset (an instance may terminate before all
        identifier types appear).
        """
        exact = self.subroutines.get(signature)
        if exact is not None:
            return exact
        sig_set = set(signature)
        best: Subroutine | None = None
        best_overlap = -1
        for key, sub in self.subroutines.items():
            other = set(key)
            if sig_set <= other or other <= sig_set:
                overlap = len(sig_set & other)
                if overlap > best_overlap:
                    best, best_overlap = sub, overlap
        return best

    def stats(self) -> Mapping[str, float]:
        """Length statistics over subroutine instances (Table 5)."""
        lengths = [
            length
            for sub in self.subroutines.values()
            for length in sub.instance_lengths
        ]
        if not lengths:
            return {"max": 0, "avg": 0.0, "count": 0}
        return {
            "max": max(lengths),
            "avg": sum(lengths) / len(lengths),
            "count": len(lengths),
        }
