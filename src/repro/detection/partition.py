"""Multi-process partitioned detection (``repro detect --workers N``).

Sessions are independent detection units — the model is read-only during
detection — so a job can be split into contiguous session chunks and
detected by a pool of worker processes, each holding its own copy of the
model.  Workers are handed *plain data only* (the model file path at
pool start, session dicts per task) and return report dicts; no
detector, registry or lock ever crosses the process boundary (the
concurrency analysis gates on exactly that).  Chunks are contiguous and
``ProcessPoolExecutor.map`` preserves submission order, so the
assembled :class:`~repro.detection.report.JobReport` lists sessions in
the same order as single-process detection, and each worker's
:meth:`~repro.detection.detector.AnomalyDetector.detect_batch` call
produces reports identical to it (the golden detect-report fixtures pin
that equivalence).

The trade-off mirrors :mod:`repro.parallel` training: worker-side
metrics stay in the worker (the parent registry only sees its own
process), so ``--workers`` is for throughput on big offline jobs, not
for instrumented single-process runs.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..detection.report import JobReport
    from ..parsing.records import Session

#: Per-worker-process detector, built once by the pool initializer from
#: the model path (plain string) so nothing fork-unsafe is pickled.
_DETECTOR = None


def _init_worker(model_path: str) -> None:
    global _DETECTOR
    from ..query.store import ModelStore

    _DETECTOR = ModelStore.load_path(model_path).to_intellog().detector()


def _detect_chunk(payload: list[dict]) -> list[dict]:
    from ..parsing.records import Session

    assert _DETECTOR is not None, "worker initializer did not run"
    sessions = [Session.from_dict(d) for d in payload]
    return [r.to_dict() for r in _DETECTOR.detect_batch(sessions)]


def _chunk(items: list, n: int) -> list[list]:
    """Split into at most ``n`` contiguous, near-equal chunks."""
    n = max(1, min(n, len(items)))
    size, extra = divmod(len(items), n)
    chunks: list[list] = []
    start = 0
    for i in range(n):
        end = start + size + (1 if i < extra else 0)
        chunks.append(items[start:end])
        start = end
    return chunks


def detect_job_partitioned(
    model_path: str,
    sessions: list["Session"],
    workers: int,
    job_id: str = "",
) -> "JobReport":
    """Detect ``sessions`` across ``workers`` processes; see module doc."""
    from ..detection.report import JobReport, SessionReport

    report = JobReport(job_id=job_id)
    if not sessions:
        return report
    payloads = [
        [s.to_dict() for s in chunk] for chunk in _chunk(sessions, workers)
    ]
    with ProcessPoolExecutor(
        max_workers=len(payloads),
        initializer=_init_worker,
        initargs=(model_path,),
    ) as executor:
        for chunk_reports in executor.map(_detect_chunk, payloads):
            report.sessions.extend(
                SessionReport.from_dict(d) for d in chunk_reports
            )
    return report
