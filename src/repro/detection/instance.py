"""HW-graph instances (paper §4.2).

A HW-graph *instance* mirrors the trained HW-graph's group hierarchy for one
session: each entity group holds the session's subroutine *instances*
(concrete message sequences keyed by identifier values).  The detector
builds an instance per session and compares it against the model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..extraction.intelkey import IntelMessage
from ..graph.hwgraph import HWGraph
from ..graph.lifespan import Lifespan
from ..graph.subroutine import SubroutineInstance, assign_instances


@dataclass(slots=True)
class GroupInstance:
    """One entity group's activity within a session."""

    label: str
    messages: list[IntelMessage] = field(default_factory=list)
    instances: list[SubroutineInstance] = field(default_factory=list)

    @property
    def lifespan(self) -> Lifespan | None:
        if not self.messages:
            return None
        return Lifespan(
            self.messages[0].timestamp, self.messages[-1].timestamp
        )

    def finalize(self) -> None:
        """Split accumulated messages into subroutine instances."""
        self.messages.sort(key=lambda m: m.timestamp)
        self.instances = assign_instances(self.messages)


@dataclass(slots=True)
class HWGraphInstance:
    """Per-session instantiation of the HW-graph."""

    session_id: str
    graph: HWGraph
    groups: dict[str, GroupInstance] = field(default_factory=dict)
    #: Messages whose key belongs to no entity group.
    ungrouped: list[IntelMessage] = field(default_factory=list)

    def add(self, message: IntelMessage) -> None:
        labels = self.graph.groups_of_message(message)
        if not labels:
            self.ungrouped.append(message)
            return
        for label in labels:
            group = self.groups.get(label)
            if group is None:
                group = GroupInstance(label=label)
                self.groups[label] = group
            group.messages.append(message)

    def finalize(self) -> None:
        for group in self.groups.values():
            group.finalize()

    def lifespans(self) -> dict[str, Lifespan]:
        spans: dict[str, Lifespan] = {}
        for label, group in self.groups.items():
            span = group.lifespan
            if span is not None:
                spans[label] = span
        return spans

    def present_groups(self) -> set[str]:
        return {
            label for label, group in self.groups.items() if group.messages
        }
