"""Anomaly report structures (paper §4.2).

IntelLog reports two categories of anomalies: *unexpected log messages* and
*erroneous HW-graph instances* (missing critical Intel Keys, abnormal
subroutine instances, erroneous group hierarchy).  It does not claim root
causes; it pinpoints the affected entity groups and subroutines so users can
narrow the search (§2.3).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Any


class AnomalyKind(str, Enum):
    """Categories of reported anomalies."""

    UNEXPECTED_MESSAGE = "unexpected_message"
    MISSING_CRITICAL_KEY = "missing_critical_key"
    ORDER_VIOLATION = "order_violation"
    UNEXPECTED_KEY = "unexpected_key_in_subroutine"
    MISSING_GROUP = "missing_group"
    HIERARCHY_VIOLATION = "hierarchy_violation"
    INCOMPLETE_SUBROUTINE = "incomplete_subroutine"


@dataclass(slots=True)
class Anomaly:
    """One detected anomaly, pinned to a group and/or log message."""

    kind: AnomalyKind
    description: str
    group: str | None = None
    key_id: str | None = None
    message: str | None = None
    timestamp: float | None = None
    #: Structured extraction from an unexpected message (entities,
    #: identifiers, values, localities, operations) — §4.2 "IntelLog tries
    #: to extract the information of the five fields from the unexpected
    #: messages".
    extraction: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "kind": self.kind.value,
            "description": self.description,
        }
        for name in ("group", "key_id", "message", "timestamp"):
            value = getattr(self, name)
            if value is not None:
                data[name] = value
        if self.extraction:
            data["extraction"] = self.extraction
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Anomaly":
        return cls(
            kind=AnomalyKind(data["kind"]),
            description=data.get("description", ""),
            group=data.get("group"),
            key_id=data.get("key_id"),
            message=data.get("message"),
            timestamp=data.get("timestamp"),
            extraction=dict(data.get("extraction", {})),
        )


@dataclass(slots=True)
class SessionReport:
    """Detection verdict for one session (one YARN container)."""

    session_id: str
    anomalies: list[Anomaly] = field(default_factory=list)
    message_count: int = 0
    matched_count: int = 0

    @property
    def anomalous(self) -> bool:
        return bool(self.anomalies)

    @property
    def affected_groups(self) -> list[str]:
        return sorted(
            {a.group for a in self.anomalies if a.group is not None}
        )

    def by_kind(self, kind: AnomalyKind) -> list[Anomaly]:
        return [a for a in self.anomalies if a.kind == kind]

    def to_dict(self) -> dict[str, Any]:
        return {
            "session_id": self.session_id,
            "anomalous": self.anomalous,
            "message_count": self.message_count,
            "matched_count": self.matched_count,
            "affected_groups": self.affected_groups,
            "anomalies": [a.to_dict() for a in self.anomalies],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SessionReport":
        """Rehydrate a ``to_dict()`` payload (checkpoint outbox replay)."""
        return cls(
            session_id=data["session_id"],
            anomalies=[
                Anomaly.from_dict(a) for a in data.get("anomalies", [])
            ],
            message_count=int(data.get("message_count", 0)),
            matched_count=int(data.get("matched_count", 0)),
        )


@dataclass(slots=True)
class JobReport:
    """Detection verdict for one job (all of its sessions)."""

    job_id: str
    sessions: list[SessionReport] = field(default_factory=list)

    @property
    def anomalous(self) -> bool:
        return any(s.anomalous for s in self.sessions)

    @property
    def problematic_sessions(self) -> list[SessionReport]:
        return [s for s in self.sessions if s.anomalous]

    @property
    def affected_groups(self) -> list[str]:
        return sorted(
            {g for s in self.sessions for g in s.affected_groups}
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "job_id": self.job_id,
            "anomalous": self.anomalous,
            "sessions": [s.to_dict() for s in self.sessions],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)
