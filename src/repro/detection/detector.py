"""The anomaly detector (paper §4.2).

For each incoming session the detector

1. matches every log message against the learned log keys — a message with
   no matching key is an **unexpected log message**; IntelLog still runs
   the full §3 extraction on it so the report carries entities,
   identifiers, values, localities and operations for diagnosis;
2. builds a HW-graph instance and, once the session is complete, checks it
   against the trained HW-graph: missing critical Intel Keys in subroutine
   instances, order violations, unexpected keys inside a subroutine,
   missing entity groups, and lifespan hierarchy violations are all
   **erroneous HW-graph instance** anomalies.

Key-value-dump keys learned during training are ignored rather than
reported (paper §5).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..extraction.idvalue import FieldRole
from ..extraction.intelkey import IntelKey
from ..extraction.pipeline import InformationExtractor
from ..graph.hwgraph import HWGraph
from ..graph.lifespan import BEFORE, PARENT
from ..parsing.records import LogRecord, Session
from ..parsing.spell import LogKey, MatchResult, SpellParser
from .instance import HWGraphInstance
from .report import Anomaly, AnomalyKind, JobReport, SessionReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..graph.subroutine import Subroutine
    from ..obs import Counter, MetricsRegistry, Tracer

#: A group must have appeared in at least this fraction of training
#: sessions for its absence to be reported (guards against optional groups).
_GROUP_PRESENCE_THRESHOLD = 0.999


@dataclass(slots=True)
class DetectorConfig:
    """Tunables for the detection phase."""

    #: Report groups that were present in (almost) all training sessions but
    #: are absent from the detected session.
    report_missing_groups: bool = True
    #: Check PARENT/BEFORE lifespan relations per session.
    check_hierarchy: bool = True
    #: Minimum messages in a session before missing-group checks apply
    #: (very short sessions are usually setup/teardown containers).
    min_session_length_for_missing: int = 5


class AnomalyDetector:
    """Checks incoming sessions against a trained model."""

    def __init__(
        self,
        graph: HWGraph,
        spell: SpellParser,
        extractor: InformationExtractor | None = None,
        config: DetectorConfig | None = None,
    ) -> None:
        self.graph = graph
        self.spell = spell
        self.extractor = extractor or InformationExtractor()
        self.config = config or DetectorConfig()
        # Entity-phrase lookup structures, precomputed once so per-record
        # group attribution does not re-split every group label.
        self._entity_index: dict[tuple[str, ...], list[str]] = {}
        for label, node in graph.groups.items():
            for phrase in node.entities:
                self._entity_index.setdefault(tuple(phrase), []).append(
                    label
                )
        self._label_phrases: list[tuple[tuple[str, ...], str]] = [
            (tuple(label.split()), label) for label in graph.groups
        ]
        # Lazily resolved PARENT/BEFORE verdicts for _check_hierarchy —
        # pure over the frozen training graph, so computed once per
        # detector instead of once per session pair.
        self._hierarchy_pairs: dict[tuple[str, str], str] | None = None
        # Per log key: may match-time captures stand in for the Intel
        # Key template alignment?  Key templates are frozen while
        # detecting, so the verdict is cached by key id.
        self._captures_ok: dict[str, bool] = {}
        # Subroutine checks are pure over the frozen model and instance
        # key sequences repeat heavily across sessions, so both the
        # signature->subroutine resolution and the per-sequence problem
        # list are memoized for the detector's lifetime.
        self._best_match_memo: dict[
            tuple[str, tuple[str, ...]], "Subroutine | None"
        ] = {}
        self._check_memo: dict[
            tuple[int, tuple[str, ...]], tuple[str, ...]
        ] = {}
        self._tracer: "Tracer | None" = None
        self._m_sessions: "Counter | None" = None
        self._m_records: "Counter | None" = None
        self._m_anomalies: "Counter | None" = None

    def instrument(
        self,
        registry: "MetricsRegistry",
        tracer: "Tracer | None" = None,
    ) -> "AnomalyDetector":
        """Attach metrics + tracing; also instruments the Spell parser.

        Idempotent; returns ``self`` for chaining.
        """
        from ..obs import Tracer as _Tracer

        self._tracer = tracer or _Tracer(registry=registry)
        self.spell.instrument(registry)
        self._m_sessions = registry.counter(
            "detect_sessions_total", "Sessions run through detect_session."
        )
        self._m_records = registry.counter(
            "detect_records_total", "Log records examined by the detector."
        )
        self._m_anomalies = registry.counter(
            "detect_anomalies_total", "Anomalies reported, by kind."
        )
        return self

    # -- public API ---------------------------------------------------------------

    def detect_session(self, session: Session) -> SessionReport:
        """Consume one complete session and report its anomalies."""
        return self._detect_one(session, None)

    def _detect_one(
        self,
        session: Session,
        prematched: list["MatchResult | None"] | None,
    ) -> SessionReport:
        tracer = self._tracer
        if tracer is None:
            return self._detect_session_inner(session, None, prematched)
        with tracer.span("detect.session"):
            report = self._detect_session_inner(
                session, tracer, prematched
            )
        assert self._m_sessions and self._m_records and self._m_anomalies
        self._m_sessions.inc()
        self._m_records.inc(report.message_count)
        for anomaly in report.anomalies:
            self._m_anomalies.labels(kind=anomaly.kind.value).inc()
        return report

    def _detect_session_inner(
        self,
        session: Session,
        tracer: "Tracer | None",
        prematched: list["MatchResult | None"] | None = None,
    ) -> SessionReport:
        report = SessionReport(session_id=session.session_id)
        instance = HWGraphInstance(
            session_id=session.session_id, graph=self.graph
        )

        # Records are matched in one batch up front (memoized per
        # distinct message), then the extraction/graph loop runs over
        # the precomputed results; when the caller already batch-matched
        # across sessions (:meth:`detect_batch`), its results are reused
        # verbatim.  Match/extract phase times are accumulated across
        # the loop and reported as two pre-measured spans rather than
        # thousands of micro-spans.
        timed = tracer is not None
        records = list(session)
        match_s = 0.0
        extract_s = 0.0
        if prematched is None:
            if timed:
                t0 = time.perf_counter()
            matches = self.spell.match_batch(
                [record.message for record in records]
            )
            if timed:
                match_s = time.perf_counter() - t0
        else:
            matches = prematched
        for record, match in zip(records, matches):
            report.message_count += 1
            if match is None:
                report.anomalies.append(
                    self._unexpected_message(record)
                )
                continue
            report.matched_count += 1
            key_id = match.key.key_id
            if key_id in self.graph.ignored_keys:
                continue
            intel_key = self.graph.intel_keys.get(key_id)
            if intel_key is None:
                continue
            if timed:
                t0 = time.perf_counter()
            # Match-time captures are exactly the template alignment
            # to_intel_message would recompute — reuse them when the
            # matched log key's template IS this Intel Key's template
            # (the reserved all-star key's match parameters use a
            # different convention, so it is excluded).
            captures_ok = self._captures_ok.get(key_id)
            if captures_ok is None:
                captures_ok = self._captures_ok[key_id] = bool(
                    match.key.constant_tokens()
                ) and tuple(match.key.tokens) == intel_key.template
            captures = (
                match.parameters
                if captures_ok and not match.misaligned
                else None
            )
            message = self.extractor.to_intel_message(
                intel_key,
                record.message,
                timestamp=record.timestamp,
                session_id=session.session_id,
                raw_tokens=match.raw_tokens,
                captures=captures,
            )
            if timed:
                extract_s += time.perf_counter() - t0
            if message is None:
                report.anomalies.append(self._unexpected_message(record))
                continue
            instance.add(message)

        instance.finalize()
        if tracer is None:
            self._check_subroutines(instance, report)
            if self.config.report_missing_groups:
                self._check_missing_groups(instance, report)
            if self.config.check_hierarchy:
                self._check_hierarchy(instance, report)
            return report

        tracer.record("detect.match", match_s)
        tracer.record("detect.extract", extract_s)
        with tracer.span("detect.subroutines"):
            self._check_subroutines(instance, report)
        if self.config.report_missing_groups:
            self._check_missing_groups(instance, report)
        if self.config.check_hierarchy:
            with tracer.span("detect.hierarchy"):
                self._check_hierarchy(instance, report)
        return report

    def detect_batch(
        self, sessions: list[Session]
    ) -> list[SessionReport]:
        """Detect many sessions with one cross-session match batch.

        All records are matched in a single :meth:`SpellParser.match_batch`
        call — log vocabularies repeat heavily across sessions of one
        job, so the batch memo collapses most of the per-record match
        cost — then the per-session extraction and HW-graph checks run
        over the precomputed results.  Per-session reports are identical
        to calling :meth:`detect_session` per session.
        """
        records_by_session = [list(session) for session in sessions]
        tracer = self._tracer
        t0 = time.perf_counter() if tracer is not None else 0.0
        matches = self.spell.match_batch(
            [
                record.message
                for records in records_by_session
                for record in records
            ]
        )
        if tracer is not None:
            tracer.record("detect.match", time.perf_counter() - t0)
        reports: list[SessionReport] = []
        pos = 0
        for session, records in zip(sessions, records_by_session):
            session_matches = matches[pos:pos + len(records)]
            pos += len(records)
            reports.append(self._detect_one(session, session_matches))
        return reports

    def detect_job(
        self, sessions: list[Session], job_id: str = ""
    ) -> JobReport:
        report = JobReport(job_id=job_id)
        report.sessions.extend(self.detect_batch(sessions))
        return report

    # -- anomaly producers -----------------------------------------------------------

    def _unexpected_message(self, record: LogRecord) -> Anomaly:
        """Build the unexpected-message anomaly with on-the-fly extraction."""
        ad_hoc = LogKey(
            key_id="<unexpected>",
            tokens=_starified_template(record.message),
            sample=record.message,
        )
        intel_key = self.extractor.build_intel_key(ad_hoc)
        extraction = _extraction_summary(intel_key, self.extractor)
        groups = sorted(
            {
                group.label
                for entity in intel_key.entities
                for group in self._groups_for_entity(entity)
            }
        )
        return Anomaly(
            kind=AnomalyKind.UNEXPECTED_MESSAGE,
            description=f"no Intel Key matches: {record.message[:120]}",
            group=groups[0] if groups else None,
            message=record.message,
            timestamp=record.timestamp,
            extraction=extraction,
        )

    def _groups_for_entity(self, entity: str):
        phrase = tuple(entity.split())
        exact = self._entity_index.get(phrase, ())
        for label in exact:
            yield self.graph.groups[label]
        for label_phrase, label in self._label_phrases:
            if label in exact:
                continue
            # Nomenclature fallback: entity shares the group's name prefix.
            if phrase[: len(label_phrase)] == label_phrase:
                yield self.graph.groups[label]

    def _check_subroutines(
        self, instance: HWGraphInstance, report: SessionReport
    ) -> None:
        for label, group_instance in instance.groups.items():
            node = self.graph.groups.get(label)
            if node is None:
                continue
            for sub_instance in group_instance.instances:
                signature = sub_instance.signature
                sig_key = (label, signature)
                if sig_key in self._best_match_memo:
                    model = self._best_match_memo[sig_key]
                else:
                    model = self._best_match_memo[sig_key] = (
                        node.model.best_match(signature)
                    )
                if model is None:
                    report.anomalies.append(
                        Anomaly(
                            kind=AnomalyKind.INCOMPLETE_SUBROUTINE,
                            description=(
                                f"no trained subroutine for signature "
                                f"{signature or ('NONE',)} in group "
                                f"'{label}'"
                            ),
                            group=label,
                        )
                    )
                    continue
                sequence = tuple(sub_instance.key_sequence)
                memo_key = (id(model), sequence)
                problems = self._check_memo.get(memo_key)
                if problems is None:
                    problems = self._check_memo[memo_key] = tuple(
                        model.check_instance(sequence, complete=True)
                    )
                for problem in problems:
                    kind = AnomalyKind.INCOMPLETE_SUBROUTINE
                    if problem.startswith("missing critical"):
                        kind = AnomalyKind.MISSING_CRITICAL_KEY
                    elif problem.startswith("order violation"):
                        kind = AnomalyKind.ORDER_VIOLATION
                    elif problem.startswith("unexpected key"):
                        kind = AnomalyKind.UNEXPECTED_KEY
                    report.anomalies.append(
                        Anomaly(
                            kind=kind,
                            description=problem,
                            group=label,
                            key_id=_problem_key(problem),
                        )
                    )

    def _check_missing_groups(
        self, instance: HWGraphInstance, report: SessionReport
    ) -> None:
        if (
            report.message_count
            < self.config.min_session_length_for_missing
        ):
            return
        present = instance.present_groups()
        total = max(self.graph.training_sessions, 1)
        for label, node in self.graph.groups.items():
            if label in present:
                continue
            if not node.critical:
                continue
            if node.session_count / total >= _GROUP_PRESENCE_THRESHOLD:
                report.anomalies.append(
                    Anomaly(
                        kind=AnomalyKind.MISSING_GROUP,
                        description=(
                            f"entity group '{label}' (present in "
                            f"{node.session_count}/{total} training "
                            f"sessions) emitted no messages"
                        ),
                        group=label,
                    )
                )

    def _constrained_pairs(self) -> dict[tuple[str, str], str]:
        """Sorted group pairs whose trained relation constrains detection.

        Only PARENT/BEFORE verdicts impose a lifespan check; every other
        relation (and every pair involving an unobserved label) resolves
        to no-op, so omitting it from the map is equivalent to the old
        per-pair ``relations.relation`` call returning PARALLEL.
        """
        relations = self.graph.relations
        names = sorted(relations.groups)
        pairs: dict[tuple[str, str], str] = {}
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                rel = relations.relation(a, b)
                if rel in (PARENT, BEFORE):
                    pairs[(a, b)] = rel
        return pairs

    def _check_hierarchy(
        self, instance: HWGraphInstance, report: SessionReport
    ) -> None:
        pairs = self._hierarchy_pairs
        if pairs is None:
            pairs = self._hierarchy_pairs = self._constrained_pairs()
        spans = instance.lifespans()
        labels = sorted(spans)
        for i, a in enumerate(labels):
            for b in labels[i + 1:]:
                relation = pairs.get((a, b))
                if relation is None:
                    continue
                if relation == PARENT and not spans[a].contains(spans[b]):
                    report.anomalies.append(
                        Anomaly(
                            kind=AnomalyKind.HIERARCHY_VIOLATION,
                            description=(
                                f"group '{b}' escaped the lifespan of its "
                                f"parent group '{a}'"
                            ),
                            group=b,
                        )
                    )
                elif relation == BEFORE and not spans[a].precedes(spans[b]):
                    report.anomalies.append(
                        Anomaly(
                            kind=AnomalyKind.HIERARCHY_VIOLATION,
                            description=(
                                f"group '{a}' expected BEFORE group "
                                f"'{b}' but lifespans overlap"
                            ),
                            group=a,
                        )
                    )


def _starified_template(message: str) -> list[str]:
    """Turn a raw message into a pseudo log key: variable-looking tokens
    (identifiers, numbers, localities) become ``*`` so the §3 field
    heuristics can classify them."""
    from ..nlp.tokenizer import tokenize

    return [
        "*" if t.kind in ("ident", "number", "hostport", "path") else t.text
        for t in tokenize(message)
    ]


def _extraction_summary(
    intel_key: IntelKey, extractor: InformationExtractor
) -> dict:
    """Five-field summary of an ad-hoc extraction (for unexpected
    messages)."""
    message = extractor.to_intel_message(intel_key, intel_key.sample)
    summary: dict = {
        "entities": list(intel_key.entities),
        "operations": [
            {"subject": op.subject, "predicate": op.predicate,
             "object": op.obj}
            for op in intel_key.operations
        ],
    }
    identifiers: dict[str, list[str]] = {}
    values: dict[str, list[float]] = {}
    localities: dict[str, list[str]] = {}
    if message is not None:
        identifiers = message.identifiers
        values = message.values
        localities = message.localities
    else:
        for spec in intel_key.fields:
            if spec.role == FieldRole.IDENTIFIER:
                identifiers.setdefault(spec.name, [])
            elif spec.role == FieldRole.VALUE:
                values.setdefault(spec.name, [])
            elif spec.role == FieldRole.LOCALITY:
                localities.setdefault(spec.name, [])
    summary["identifiers"] = identifiers
    summary["values"] = values
    summary["localities"] = localities
    return summary


def _problem_key(problem: str) -> str | None:
    for token in problem.split():
        if token.startswith("K") and token[1:].isdigit():
            return token
    return None
