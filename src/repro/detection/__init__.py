"""Anomaly detection: HW-graph instances and the session detector."""

from .detector import AnomalyDetector, DetectorConfig
from .instance import GroupInstance, HWGraphInstance
from .partition import detect_job_partitioned
from .report import Anomaly, AnomalyKind, JobReport, SessionReport

__all__ = [
    "Anomaly",
    "AnomalyDetector",
    "AnomalyKind",
    "DetectorConfig",
    "GroupInstance",
    "HWGraphInstance",
    "JobReport",
    "SessionReport",
    "detect_job_partitioned",
]
