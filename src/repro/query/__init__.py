"""Queryable Intel Message store with GroupBy operators (paper §6.4),
plus the JSON :class:`ModelStore` for trained-model persistence."""

from .store import MessageStore, ModelStore

__all__ = ["MessageStore", "ModelStore"]
