"""Queryable Intel Message store with GroupBy operators (paper §6.4)."""

from .store import MessageStore

__all__ = ["MessageStore"]
