"""Intel Message store (paper §3.3, §6.4).

Intel Messages are collections of key-value pairs that "naturally fit in
the storage structure of time series databases" and can be queried to
diagnose root causes — the paper's case study 1 applies successive GroupBy
operators on identifiers and locations to isolate 11 fetchers failing
against one host.  This module provides that queryable store.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, TYPE_CHECKING, Any, Callable, Iterable, Iterator

from ..extraction.intelkey import IntelMessage

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..analysis.diagnostics import DiagnosticReport
    from ..core.intellog import IntelLog


class MessageStore:
    """An in-memory, JSON-serialisable collection of Intel Messages.

    Point lookups (:meth:`with_key`, :meth:`with_entity`,
    :meth:`in_session`) are served from lazily built inverted indexes
    rather than linear scans; the indexes are invalidated whenever the
    store is mutated and rebuilt in one pass on the next lookup.
    """

    def __init__(self, messages: Iterable[IntelMessage] = ()) -> None:
        self._messages: list[IntelMessage] = list(messages)
        self._indexes: _Indexes | None = None

    def add(self, message: IntelMessage) -> None:
        self._messages.append(message)
        self._indexes = None

    def extend(self, messages: Iterable[IntelMessage]) -> None:
        self._messages.extend(messages)
        self._indexes = None

    def _index(self) -> "_Indexes":
        if self._indexes is None:
            self._indexes = _Indexes.build(self._messages)
        return self._indexes

    def __len__(self) -> int:
        return len(self._messages)

    def __iter__(self) -> Iterator[IntelMessage]:
        return iter(self._messages)

    def all(self) -> list[IntelMessage]:
        return list(self._messages)

    # -- filters ---------------------------------------------------------------

    def filter(
        self, predicate: Callable[[IntelMessage], bool]
    ) -> "MessageStore":
        return MessageStore(m for m in self._messages if predicate(m))

    def with_key(self, key_id: str) -> "MessageStore":
        return MessageStore(self._index().by_key.get(key_id, ()))

    def with_entity(self, entity: str) -> "MessageStore":
        return MessageStore(self._index().by_entity.get(entity, ()))

    def with_identifier_type(self, id_type: str) -> "MessageStore":
        return self.filter(lambda m: id_type in m.identifiers)

    def in_session(self, session_id: str) -> "MessageStore":
        return MessageStore(self._index().by_session.get(session_id, ()))

    def between(self, start: float, end: float) -> "MessageStore":
        return self.filter(lambda m: start <= m.timestamp <= end)

    # -- GroupBy operators (case study 1) --------------------------------------------

    def group_by(
        self, key_fn: Callable[[IntelMessage], Iterable[str]]
    ) -> dict[str, "MessageStore"]:
        """Group messages by (possibly multiple) string keys per message."""
        groups: dict[str, MessageStore] = {}
        for message in self._messages:
            for group_key in key_fn(message):
                groups.setdefault(group_key, MessageStore()).add(message)
        return groups

    def group_by_identifier(self, id_type: str) -> dict[str, "MessageStore"]:
        """GroupBy an identifier type's values ("GroupBy on the Intel
        Messages based on their identifiers")."""
        return self.group_by(
            lambda m: m.identifiers.get(id_type, ())
        )

    def group_by_locality(
        self, name: str | None = None
    ) -> dict[str, "MessageStore"]:
        """GroupBy location information ("another GroupBy based on the
        location information")."""

        def keys(message: IntelMessage) -> Iterable[str]:
            if name is not None:
                return message.localities.get(name, ())
            return (
                value
                for values in message.localities.values()
                for value in values
            )

        return self.group_by(keys)

    def group_by_session(self) -> dict[str, "MessageStore"]:
        return self.group_by(lambda m: (m.session_id,))

    # -- aggregates ---------------------------------------------------------------------

    def value_series(self, name: str) -> list[tuple[float, float]]:
        """(timestamp, value) series for a named value field."""
        series = [
            (m.timestamp, v)
            for m in self._messages
            for v in m.values.get(name, ())
        ]
        series.sort()
        return series

    def identifier_values(self, id_type: str) -> set[str]:
        return {
            v
            for m in self._messages
            for v in m.identifiers.get(id_type, ())
        }

    # -- JSON I/O ---------------------------------------------------------------------------

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(
            [m.to_dict() for m in self._messages], indent=indent
        )

    def dump(self, fp: IO[str]) -> None:
        fp.write(self.to_json())

    @classmethod
    def from_json(cls, text: str) -> "MessageStore":
        data = json.loads(text)
        return cls(IntelMessage.from_dict(item) for item in data)

    @classmethod
    def load(cls, fp: IO[str]) -> "MessageStore":
        return cls.from_json(fp.read())


@dataclass(slots=True)
class _Indexes:
    """Inverted indexes over a message list (insertion order preserved)."""

    by_key: dict[str, list[IntelMessage]]
    by_entity: dict[str, list[IntelMessage]]
    by_session: dict[str, list[IntelMessage]]

    @classmethod
    def build(cls, messages: list[IntelMessage]) -> "_Indexes":
        by_key: dict[str, list[IntelMessage]] = {}
        by_entity: dict[str, list[IntelMessage]] = {}
        by_session: dict[str, list[IntelMessage]] = {}
        for message in messages:
            by_key.setdefault(message.key_id, []).append(message)
            by_session.setdefault(message.session_id, []).append(message)
            for entity in dict.fromkeys(message.entities):
                by_entity.setdefault(entity, []).append(message)
        return cls(by_key=by_key, by_entity=by_entity,
                   by_session=by_session)


@dataclass(slots=True)
class ModelStore:
    """Persisted form of a trained IntelLog model.

    One JSON document carrying the pipeline config, the learned log keys
    (enough to rebuild the Spell parser) and the full ``HWGraph``
    serialization.  ``repro train`` writes it, ``repro detect`` /
    ``repro inspect`` / ``repro lint-model`` read it, and
    :meth:`validate` runs the static artifact checks over the payload.
    """

    config: dict[str, Any] = field(default_factory=dict)
    log_keys: list[dict[str, Any]] = field(default_factory=list)
    hw_graph: dict[str, Any] = field(default_factory=dict)

    # -- construction -------------------------------------------------------

    @classmethod
    def from_intellog(cls, intellog: "IntelLog") -> "ModelStore":
        """Snapshot a trained :class:`~repro.core.intellog.IntelLog`."""
        return cls(
            config={
                "spell_tau": intellog.config.spell_tau,
                "formatter": intellog.config.formatter,
            },
            log_keys=[
                {
                    "key_id": key.key_id,
                    "tokens": list(key.tokens),
                    "sample": key.sample,
                }
                for key in intellog.spell.keys()
            ],
            hw_graph=intellog.hw_graph().to_dict(),
        )

    def to_intellog(self) -> "IntelLog":
        """Full-fidelity restore: log keys, Intel Keys and the trained
        HW-graph (statistics included) are rebuilt from the payload."""
        from ..core.config import IntelLogConfig
        from ..core.intellog import IntelLog
        from ..detection.detector import AnomalyDetector
        from ..graph.hwgraph import HWGraph
        from ..parsing.spell import LogKey

        config = IntelLogConfig(
            spell_tau=float(self.config.get("spell_tau", 1.7)),
            formatter=str(self.config.get("formatter", "generic")),
        )
        intellog = IntelLog(config)
        for entry in self.log_keys:
            key = LogKey(
                key_id=entry["key_id"],
                tokens=list(entry["tokens"]),
                sample=entry["sample"],
            )
            intellog.spell._keys.append(key)  # restoring persisted state
            intellog.spell._next_id += 1
        intellog.spell._reindex()
        graph = HWGraph.from_dict(self.hw_graph)
        intellog.graph = graph
        intellog.intel_keys = dict(graph.intel_keys)
        intellog._detector = AnomalyDetector(
            graph, intellog.spell, intellog.extractor, config.detector,
        )
        return intellog

    # -- validation ---------------------------------------------------------

    def validate(self) -> "DiagnosticReport":
        """Static artifact checks over the serialized HW-graph."""
        from ..analysis.validate import validate_model_dict

        return validate_model_dict(self.hw_graph)

    # -- JSON I/O -----------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "config": self.config,
            "log_keys": self.log_keys,
            "hw_graph": self.hw_graph,
        }

    def canonical_bytes(self) -> bytes:
        """Canonical serialized form: sorted keys, tight separators.

        Two models are *the same model* iff their canonical bytes are
        equal; the golden-corpus regression suite and the parallel
        trainer's equivalence tests compare models through
        :meth:`digest` rather than structurally.
        """
        return json.dumps(
            self.to_dict(),
            sort_keys=True,
            separators=(",", ":"),
            ensure_ascii=True,
        ).encode("ascii")

    def digest(self) -> str:
        """SHA-256 over :meth:`canonical_bytes`."""
        import hashlib

        return hashlib.sha256(self.canonical_bytes()).hexdigest()

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json())

    def save_canonical(self, path: str | Path) -> str:
        """Atomically write :meth:`canonical_bytes`; return the digest.

        Used by the serving registry: the on-disk artifact is exactly
        the content the digest names, so a stored file can always be
        re-verified against its filename.  Temp-file + ``os.replace``
        keeps a crashed publish from leaving a torn artifact.
        """
        import os

        path = Path(path)
        body = self.canonical_bytes()
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_bytes(body)
        os.replace(tmp, path)
        import hashlib

        return hashlib.sha256(body).hexdigest()

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ModelStore":
        return cls(
            config=dict(data.get("config", {})),
            log_keys=list(data.get("log_keys", ())),
            hw_graph=dict(data.get("hw_graph", {})),
        )

    @classmethod
    def from_json(cls, text: str) -> "ModelStore":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load_path(cls, path: str | Path) -> "ModelStore":
        return cls.from_json(Path(path).read_text())
