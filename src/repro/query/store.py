"""Intel Message store (paper §3.3, §6.4).

Intel Messages are collections of key-value pairs that "naturally fit in
the storage structure of time series databases" and can be queried to
diagnose root causes — the paper's case study 1 applies successive GroupBy
operators on identifiers and locations to isolate 11 fetchers failing
against one host.  This module provides that queryable store.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import IO, Callable, Iterable, Iterator

from ..extraction.intelkey import IntelMessage


class MessageStore:
    """An in-memory, JSON-serialisable collection of Intel Messages."""

    def __init__(self, messages: Iterable[IntelMessage] = ()) -> None:
        self._messages: list[IntelMessage] = list(messages)

    def add(self, message: IntelMessage) -> None:
        self._messages.append(message)

    def extend(self, messages: Iterable[IntelMessage]) -> None:
        self._messages.extend(messages)

    def __len__(self) -> int:
        return len(self._messages)

    def __iter__(self) -> Iterator[IntelMessage]:
        return iter(self._messages)

    def all(self) -> list[IntelMessage]:
        return list(self._messages)

    # -- filters ---------------------------------------------------------------

    def filter(
        self, predicate: Callable[[IntelMessage], bool]
    ) -> "MessageStore":
        return MessageStore(m for m in self._messages if predicate(m))

    def with_key(self, key_id: str) -> "MessageStore":
        return self.filter(lambda m: m.key_id == key_id)

    def with_entity(self, entity: str) -> "MessageStore":
        return self.filter(lambda m: entity in m.entities)

    def with_identifier_type(self, id_type: str) -> "MessageStore":
        return self.filter(lambda m: id_type in m.identifiers)

    def in_session(self, session_id: str) -> "MessageStore":
        return self.filter(lambda m: m.session_id == session_id)

    def between(self, start: float, end: float) -> "MessageStore":
        return self.filter(lambda m: start <= m.timestamp <= end)

    # -- GroupBy operators (case study 1) --------------------------------------------

    def group_by(
        self, key_fn: Callable[[IntelMessage], Iterable[str]]
    ) -> dict[str, "MessageStore"]:
        """Group messages by (possibly multiple) string keys per message."""
        groups: dict[str, MessageStore] = {}
        for message in self._messages:
            for group_key in key_fn(message):
                groups.setdefault(group_key, MessageStore()).add(message)
        return groups

    def group_by_identifier(self, id_type: str) -> dict[str, "MessageStore"]:
        """GroupBy an identifier type's values ("GroupBy on the Intel
        Messages based on their identifiers")."""
        return self.group_by(
            lambda m: m.identifiers.get(id_type, ())
        )

    def group_by_locality(
        self, name: str | None = None
    ) -> dict[str, "MessageStore"]:
        """GroupBy location information ("another GroupBy based on the
        location information")."""

        def keys(message: IntelMessage) -> Iterable[str]:
            if name is not None:
                return message.localities.get(name, ())
            return (
                value
                for values in message.localities.values()
                for value in values
            )

        return self.group_by(keys)

    def group_by_session(self) -> dict[str, "MessageStore"]:
        return self.group_by(lambda m: (m.session_id,))

    # -- aggregates ---------------------------------------------------------------------

    def value_series(self, name: str) -> list[tuple[float, float]]:
        """(timestamp, value) series for a named value field."""
        series = [
            (m.timestamp, v)
            for m in self._messages
            for v in m.values.get(name, ())
        ]
        series.sort()
        return series

    def identifier_values(self, id_type: str) -> set[str]:
        return {
            v
            for m in self._messages
            for v in m.identifiers.get(id_type, ())
        }

    # -- JSON I/O ---------------------------------------------------------------------------

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(
            [m.to_dict() for m in self._messages], indent=indent
        )

    def dump(self, fp: IO[str]) -> None:
        fp.write(self.to_json())

    @classmethod
    def from_json(cls, text: str) -> "MessageStore":
        data = json.loads(text)
        return cls(IntelMessage.from_dict(item) for item in data)

    @classmethod
    def load(cls, fp: IO[str]) -> "MessageStore":
        return cls.from_json(fp.read())
