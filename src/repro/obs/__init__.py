"""`repro.obs` — dependency-free runtime observability (ISSUE 5).

Metric primitives (:mod:`repro.obs.registry`), hierarchical timing
(:mod:`repro.obs.span`), and exporters (:mod:`repro.obs.export`).
Subsystems accept a :class:`MetricsRegistry` at construction or via an
``instrument()`` hook; nothing in the package imports the rest of
``repro``, so every layer can depend on it without cycles.
"""

from .export import (
    SNAPSHOT_FORMAT,
    MetricsServer,
    json_snapshot,
    prometheus_text,
    render_snapshot,
    start_metrics_server,
    write_snapshot,
)
from .registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .span import SPAN_HISTOGRAM, Span, SpanRecord, TraceRecorder, Tracer, trace

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "SNAPSHOT_FORMAT",
    "SPAN_HISTOGRAM",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsServer",
    "Span",
    "SpanRecord",
    "TraceRecorder",
    "Tracer",
    "json_snapshot",
    "prometheus_text",
    "render_snapshot",
    "start_metrics_server",
    "trace",
    "write_snapshot",
]
