"""Exporters: Prometheus text exposition, canonical JSON snapshots,
a human-readable renderer, and the ``--metrics-port`` HTTP endpoint.

Two serializations of one registry:

* :func:`prometheus_text` — the text exposition format (version 0.0.4)
  that any Prometheus-compatible scraper understands, served by
  :func:`start_metrics_server` for ``repro watch --metrics-port``;
* :func:`json_snapshot` — a canonical dict (sorted metrics, sorted
  labels, stable shapes) written by ``--metrics-out`` on exit and
  rendered back by ``repro stats``.

The snapshot's ``snapshot_unix_s`` stamp is the one sanctioned
wall-clock read in the observability layer: it labels *when the export
happened* for operators correlating snapshots with cluster events, and
is never used as a measurement (all durations come from monotonic
clocks — see the DESIGN observability note and the astlint DET002
allowlist for ``repro/obs``).
"""

from __future__ import annotations

import json
import math
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any

from .registry import Histogram, MetricsRegistry

__all__ = [
    "SNAPSHOT_FORMAT",
    "MetricsServer",
    "json_snapshot",
    "prometheus_text",
    "render_snapshot",
    "start_metrics_server",
    "write_snapshot",
]

SNAPSHOT_FORMAT = "repro-metrics-v1"

#: Quantiles surfaced by the human renderer for histograms.
_RENDER_QUANTILES = (0.5, 0.99)


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: list[str] = []
    for metric in registry.metrics():
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, Histogram):
            for labels, sample in metric.samples():
                for le, count in sample["buckets"]:
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = (
                        "+Inf" if le == "+Inf" else _format_value(float(le))
                    )
                    lines.append(
                        f"{metric.name}_bucket"
                        f"{_format_labels(bucket_labels)} {count}"
                    )
                lines.append(
                    f"{metric.name}_sum{_format_labels(labels)} "
                    f"{repr(sample['sum'])}"
                )
                lines.append(
                    f"{metric.name}_count{_format_labels(labels)} "
                    f"{sample['count']}"
                )
        else:
            for labels, value in metric.samples():
                lines.append(
                    f"{metric.name}{_format_labels(labels)} "
                    f"{_format_value(value)}"
                )
    return "\n".join(lines) + "\n"


def json_snapshot(
    registry: MetricsRegistry, *, stamp: bool = True
) -> dict[str, Any]:
    """Canonical dict form of the registry.

    ``stamp=False`` omits the wall-clock export stamp, producing fully
    deterministic output (used by the golden exporter tests).
    """
    metrics: dict[str, Any] = {}
    for metric in registry.metrics():
        samples: list[dict[str, Any]] = []
        for labels, value in metric.samples():
            entry: dict[str, Any] = {"labels": labels}
            if isinstance(metric, Histogram):
                entry.update(value)
            else:
                entry["value"] = value
            samples.append(entry)
        metrics[metric.name] = {
            "type": metric.kind,
            "help": metric.help,
            "samples": samples,
        }
    snapshot: dict[str, Any] = {"format": SNAPSHOT_FORMAT}
    if stamp:
        snapshot["snapshot_unix_s"] = round(time.time(), 3)  # repro: allow=DET002 -- stamps when the export happened, never a measurement
    snapshot["metrics"] = metrics
    return snapshot


def write_snapshot(
    registry: MetricsRegistry, path: str | Path
) -> dict[str, Any]:
    """Serialize :func:`json_snapshot` to ``path``; returns the dict."""
    snapshot = json_snapshot(registry)
    Path(path).write_text(
        json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
    )
    return snapshot


def _histogram_quantile(sample: dict[str, Any], q: float) -> float:
    """Estimate a quantile from a snapshot's cumulative buckets."""
    count = sample.get("count", 0)
    if not count:
        return 0.0
    rank = q * count
    lower = 0.0
    previous = 0
    finite_upper = 0.0
    for le, cumulative in sample.get("buckets", ()):
        if le == "+Inf":
            break
        upper = float(le)
        finite_upper = upper
        if cumulative >= rank and cumulative > previous:
            in_bucket = cumulative - previous
            fraction = (rank - previous) / in_bucket
            return lower + (upper - lower) * fraction
        lower = upper
        previous = cumulative
    return finite_upper


def render_snapshot(snapshot: dict[str, Any]) -> str:
    """Human-readable rendering of a saved snapshot (``repro stats``)."""
    if snapshot.get("format") != SNAPSHOT_FORMAT:
        raise ValueError(
            f"not a {SNAPSHOT_FORMAT} snapshot "
            f"(format={snapshot.get('format')!r})"
        )
    lines: list[str] = []
    stamp = snapshot.get("snapshot_unix_s")
    if stamp is not None:
        lines.append(f"snapshot taken at unix {stamp}")
    for name, metric in sorted(snapshot.get("metrics", {}).items()):
        kind = metric.get("type", "untyped")
        lines.append(f"{name} ({kind})")
        for sample in metric.get("samples", ()):
            labels = _format_labels(sample.get("labels", {})) or "-"
            if kind == "histogram":
                count = sample.get("count", 0)
                total = sample.get("sum", 0.0)
                quantiles = "  ".join(
                    f"p{int(q * 100)}={_histogram_quantile(sample, q):.6f}s"
                    for q in _RENDER_QUANTILES
                )
                lines.append(
                    f"  {labels}  count={count}  sum={total:.6f}s  "
                    f"{quantiles}"
                )
            else:
                lines.append(
                    f"  {labels}  {_format_value(sample.get('value', 0.0))}"
                )
    return "\n".join(lines)


class _MetricsHandler(BaseHTTPRequestHandler):
    registry: MetricsRegistry  # injected by MetricsServer
    #: Extra JSON routes: path -> zero-arg callable returning a
    #: JSON-serialisable object (e.g. ``/tenants`` on the serve fleet).
    #: This is the *live* mapping owned by the MetricsServer — routes
    #: added via :meth:`MetricsServer.add_json_route` after startup are
    #: visible to the next request (the handler reads per request).
    json_routes: dict[str, Any] = {}

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        route = self.json_routes.get(path)
        if route is not None:
            body = json.dumps(
                route(), indent=2, sort_keys=True
            ).encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        if path not in ("/metrics", "/"):
            routes = ", ".join(sorted(self.json_routes) or ())
            self.send_error(
                404,
                "only /metrics is served"
                + (f" (plus {routes})" if routes else ""),
            )
            return
        body = prometheus_text(self.registry).encode("utf-8")
        self.send_response(200)
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:
        """Silence per-request stderr logging (scrapes are periodic)."""


class MetricsServer:
    """A background thread serving ``/metrics`` for one registry.

    The server is restartable: :meth:`stop` releases the listener
    socket and joins the thread, after which :meth:`start` binds a
    fresh socket (with ``port=0`` a *new* free port each cycle).  The
    constructor starts the server by default for backward
    compatibility; pass ``start=False`` to construct idle and start
    explicitly (the serving layer does, across restarts).
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        port: int,
        host: str = "127.0.0.1",
        *,
        json_routes: dict[str, Any] | None = None,
        start: bool = True,
    ) -> None:
        self._registry = registry
        self._requested_port = port
        self._host = host
        self._json_routes = dict(json_routes or {})
        self._lock = threading.Lock()
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        if start:
            self.start()

    def start(self) -> "MetricsServer":
        """Bind and serve; idempotent while already running."""
        # Socket creation is real IO — do it outside the lock, then
        # publish under the lock.  A concurrent start() that lost the
        # publication race closes its own socket and defers.
        # The handler gets the server's *live* route mapping, not a
        # copy, so add_json_route() works on a running server.  Reads
        # are single dict lookups (atomic under the GIL); writes happen
        # under self._lock.
        handler = type(
            "_BoundMetricsHandler", (_MetricsHandler,),
            {
                "registry": self._registry,
                "json_routes": self._json_routes,
            },
        )
        with self._lock:
            if self._server is not None:
                return self
        server = ThreadingHTTPServer(
            (self._host, self._requested_port), handler
        )
        thread = threading.Thread(
            target=server.serve_forever,
            name="repro-metrics-exporter",
            daemon=True,
        )
        publish = False
        with self._lock:
            if self._server is None:
                self._server = server
                self._thread = thread
                publish = True
        if publish:
            thread.start()
        else:
            server.server_close()
        return self

    def add_json_route(self, path: str, route: Any) -> None:
        """Register a JSON route on a (possibly running) server.

        ``route`` is a zero-arg callable returning a JSON-serialisable
        object; it becomes visible to the very next request.  Restarts
        keep every registered route.
        """
        if not path.startswith("/"):
            raise ValueError(f"route path must start with '/': {path!r}")
        with self._lock:
            self._json_routes[path] = route

    @property
    def running(self) -> bool:
        with self._lock:
            return self._server is not None

    @property
    def port(self) -> int:
        with self._lock:
            server = self._server
        if server is None:
            raise RuntimeError("metrics server is not running")
        return int(server.server_address[1])

    @property
    def url(self) -> str:
        with self._lock:
            server = self._server
        if server is None:
            raise RuntimeError("metrics server is not running")
        host = server.server_address[0]
        return f"http://{host}:{int(server.server_address[1])}/metrics"

    def stop(self) -> None:
        """Shut down, release the socket and join the listener thread.

        Idempotent; after ``stop`` the instance can :meth:`start`
        again (a fresh bind — under ``port=0`` likely a fresh port).
        """
        with self._lock:
            server, self._server = self._server, None
            thread, self._thread = self._thread, None
        if server is None:
            return
        # shutdown() blocks on the serve_forever loop and join() on the
        # thread — both outside the lock so a concurrent start() (which
        # will see the cleared slot and bind anew) is never held up.
        server.shutdown()
        server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def close(self) -> None:
        self.stop()


def start_metrics_server(
    registry: MetricsRegistry, port: int, host: str = "127.0.0.1"
) -> MetricsServer:
    """Serve ``registry`` at ``http://host:port/metrics`` (port 0 picks
    a free port; read it back from ``server.port``)."""
    return MetricsServer(registry, port, host)
