"""Metric primitives: counters, gauges, fixed-bucket histograms.

The registry is the single mutable store behind the runtime
observability layer (ISSUE 5): hot paths increment metric objects they
obtained once at instrumentation time, exporters walk the registry to
produce the Prometheus text exposition or the canonical JSON snapshot
(:mod:`repro.obs.export`).

Design constraints, in priority order:

* **dependency-free** — stdlib only, so every subsystem (parsing,
  detection, stream, parallel) can depend on it without import cycles;
* **cheap when idle** — an uninstrumented ``SpellParser.match`` pays one
  ``is None`` check and nothing else; an instrumented one pays a couple
  of lock-guarded float adds;
* **thread-safe** — the stream runtime's stats can be scraped from the
  ``--metrics-port`` exporter thread while the event loop increments;
  one :class:`threading.RLock` per registry is shared by all its metric
  children (contention is negligible at the rates involved);
* **deterministic exports** — metric and label ordering is sorted, so
  snapshot output is canonical and diffable (the same property the
  model store relies on).

Naming follows the Prometheus conventions: ``*_total`` counters,
``*_seconds`` histograms, bare nouns for gauges.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Any, Iterator, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram bucket upper bounds, log-spaced from 1µs to 10s —
#: sized for per-message match/extraction latencies (paper §6.5 measures
#: parsing overhead in this range) while still resolving whole-phase
#: spans at the top end.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6,
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)

#: Canonical key for one label set: sorted (name, value) pairs.
_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, str]) -> _LabelKey:
    for name in labels:
        if not _LABEL_RE.match(name):
            raise ValueError(f"invalid label name {name!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class _Metric:
    """Common family behaviour: identity, labeled children, samples.

    A metric object is both the *family* (what the registry hands out)
    and its own unlabeled child; :meth:`labels` returns (creating on
    first use) the child for one label set.  Children share the
    family's lock and never register themselves — the family owns them.
    """

    kind = "untyped"

    def __init__(
        self, name: str, help: str, lock: threading.RLock
    ) -> None:
        self.name = name
        self.help = help
        self._lock = lock
        self._children: dict[_LabelKey, "_Metric"] = {}
        self._labels: _LabelKey = ()
        self._touched = False

    def labels(self, **labelvalues: str) -> Any:
        """The child metric for one label set (created on first use)."""
        key = _label_key(labelvalues)
        if not key:
            return self
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = type(self)(self.name, self.help, self._lock)
                self._copy_config(child)
                child._labels = key
                self._children[key] = child
            return child

    def _copy_config(self, child: "_Metric") -> None:
        """Propagate construction parameters to a new child."""

    def samples(self) -> list[tuple[dict[str, str], Any]]:
        """``(labels, value)`` pairs: unlabeled first, children sorted."""
        with self._lock:
            out: list[tuple[dict[str, str], Any]] = []
            if self._touched or not self._children:
                out.append((dict(self._labels), self._sample_value()))
            for key in sorted(self._children):
                child = self._children[key]
                out.append((dict(key), child._sample_value()))
            return out

    def _sample_value(self) -> Any:
        raise NotImplementedError


class Counter(_Metric):
    """Monotonically increasing count (events, records, failures)."""

    kind = "counter"

    def __init__(
        self, name: str, help: str, lock: threading.RLock
    ) -> None:
        super().__init__(name, help, lock)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name} cannot decrease (inc {amount})"
            )
        with self._lock:
            self._value += amount
            self._touched = True

    def restore(self, value: float) -> None:
        """Overwrite the count — **checkpoint resume only**.

        Counters are monotonic in normal operation; the stream runtime
        uses this single escape hatch to carry cumulative counts across
        a process restart (the checkpoint is the continuation of the
        same logical run).
        """
        if value < 0:
            raise ValueError(f"counter {self.name} cannot go negative")
        with self._lock:
            self._value = float(value)
            self._touched = True

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _sample_value(self) -> float:
        return self._value


class Gauge(_Metric):
    """Point-in-time value that can go up and down (depths, sizes)."""

    kind = "gauge"

    def __init__(
        self, name: str, help: str, lock: threading.RLock
    ) -> None:
        super().__init__(name, help, lock)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)
            self._touched = True

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount
            self._touched = True

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _sample_value(self) -> float:
        return self._value


class Histogram(_Metric):
    """Fixed-bucket histogram with cumulative (Prometheus-style) counts.

    Buckets are upper bounds (``le``); every observation lands in each
    bucket whose bound is >= the value, plus the implicit ``+Inf``
    bucket.  Quantiles are estimated from the bucket counts the same
    way ``histogram_quantile`` does: linear interpolation within the
    bucket that crosses the target rank.
    """

    kind = "histogram"

    def __init__(
        self, name: str, help: str, lock: threading.RLock
    ) -> None:
        super().__init__(name, help, lock)
        self._bounds: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS
        self._counts = [0] * (len(self._bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def _configure(self, buckets: Sequence[float]) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram buckets must be strictly increasing")
        # _bounds/_counts must swap atomically w.r.t. observe(): a
        # concurrent observer indexing new bounds against old counts
        # would write out of range.  The family RLock is reentrant, so
        # callers already holding it (registry, labels()) are fine.
        with self._lock:
            self._bounds = bounds
            self._counts = [0] * (len(bounds) + 1)

    def _copy_config(self, child: "_Metric") -> None:
        assert isinstance(child, Histogram)
        child._configure(self._bounds)

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            self._touched = True
            for i, bound in enumerate(self._bounds):
                if value <= bound:
                    self._counts[i] += 1
                    return
            self._counts[-1] += 1

    def observe_many(self, value: float, count: int) -> None:
        """Record ``count`` observations of ``value`` in one update.

        Equivalent to ``count`` calls to :meth:`observe` (same bucket,
        sum and count movement) at one lock acquisition and one bucket
        search — the batched match path reports its amortized
        per-record latency this way.
        """
        if count <= 0:
            return
        with self._lock:
            self._sum += value * count
            self._count += count
            self._touched = True
            for i, bound in enumerate(self._bounds):
                if value <= bound:
                    self._counts[i] += count
                    return
            self._counts[-1] += count

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(le, count)`` pairs, ending with ``(inf, count)``."""
        with self._lock:
            out: list[tuple[float, int]] = []
            running = 0
            for bound, n in zip(self._bounds, self._counts):
                running += n
                out.append((bound, running))
            out.append((math.inf, self._count))
            return out

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 <= q <= 1); 0.0 when empty.

        Interpolates linearly inside the crossing bucket; observations
        beyond the last finite bound report that bound (the estimate is
        clamped, exactly like PromQL's ``histogram_quantile``).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = q * self._count
            running = 0
            lower = 0.0
            for bound, n in zip(self._bounds, self._counts):
                if n and running + n >= rank:
                    fraction = (rank - running) / n
                    return lower + (bound - lower) * fraction
                running += n
                lower = bound
            return self._bounds[-1]

    def _sample_value(self) -> dict[str, Any]:
        return {
            "count": self._count,
            "sum": self._sum,
            "buckets": [
                ["+Inf" if math.isinf(le) else le, n]
                for le, n in self._bucket_counts_locked()
            ],
        }

    def _bucket_counts_locked(self) -> list[tuple[float, int]]:
        out: list[tuple[float, int]] = []
        running = 0
        for bound, n in zip(self._bounds, self._counts):
            running += n
            out.append((bound, running))
        out.append((math.inf, self._count))
        return out


class MetricsRegistry:
    """Get-or-create store of named metrics.

    ``counter`` / ``gauge`` / ``histogram`` return the existing metric
    when the name is already registered (so independent call sites can
    share one series) and raise :class:`TypeError` when the name is
    registered under a different kind.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: dict[str, _Metric] = {}

    def _get_or_create(
        self, cls: type[_Metric], name: str, help: str
    ) -> _Metric:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TypeError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                return existing
            metric = cls(name, help, self._lock)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        metric = self._get_or_create(Counter, name, help)
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str, help: str = "") -> Gauge:
        metric = self._get_or_create(Gauge, name, help)
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] | None = None,
    ) -> Histogram:
        with self._lock:
            created = name not in self._metrics
            metric = self._get_or_create(Histogram, name, help)
            assert isinstance(metric, Histogram)
            if created and buckets is not None:
                metric._configure(buckets)
            return metric

    def metrics(self) -> Iterator[_Metric]:
        """Registered metrics in sorted name order."""
        with self._lock:
            items = sorted(self._metrics.items())
        for _, metric in items:
            yield metric

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._metrics

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)
