"""Hierarchical timing: spans, a ring-buffer recorder, and tracers.

A :class:`Span` measures one named region of work against a monotonic
clock; nesting spans (or pre-measured :meth:`Tracer.record` calls made
inside an open span) yields a parent/depth chain, so a recorded trace
reads like a flame graph of the pipeline::

    tracer = Tracer(registry=registry)
    with tracer.span("train.parallel"):
        with tracer.span("train.parse"):
            ...
    tracer.recorder.records()   # [train.parse (depth 1), train.parallel]

Completed spans land in a bounded :class:`TraceRecorder` (a ring buffer
— old spans are dropped, never the process) and, when the tracer is
built over a :class:`~repro.obs.registry.MetricsRegistry`, feed the
``trace_span_seconds`` histogram labeled by span name, so exporters see
phase latencies without replaying the trace.

All timing uses ``time.perf_counter`` (monotonic); see the DESIGN note
on why the observability layer never derives measurements from wall
clocks.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .registry import Histogram, MetricsRegistry

__all__ = ["Span", "SpanRecord", "TraceRecorder", "Tracer", "trace"]

#: Metric fed by every completed span of a registry-backed tracer.
SPAN_HISTOGRAM = "trace_span_seconds"


@dataclass(slots=True)
class SpanRecord:
    """One completed span, as stored in the trace ring buffer."""

    name: str
    #: Name of the innermost span open when this one started (None at
    #: top level).
    parent: str | None
    #: Nesting depth at completion time (0 = top level).
    depth: int
    #: Start instant on the tracer's monotonic clock (comparable only
    #: within one process lifetime).
    start_s: float
    duration_s: float
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "parent": self.parent,
            "depth": self.depth,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "attrs": dict(self.attrs),
        }


class TraceRecorder:
    """Bounded buffer of completed spans (oldest evicted first)."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._buffer: deque[SpanRecord] = deque(maxlen=capacity)
        self._total = 0

    def record(self, record: SpanRecord) -> None:
        with self._lock:
            self._buffer.append(record)
            self._total += 1

    def records(self) -> list[SpanRecord]:
        """Retained spans, oldest first."""
        with self._lock:
            return list(self._buffer)

    @property
    def total(self) -> int:
        """Spans ever recorded (including since-evicted ones)."""
        with self._lock:
            return self._total

    @property
    def dropped(self) -> int:
        """Spans evicted by the ring buffer."""
        with self._lock:
            return self._total - len(self._buffer)


class Span:
    """Context manager timing one region; exposes ``duration_s`` after
    exit (used e.g. by the parallel trainer to fill its stage report)."""

    __slots__ = ("name", "attrs", "duration_s", "_tracer", "_start")

    def __init__(
        self, tracer: "Tracer", name: str, attrs: dict[str, Any]
    ) -> None:
        self.name = name
        self.attrs = attrs
        self.duration_s = 0.0
        self._tracer = tracer
        self._start = 0.0

    def __enter__(self) -> "Span":
        self._start = self._tracer._clock()
        self._tracer._push(self.name)
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self._tracer._pop()
        self.duration_s = max(
            0.0, self._tracer._clock() - self._start
        )
        self._tracer._finish(
            self.name, self._start, self.duration_s, self.attrs
        )


class Tracer:
    """Produces spans against one recorder (and optional registry).

    The open-span stack is thread-local, so concurrent threads build
    independent hierarchies into the shared recorder.
    """

    def __init__(
        self,
        recorder: TraceRecorder | None = None,
        registry: "MetricsRegistry | None" = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.recorder = recorder or TraceRecorder()
        self._clock = clock
        self._local = threading.local()
        self._histogram: "Histogram | None" = None
        # Labeled child per span name — labels() is idempotent, so the
        # unlocked get/set race is benign (both writers store the same
        # child object).
        self._span_children: dict[str, "Histogram"] = {}
        if registry is not None:
            self._histogram = registry.histogram(
                SPAN_HISTOGRAM,
                "Duration of traced pipeline spans by name.",
            )

    # -- public API -------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Span:
        """A context manager timing ``name`` as a child of the current
        span."""
        return Span(self, name, attrs)

    def record(
        self, name: str, duration_s: float, **attrs: Any
    ) -> SpanRecord:
        """Record a pre-measured duration as a span.

        For phases whose time is accumulated across many small slices
        (e.g. the per-record match time inside ``detect_session``) where
        opening a context manager per slice would distort the numbers.
        The span is parented under whatever span is currently open.
        """
        start = self._clock() - max(0.0, duration_s)
        return self._finish(name, start, max(0.0, duration_s), attrs)

    # -- span bookkeeping -------------------------------------------------

    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, name: str) -> None:
        self._stack().append(name)

    def _pop(self) -> None:
        stack = self._stack()
        if stack:
            stack.pop()

    def _finish(
        self,
        name: str,
        start_s: float,
        duration_s: float,
        attrs: dict[str, Any],
    ) -> SpanRecord:
        stack = self._stack()
        record = SpanRecord(
            name=name,
            parent=stack[-1] if stack else None,
            depth=len(stack),
            start_s=start_s,
            duration_s=duration_s,
            attrs=attrs,
        )
        self.recorder.record(record)
        if self._histogram is not None:
            child = self._span_children.get(name)
            if child is None:
                child = self._span_children[name] = self._histogram.labels(
                    span=name
                )
            child.observe(duration_s)
        return record


#: Process-default tracer backing the bare :func:`trace` helper — handy
#: for ad-hoc timing; subsystems that export metrics build their own
#: ``Tracer(registry=...)`` instead.
_DEFAULT_TRACER = Tracer()


def trace(name: str, **attrs: Any) -> Span:
    """``with trace("phase"):`` against the process-default tracer."""
    return _DEFAULT_TRACER.span(name, **attrs)
