"""AST-based determinism and hygiene lint for the codebase itself.

The simulators' determinism contract — every random draw flows through a
seeded ``np.random.Generator``, no wall-clock time in library code — was
enforced only by convention.  This module makes it mechanical: a small
AST-walker framework with repo-specific rules, runnable as
``repro lint-code [paths...]``, via ``tools/run_astlint.py``, and as a
pytest-collected check (``tests/test_astlint.py``) so it rides tier-1.

Rules (codes registered in :mod:`repro.analysis.diagnostics`):

* ``DET001`` — unseeded ``np.random.default_rng()`` call, or any use of
  the stdlib ``random`` module;
* ``DET002`` — wall-clock time sources: ``time.time()``,
  ``time.time_ns()``, ``datetime.now()``, ``datetime.utcnow()``,
  ``datetime.today()``, ``date.today()``;
* ``DET003`` — iteration over a ``set``/``frozenset`` expression in an
  order-sensitive context (``for`` loops, list/dict/generator
  comprehensions, ``list()``/``tuple()``/``enumerate()``): the order
  varies with ``PYTHONHASHSEED``, so models trained from it would not be
  byte-stable — sort first;
* ``PY001`` — mutable default argument (list/dict/set literal or
  constructor call);
* ``PY002`` — bare ``except:``, or ``except Exception:`` whose body is
  only ``pass`` (error swallowing).

A finding is suppressed per line either by ``# noqa: CODE`` or by the
shared ``# repro: allow=CODE -- reason`` pragma
(:mod:`repro.analysis.suppress`) that the concurrency analyzer honours
too; the pragma's justification is mandatory and malformed/unknown
pragmas surface as ``SUP001``/``SUP002`` findings.  Whole subsystems
with a sanctioned exemption can be listed in :data:`PATH_ALLOWLIST`,
but the list is empty today — the previous ``repro/obs`` DET002 entry
was replaced by an inline pragma on the one sanctioned wall-clock line
(more precise: new wall-clock calls in obs are flagged again).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from .diagnostics import Diagnostic, DiagnosticReport
from .suppress import SuppressionIndex, scan_pragmas

__all__ = [
    "LintRule", "Linter", "PATH_ALLOWLIST", "lint_source", "lint_paths",
    "main",
]

#: Per-rule path allowlist: a finding is dropped when the module path
#: contains one of the listed fragments (POSIX separators; matched
#: against the normalised path, so it works from any checkout root).
#: Empty today: standing exemptions live on the exact sanctioned line
#: as per-line ``allow=CODE -- reason`` suppression pragmas instead,
#: which is both more precise and self-documenting.  The mechanism
#: stays for cases a per-line pragma cannot express (generated trees).
PATH_ALLOWLIST: dict[str, tuple[str, ...]] = {}


def _path_allowlisted(code: str, path: str) -> bool:
    fragments = PATH_ALLOWLIST.get(code)
    if not fragments:
        return False
    normalised = path.replace("\\", "/")
    return any(fragment in normalised for fragment in fragments)


#: Wall-clock call suffixes flagged by DET002: dotted-name endings.
_WALL_CLOCK_SUFFIXES = (
    ("time", "time"),
    ("time", "time_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
)


@dataclass(slots=True)
class ModuleContext:
    """Per-module facts gathered in a pre-pass over the tree."""

    path: str
    source_lines: list[str]
    #: Local names bound to the stdlib ``random`` module.
    random_aliases: set[str] = field(default_factory=set)
    #: Local names bound to ``numpy.random.default_rng``.
    default_rng_aliases: set[str] = field(default_factory=set)
    #: Parsed suppression pragmas for this module (see suppress.py).
    pragmas: SuppressionIndex | None = None

    def suppressed(self, line: int, code: str) -> bool:
        if self.pragmas is not None and self.pragmas.allows(line, code):
            return True
        if 1 <= line <= len(self.source_lines):
            text = self.source_lines[line - 1]
            if "# noqa" in text:
                tail = text.split("# noqa", 1)[1]
                return not tail.strip(": ") or code in tail
        return False


class LintRule:
    """One lint rule: a code plus per-node checks.

    Subclasses set :attr:`code` and override :meth:`check`; the linter
    calls :meth:`check` for every node whose type is in
    :attr:`node_types`.
    """

    code: str = ""
    #: AST node classes this rule wants to see (dispatch filter).
    node_types: tuple[type, ...] = ()

    def check(
        self, node: ast.AST, ctx: ModuleContext
    ) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diagnostic(
        self, message: str, node: ast.AST, ctx: ModuleContext
    ) -> Diagnostic:
        line = getattr(node, "lineno", 0)
        return Diagnostic.make(
            self.code, message,
            subject=ctx.path,
            location=f"{ctx.path}:{line}",
        )


def _dotted_suffix(func: ast.AST) -> tuple[str, ...]:
    """Trailing dotted names of a call target, e.g. ``a.b.c`` -> (a,b,c)."""
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return tuple(reversed(parts))


class UnseededRandomRule(LintRule):
    """DET001: unseeded ``default_rng()`` / stdlib ``random`` use."""

    code = "DET001"
    node_types = (ast.Call, ast.ImportFrom)

    def check(
        self, node: ast.AST, ctx: ModuleContext
    ) -> Iterator[Diagnostic]:
        if isinstance(node, ast.ImportFrom):
            if node.module == "random" and node.level == 0:
                names = ", ".join(a.name for a in node.names)
                yield self.diagnostic(
                    f"import of stdlib random primitives ({names}); use a "
                    f"seeded np.random.Generator instead",
                    node, ctx,
                )
            return
        assert isinstance(node, ast.Call)
        dotted = _dotted_suffix(node.func)
        if not dotted:
            return
        # Unseeded np.random.default_rng() (any alias of numpy).
        is_default_rng = (
            (len(dotted) == 1 and dotted[0] in ctx.default_rng_aliases)
            or (len(dotted) > 1 and dotted[-1] == "default_rng"
                and (dotted[0] in ("np", "numpy")
                     or dotted[-2] == "random"))
        )
        if is_default_rng:
            if not node.args and not node.keywords:
                yield self.diagnostic(
                    "np.random.default_rng() called without a seed "
                    "(non-deterministic generator)",
                    node, ctx,
                )
            return
        # Any call through the stdlib random module (random.random(), ...).
        if len(dotted) >= 2 and dotted[0] in ctx.random_aliases:
            yield self.diagnostic(
                f"call through stdlib random module "
                f"('{'.'.join(dotted)}'); use a seeded "
                f"np.random.Generator instead",
                node, ctx,
            )


class WallClockRule(LintRule):
    """DET002: wall-clock time sources in library code."""

    code = "DET002"
    node_types = (ast.Call,)

    def check(
        self, node: ast.AST, ctx: ModuleContext
    ) -> Iterator[Diagnostic]:
        assert isinstance(node, ast.Call)
        dotted = _dotted_suffix(node.func)
        if len(dotted) < 2:
            return
        for suffix in _WALL_CLOCK_SUFFIXES:
            if dotted[-2:] == suffix:
                yield self.diagnostic(
                    f"wall-clock call '{'.'.join(dotted)}' — timestamps "
                    f"must come from the simulated event clock or the "
                    f"input records",
                    node, ctx,
                )
                return


class SetIterationRule(LintRule):
    """DET003: set iteration where the resulting *order* is observable.

    Flags only expressions that are sets *by construction* — ``{a, b}``
    literals, set comprehensions and bare ``set(...)`` / ``frozenset(...)``
    calls — feeding an order-sensitive consumer.  Iterating a set-typed
    *variable* is invisible to a per-node syntactic rule; the golden
    suite's PYTHONHASHSEED runs are the behavioural backstop for those.
    ``sorted(set(...))``, membership tests and aggregations (``sum``,
    ``max``...) are order-insensitive and stay clean.
    """

    code = "DET003"
    node_types = (ast.For, ast.AsyncFor, ast.ListComp, ast.DictComp,
                  ast.GeneratorExp, ast.Call)

    _order_sensitive_calls = {"list", "tuple", "enumerate"}

    @staticmethod
    def _set_expr(node: ast.AST) -> str | None:
        """A description of ``node`` when it is a set by construction."""
        if isinstance(node, ast.Set):
            return "a set literal"
        if isinstance(node, ast.SetComp):
            return "a set comprehension"
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("set", "frozenset"):
                return f"a {node.func.id}() call"
        return None

    def check(
        self, node: ast.AST, ctx: ModuleContext
    ) -> Iterator[Diagnostic]:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            what = self._set_expr(node.iter)
            if what:
                yield self.diagnostic(
                    f"for-loop iterates {what}; iteration order depends "
                    f"on PYTHONHASHSEED — iterate sorted(...) instead",
                    node, ctx,
                )
        elif isinstance(node, (ast.ListComp, ast.DictComp,
                               ast.GeneratorExp)):
            for gen in node.generators:
                what = self._set_expr(gen.iter)
                if what:
                    yield self.diagnostic(
                        f"comprehension iterates {what}; element order "
                        f"depends on PYTHONHASHSEED — iterate "
                        f"sorted(...) instead",
                        node, ctx,
                    )
        elif isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in self._order_sensitive_calls
                and node.args
            ):
                what = self._set_expr(node.args[0])
                if what:
                    yield self.diagnostic(
                        f"{node.func.id}() materialises {what} in hash "
                        f"order (varies with PYTHONHASHSEED) — use "
                        f"sorted(...) instead",
                        node, ctx,
                    )


class MutableDefaultRule(LintRule):
    """PY001: mutable default arguments."""

    code = "PY001"
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef)

    _mutable_calls = {"list", "dict", "set", "defaultdict", "OrderedDict"}

    def _is_mutable(self, default: ast.AST) -> bool:
        if isinstance(default, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                                ast.DictComp, ast.SetComp)):
            return True
        if isinstance(default, ast.Call):
            dotted = _dotted_suffix(default.func)
            return bool(dotted) and dotted[-1] in self._mutable_calls
        return False

    def check(
        self, node: ast.AST, ctx: ModuleContext
    ) -> Iterator[Diagnostic]:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        args = node.args
        positional = args.posonlyargs + args.args
        for arg, default in zip(
            positional[len(positional) - len(args.defaults):],
            args.defaults,
        ):
            if self._is_mutable(default):
                yield self.diagnostic(
                    f"mutable default for argument '{arg.arg}' of "
                    f"'{node.name}' is shared across calls",
                    default, ctx,
                )
        for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
            if kw_default is not None and self._is_mutable(kw_default):
                yield self.diagnostic(
                    f"mutable default for argument '{arg.arg}' of "
                    f"'{node.name}' is shared across calls",
                    kw_default, ctx,
                )


class SwallowedExceptionRule(LintRule):
    """PY002: bare except / ``except Exception: pass``."""

    code = "PY002"
    node_types = (ast.ExceptHandler,)

    def _broad(self, expr: ast.AST | None) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in ("Exception", "BaseException")
        if isinstance(expr, ast.Tuple):
            return any(self._broad(el) for el in expr.elts)
        return False

    def check(
        self, node: ast.AST, ctx: ModuleContext
    ) -> Iterator[Diagnostic]:
        assert isinstance(node, ast.ExceptHandler)
        if node.type is None:
            yield self.diagnostic(
                "bare 'except:' catches SystemExit/KeyboardInterrupt too; "
                "name the exception type",
                node, ctx,
            )
            return
        body_is_pass = all(
            isinstance(stmt, ast.Pass) for stmt in node.body
        )
        if body_is_pass and self._broad(node.type):
            yield self.diagnostic(
                "'except Exception: pass' silently swallows errors; "
                "narrow the type or handle/log the failure",
                node, ctx,
            )


DEFAULT_RULES: tuple[type[LintRule], ...] = (
    UnseededRandomRule,
    WallClockRule,
    SetIterationRule,
    MutableDefaultRule,
    SwallowedExceptionRule,
)


class Linter:
    """Walks Python sources once, dispatching nodes to registered rules."""

    def __init__(
        self, rules: Sequence[type[LintRule]] = DEFAULT_RULES
    ) -> None:
        self.rules: list[LintRule] = [rule() for rule in rules]

    # -- context pre-pass ---------------------------------------------------

    @staticmethod
    def _gather_context(tree: ast.Module, ctx: ModuleContext) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        ctx.random_aliases.add(alias.asname or "random")
            elif isinstance(node, ast.ImportFrom):
                if node.module in ("numpy.random", "numpy"):
                    for alias in node.names:
                        if alias.name == "default_rng":
                            ctx.default_rng_aliases.add(
                                alias.asname or alias.name
                            )

    # -- linting ------------------------------------------------------------

    def lint_tree(
        self, tree: ast.Module, ctx: ModuleContext
    ) -> list[Diagnostic]:
        self._gather_context(tree, ctx)
        findings: list[Diagnostic] = []
        for node in ast.walk(tree):
            for rule in self.rules:
                if not isinstance(node, rule.node_types):
                    continue
                if _path_allowlisted(rule.code, ctx.path):
                    continue
                for diag in rule.check(node, ctx):
                    line = getattr(node, "lineno", 0)
                    if not ctx.suppressed(line, rule.code):
                        findings.append(diag)
        findings.sort(key=lambda d: (d.location, d.code))
        return findings

    def lint_source(self, source: str, path: str) -> list[Diagnostic]:
        pragmas = scan_pragmas(source, path)
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return [Diagnostic.make(
                "PY002",
                f"file does not parse: {exc.msg}",
                subject=path,
                location=f"{path}:{exc.lineno or 0}",
            )]
        ctx = ModuleContext(
            path=path,
            source_lines=source.splitlines(),
            pragmas=pragmas,
        )
        # Pragma errors (unknown code, missing justification) are
        # findings themselves — a broken suppression must not pass CI.
        return list(pragmas.diagnostics) + self.lint_tree(tree, ctx)

    def lint_file(self, path: Path) -> list[Diagnostic]:
        return self.lint_source(
            path.read_text(encoding="utf-8"), str(path)
        )


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into ``.py`` files, sorted, deduplicated."""
    seen: set[Path] = set()
    for entry in paths:
        root = Path(entry)
        if not root.exists():
            raise FileNotFoundError(f"no such file or directory: {entry!r}")
        candidates = (
            sorted(root.rglob("*.py")) if root.is_dir() else [root]
        )
        for candidate in candidates:
            if candidate.suffix == ".py" and candidate not in seen:
                seen.add(candidate)
                yield candidate


def lint_source(source: str, path: str = "<string>") -> DiagnosticReport:
    report = DiagnosticReport()
    report.extend(Linter().lint_source(source, path))
    return report


def lint_paths(paths: Iterable[str | Path]) -> DiagnosticReport:
    """Lint every ``.py`` file under ``paths`` with the default rules."""
    linter = Linter()
    report = DiagnosticReport()
    for path in iter_python_files(paths):
        report.extend(linter.lint_file(path))
    return report


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point (``tools/run_astlint.py`` delegates here)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="astlint",
        description="Determinism & hygiene lint for the repro codebase.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    args = parser.parse_args(argv)
    try:
        report = lint_paths(args.paths)
    except FileNotFoundError as exc:
        raise SystemExit(f"error: {exc}")
    if report:
        print(report.render())
    print(report.summary())
    return 1 if report else 0
