"""Shared inline suppression pragmas for the static-analysis layer.

Both lint passes — the per-node AST lint (:mod:`repro.analysis.astlint`)
and the whole-program concurrency analysis
(:mod:`repro.analysis.concurrency`) — honour one pragma syntax::

    some_call()  # repro: allow=RACE001 -- why this is safe here
    other()      # repro: allow=DET002,RACE005 -- one reason for both

Rules:

* the pragma suppresses only the listed codes, only on its own line
  (per-rule scoping — a ``RACE001`` pragma never hides a ``RACE005``);
* every code must be registered in
  :data:`repro.analysis.diagnostics.DIAGNOSTIC_CODES` — unknown or
  malformed codes are *rejected* with a ``SUP001`` diagnostic instead of
  silently suppressing nothing;
* the justification after ``--`` is mandatory: a pragma without one
  reports ``SUP002``, so the codebase can never accumulate unexplained
  suppressions (the CI gate requires zero diagnostics, including these).

Pragmas are found with :mod:`tokenize`, so the pattern inside a string
literal (like the regex below) is never mistaken for a real pragma.

This subsumes the blunter per-path ``PATH_ALLOWLIST`` mechanism from the
first static-analysis PR: a standing exemption now lives on the exact
line it sanctions, next to its one-line justification.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from .diagnostics import DIAGNOSTIC_CODES, Diagnostic

__all__ = ["SuppressionIndex", "scan_pragmas"]

#: A well-formed pragma: hash, ``repro:``, ``allow=CODE[,CODE...]``,
#: then an optional ``-- reason`` (spelled abstractly here so this very
#: comment is not itself parsed as a pragma attempt).
_PRAGMA_RE = re.compile(
    r"#\s*repro:\s*allow\s*=\s*"
    r"(?P<codes>[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*)"
    r"\s*(?:--\s*(?P<why>\S.*?)\s*)?$"
)

#: Loose detector for *attempted* pragmas, so typos are rejected loudly
#: instead of silently not suppressing.
_ATTEMPT_RE = re.compile(r"#\s*repro:\s*allow")


@dataclass(slots=True)
class SuppressionIndex:
    """Per-module map of ``line -> allowed codes`` plus pragma errors."""

    path: str
    by_line: dict[int, set[str]] = field(default_factory=dict)
    #: SUP001/SUP002 findings raised while parsing the pragmas.
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def allows(self, line: int, code: str) -> bool:
        return code in self.by_line.get(line, ())


def _comment_tokens(source: str) -> list[tuple[int, str]]:
    """``(line, text)`` of every comment token; [] on unreadable input."""
    out: list[tuple[int, str]] = []
    reader = io.StringIO(source).readline
    try:
        for tok in tokenize.generate_tokens(reader):
            if tok.type == tokenize.COMMENT:
                out.append((tok.start[0], tok.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # A file that does not tokenize is reported by the linters
        # themselves; pragma scanning just yields what it saw so far.
        pass
    return out


def scan_pragmas(source: str, path: str) -> SuppressionIndex:
    """Parse every ``# repro: allow=`` pragma in ``source``.

    Returns the per-line suppression table plus ``SUP001`` (unknown or
    malformed code) and ``SUP002`` (missing justification) diagnostics.
    """
    index = SuppressionIndex(path=path)
    for line, comment in _comment_tokens(source):
        if not _ATTEMPT_RE.search(comment):
            continue
        location = f"{path}:{line}"
        match = _PRAGMA_RE.search(comment)
        if match is None:
            index.diagnostics.append(Diagnostic.make(
                "SUP001",
                "malformed suppression pragma (expected "
                "'# repro: allow=CODE[,CODE] -- reason')",
                subject=comment.strip(),
                location=location,
            ))
            continue
        codes = [c.strip() for c in match.group("codes").split(",")]
        unknown = [c for c in codes if c not in DIAGNOSTIC_CODES]
        known = [c for c in codes if c in DIAGNOSTIC_CODES]
        for code in unknown:
            index.diagnostics.append(Diagnostic.make(
                "SUP001",
                f"unknown diagnostic code {code!r} in suppression pragma",
                subject=code,
                location=location,
            ))
        if not match.group("why"):
            index.diagnostics.append(Diagnostic.make(
                "SUP002",
                "suppression pragma without justification (append "
                "' -- <one-line reason>')",
                subject=",".join(codes),
                location=location,
            ))
        if known:
            index.by_line.setdefault(line, set()).update(known)
    return index
