"""Whole-program concurrency static analysis for the runtime itself.

The codebase is genuinely concurrent: ``repro.obs`` runs a threaded
``MetricsServer`` against a lock-guarded :class:`MetricsRegistry`,
``repro.stream`` mutates tracker/outbox/checkpoint state from a
long-lived loop while other threads snapshot it, and ``repro.parallel``
ships objects across ``ProcessPoolExecutor`` boundaries.  This module
applies the paper's own thesis — semantic models of execution catch
errors that surface inspection misses — to our runtime: it builds a
static model of locks, shared attributes and process-boundary captures
from the AST, then analyzes the model for contradictions.

The model (:class:`ProgramModel`, built by :func:`build_program`):

* a per-class attribute table — which ``self.*`` attributes each method
  mutates, and under which locks (``with self._lock:`` blocks and
  ``acquire()``/``release()`` pairs are tracked, including locks reached
  through private helper methods that are only ever called with the
  lock held);
* a lock inventory per class (``threading.Lock/RLock/Condition/...``
  created locally or received via an annotated constructor parameter),
  merged through base classes;
* thread-shared classification by **usage evidence**: the class defines
  a lock, instances or bound methods are passed to
  ``threading.Thread``, the class is exported from the concurrent
  subsystems (``repro.obs`` / ``repro.stream``), or an instance is
  stored in a module-level singleton;
* a fork-safety table: classes holding locks, open files, sockets or a
  metrics registry (directly, or through an attribute of such a class)
  must never cross a process boundary;
* per-function facts: executor ``submit``/``map`` calls with resolved
  argument classes, thread/queue handoffs, and calls made while holding
  locks.

Rules (codes registered in :mod:`repro.analysis.diagnostics`; each rule
is a :class:`ConcurrencyRule` object, mirroring the astlint
:class:`~repro.analysis.astlint.LintRule` shape):

* ``RACE001`` — an attribute written both under a lock and without it
  (outside ``__init__``) in the same class;
* ``RACE002`` — a cycle in the cross-class lock-acquisition graph, or a
  non-reentrant lock re-acquired while already held;
* ``RACE003`` — a fork-unsafe object passed to
  ``ProcessPoolExecutor.submit``/``map``;
* ``RACE004`` — an object mutated after being handed to another thread,
  queue or executor;
* ``RACE005`` — a blocking call (``time.sleep``, file/socket IO,
  ``subprocess``) made while holding a lock.

Findings are suppressed per line and per code with the shared
``# repro: allow=CODE -- reason`` pragma (:mod:`repro.analysis.suppress`);
the justification is mandatory.  Like every analysis here this is a
*heuristic* model — single-level type inference from constructor calls
and annotations, lexical ordering for handoff checks — tuned so the
repo's own tree analyzes cleanly with zero unjustified suppressions
(the pytest gate and the ``lint-concurrency`` CI job keep it that way).

CLI: ``repro lint-concurrency [paths...] [--json]`` or
``python tools/run_concurrency.py``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from .diagnostics import Diagnostic, DiagnosticReport
from .suppress import SuppressionIndex, scan_pragmas

__all__ = [
    "AttrWrite",
    "ClassModel",
    "ConcurrencyRule",
    "ConcurrencyAnalyzer",
    "DEFAULT_CONCURRENCY_RULES",
    "ProgramModel",
    "analyze_paths",
    "analyze_source",
    "build_program",
    "iter_python_files",
    "main",
]

# -- vocabulary -------------------------------------------------------------

#: threading factory -> lock kind; Condition/RLock are reentrant.
_LOCK_FACTORIES = {
    "Lock": "Lock",
    "RLock": "RLock",
    "Condition": "Condition",
    "Semaphore": "Semaphore",
    "BoundedSemaphore": "BoundedSemaphore",
}
_REENTRANT_KINDS = frozenset({"RLock", "Condition"})

#: Constructors whose result must never cross a fork/pickle boundary.
_RESOURCE_FACTORIES = {
    "open": "open file",
    "socket": "socket",
    "create_connection": "socket",
    "MetricsRegistry": "metrics registry",
    "ThreadingHTTPServer": "socket server",
    "HTTPServer": "socket server",
}

#: Queue-like constructors whose ``.put(x)`` is a cross-thread handoff.
_QUEUE_FACTORIES = frozenset(
    {"Queue", "SimpleQueue", "LifoQueue", "JoinableQueue"}
)

_EXECUTOR_NAMES = frozenset({"ProcessPoolExecutor"})

#: Mutating method names: calling one of these on an object counts as a
#: write to it (list/dict/set/deque mutators).
_MUTATORS = frozenset({
    "append", "extend", "insert", "remove", "pop", "popleft", "popitem",
    "clear", "add", "discard", "update", "setdefault", "appendleft",
    "extendleft", "sort", "reverse",
})

#: Dotted-name suffixes of calls that block: sleeping, subprocesses,
#: direct socket/url IO.
_BLOCKING_SUFFIXES: tuple[tuple[str, ...], ...] = (
    ("time", "sleep"),
    ("subprocess", "run"),
    ("subprocess", "call"),
    ("subprocess", "check_call"),
    ("subprocess", "check_output"),
    ("subprocess", "Popen"),
    ("socket", "create_connection"),
    ("request", "urlopen"),
)

#: IO methods that block when invoked on a file/socket-typed receiver.
_BLOCKING_IO_METHODS = frozenset({
    "read", "readline", "readlines", "write", "writelines", "flush",
    "recv", "send", "sendall", "connect", "accept",
})


def _dotted(node: ast.AST) -> tuple[str, ...]:
    """Trailing dotted names of an expression (``a.b.c`` -> (a, b, c))."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif isinstance(node, ast.Call):
        parts.extend(reversed(_dotted(node.func)))
    return tuple(reversed(parts))


def _expr_key(node: ast.AST) -> str | None:
    """Stable key for a handoff-trackable expression: a bare name or a
    ``obj.attr`` path; None for anything more complex."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _expr_key(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def _annotation_names(node: ast.AST | None) -> set[str]:
    """Every dotted-name component mentioned in an annotation."""
    names: set[str] = set()
    if node is None:
        return names
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            names.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.add(sub.attr)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            # String annotation: "IntelLog | None" and friends.
            for raw in sub.value.replace("|", " ").replace("[", " ") \
                    .replace("]", " ").replace(",", " ").split():
                names.add(raw.split(".")[-1].strip("'\""))
    return names


# -- model dataclasses ------------------------------------------------------


@dataclass(slots=True)
class AttrWrite:
    """One mutation of ``self.<attr>`` inside a method."""

    attr: str
    method: str
    lineno: int
    #: Lock attribute names held at the write site (raw ``with self.X``
    #: names; rules intersect this with the class lock table).
    held: frozenset[str]
    is_init: bool
    how: str  # "assign" | "augassign" | "item" | "call:<mutator>" | "del"


@dataclass(slots=True)
class MethodCall:
    """A method call observed inside a class body (held or not)."""

    method: str
    lineno: int
    held: frozenset[str]
    dotted: tuple[str, ...]
    #: "self" | "self.<attr>" | "<name>" | "<name>.<attr>" | None.
    receiver: str | None


@dataclass(slots=True)
class ExecutorCall:
    """One ``submit``/``map`` on a ProcessPoolExecutor."""

    function: str
    lineno: int
    op: str  # "submit" | "map"
    #: Payload expressions with their statically resolved class names
    #: (None when unresolvable): [(expr, class_name)].
    payload: list[tuple[str, str | None]]


@dataclass(slots=True)
class Handoff:
    """An object handed to another thread/queue/executor."""

    function: str
    lineno: int
    expr: str
    via: str  # "thread" | "queue" | "executor"


@dataclass(slots=True)
class ObjMutation:
    """A mutation of a non-``self`` object (for RACE004 ordering)."""

    function: str
    lineno: int
    expr: str
    how: str


@dataclass(slots=True)
class ClassModel:
    """Static facts about one class."""

    name: str
    module: str
    path: str
    lineno: int
    bases: tuple[str, ...] = ()
    #: lock attr -> kind ("Lock", "RLock", ...), own (pre-inheritance).
    lock_attrs: dict[str, str] = field(default_factory=dict)
    #: resource attr -> kind ("open file", "socket", ...).
    resource_attrs: dict[str, str] = field(default_factory=dict)
    #: attr -> class name it was constructed from (single-level).
    attr_types: dict[str, str] = field(default_factory=dict)
    writes: list[AttrWrite] = field(default_factory=list)
    #: method -> lock attrs it acquires anywhere in its body.
    acquires: dict[str, set[str]] = field(default_factory=dict)
    calls: list[MethodCall] = field(default_factory=list)
    #: Direct lock nesting observed: (outer attr, inner attr, lineno).
    nestings: list[tuple[str, str, int]] = field(default_factory=list)
    methods: set[str] = field(default_factory=set)
    #: Why the class is considered thread-shared (empty = private).
    shared_evidence: list[str] = field(default_factory=list)


@dataclass(slots=True)
class ProgramModel:
    """The whole-program model the rules run against."""

    classes: dict[str, ClassModel] = field(default_factory=dict)
    #: Simple-name index (first definition wins on collisions).
    by_name: dict[str, ClassModel] = field(default_factory=dict)
    #: (path, call) pairs, in scan order.
    executor_calls: list[tuple[str, ExecutorCall]] = field(
        default_factory=list
    )
    handoffs: list[tuple[str, Handoff]] = field(default_factory=list)
    mutations: list[tuple[str, ObjMutation]] = field(default_factory=list)
    #: Lock-held calls from module-level (class-less) functions.
    free_held_calls: list[tuple[str, MethodCall]] = field(
        default_factory=list
    )
    suppressions: dict[str, SuppressionIndex] = field(default_factory=dict)
    parse_errors: list[Diagnostic] = field(default_factory=list)

    # -- derived facts ----------------------------------------------------

    def merged_locks(self, cls: ClassModel) -> dict[str, str]:
        """Lock table of ``cls`` including inherited lock attributes."""
        merged: dict[str, str] = {}
        seen: set[str] = set()
        stack = [cls.name]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            model = self.by_name.get(name)
            if model is None:
                continue
            for attr in sorted(model.lock_attrs):
                merged.setdefault(attr, model.lock_attrs[attr])
            stack.extend(model.bases)
        return merged

    def fork_unsafe(self, class_name: str) -> str | None:
        """Why instances of ``class_name`` must not cross a fork
        boundary, or None when they may."""
        return self._fork_unsafe(class_name, frozenset())

    def _fork_unsafe(
        self, class_name: str, visiting: frozenset[str]
    ) -> str | None:
        if class_name in visiting:
            return None
        cls = self.by_name.get(class_name)
        if cls is None:
            return None
        locks = self.merged_locks(cls)
        if locks:
            attr = sorted(locks)[0]
            return f"holds a threading.{locks[attr]} ({attr!r})"
        if cls.resource_attrs:
            attr = sorted(cls.resource_attrs)[0]
            return f"holds an {cls.resource_attrs[attr]} ({attr!r})"
        visiting = visiting | {class_name}
        for attr in sorted(cls.attr_types):
            inner = self._fork_unsafe(cls.attr_types[attr], visiting)
            if inner:
                return (
                    f"attribute {attr!r} is a {cls.attr_types[attr]} "
                    f"which {inner}"
                )
        for base in cls.bases:
            inner = self._fork_unsafe(base, visiting)
            if inner:
                return inner
        return None

    def caller_guarded(self, cls: ClassModel, method: str) -> bool:
        """True when ``method`` is a private helper that every
        intra-class call site invokes with a lock held (so its writes
        inherit the callers' guard)."""
        if not method.startswith("_") or method.startswith("__"):
            return False
        sites = [
            call for call in cls.calls
            if call.receiver == "self" and call.dotted[-1:] == (method,)
        ]
        if not sites:
            return False
        locks = self.merged_locks(cls)
        return all(
            any(h in locks for h in sorted(call.held)) for call in sites
        )


# -- per-module scanning ----------------------------------------------------


class _ModuleScanner:
    """Extracts model facts from one module's AST.

    Driven by :func:`build_program` in two passes: class *registration*
    first (so program-wide usage evidence can attach to any class
    regardless of module order), then body scanning.
    """

    def __init__(self, program: ProgramModel, path: str) -> None:
        self.program = program
        self.path = path
        self.module = Path(path).stem
        #: local import tables: name -> module / (module, attr).
        self.import_mod: dict[str, str] = {}
        self.import_from: dict[str, tuple[str, str]] = {}
        self.exports: set[str] = set()
        #: classes registered from this module, by simple name.
        self.own_classes: dict[str, ClassModel] = {}

    # -- pass 1: imports + class registration ------------------------------

    def register(self, tree: ast.Module) -> None:
        for node in tree.body:
            self._scan_import(node)
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                self._register_class(node)

    def _scan_import(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                self.import_mod[alias.asname or alias.name.split(".")[0]] \
                    = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                self.import_from[alias.asname or alias.name] = (
                    node.module, alias.name
                )
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    if isinstance(node.value, (ast.List, ast.Tuple)):
                        for elt in node.value.elts:
                            if isinstance(elt, ast.Constant) and \
                                    isinstance(elt.value, str):
                                self.exports.add(elt.value)

    def _register_class(self, node: ast.ClassDef) -> None:
        cls = ClassModel(
            name=node.name,
            module=self.module,
            path=self.path,
            lineno=node.lineno,
            bases=tuple(
                self._resolve(_dotted(b))[-1]
                for b in node.bases
                if _dotted(b)
            ),
        )
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                cls.methods.add(item.name)
        self.program.classes[f"{self.path}::{node.name}"] = cls
        self.program.by_name.setdefault(node.name, cls)
        self.own_classes[node.name] = cls

    # -- pass 2: bodies, singletons, export evidence -----------------------

    def scan_bodies(self, tree: ast.Module) -> None:
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                cls = self.own_classes.get(node.name)
                for item in node.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        _FunctionScanner(self, cls, item).run()
                if cls is not None and cls.lock_attrs:
                    cls.shared_evidence.append("defines a lock attribute")
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                _FunctionScanner(self, None, node).run()
            elif isinstance(node, ast.Assign):
                self._scan_module_assign(node)
        self._apply_export_evidence()

    def _scan_module_assign(self, node: ast.Assign) -> None:
        """Module-level singleton: ``X = ClassName(...)`` marks the
        class thread-shared (the instance outlives any one caller)."""
        cls_name = self._constructed_class(node.value)
        if cls_name is None:
            return
        model = self.program.by_name.get(cls_name)
        if model is not None:
            model.shared_evidence.append(
                f"stored in a module-level singleton ({self.module})"
            )

    def _apply_export_evidence(self) -> None:
        normalised = self.path.replace("\\", "/")
        if not any(
            frag in normalised for frag in ("repro/obs", "repro/stream")
        ):
            return
        for name in sorted(self.own_classes):
            if name in self.exports:
                self.own_classes[name].shared_evidence.append(
                    "exported from a concurrent subsystem "
                    f"({self.module})"
                )

    # -- name resolution --------------------------------------------------

    def _resolve(self, dotted: tuple[str, ...]) -> tuple[str, ...]:
        """Resolve the head of a dotted path through the import tables:
        ``sp.run`` with ``import subprocess as sp`` -> (subprocess, run);
        ``Thread`` with ``from threading import Thread`` ->
        (threading, Thread)."""
        if not dotted:
            return dotted
        head = dotted[0]
        if head in self.import_from:
            module, attr = self.import_from[head]
            return (module.split(".")[-1], attr) + dotted[1:]
        if head in self.import_mod:
            return (self.import_mod[head].split(".")[-1],) + dotted[1:]
        return dotted

    def _constructed_class(self, value: ast.AST) -> str | None:
        """Class name a value is constructed from, if syntactically a
        constructor call of a simple name (``Foo(...)``, ``m.Foo(...)``)."""
        if not isinstance(value, ast.Call):
            return None
        dotted = self._resolve(_dotted(value.func))
        if not dotted:
            return None
        name = dotted[-1]
        # Heuristic: constructors are CapWords names.
        if name[:1].isupper():
            return name
        return None

    def _lock_kind(self, value: ast.AST) -> str | None:
        if not isinstance(value, ast.Call):
            return None
        dotted = self._resolve(_dotted(value.func))
        if dotted and dotted[-1] in _LOCK_FACTORIES:
            if len(dotted) == 1 or dotted[-2] in (
                "threading", "multiprocessing"
            ):
                return _LOCK_FACTORIES[dotted[-1]]
        return None

    def _resource_kind(self, value: ast.AST) -> str | None:
        if not isinstance(value, ast.Call):
            return None
        dotted = self._resolve(_dotted(value.func))
        if dotted and dotted[-1] in _RESOURCE_FACTORIES:
            return _RESOURCE_FACTORIES[dotted[-1]]
        return None


class _FunctionScanner:
    """Walks one function body tracking the set of held locks."""

    def __init__(
        self,
        module: _ModuleScanner,
        cls: ClassModel | None,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> None:
        self.module = module
        self.program = module.program
        self.cls = cls
        self.node = node
        self.name = node.name
        self.qualname = (
            f"{cls.name}.{node.name}" if cls is not None else node.name
        )
        self.is_init = node.name in ("__init__", "__new__", "__post_init__")
        #: local name -> constructed class name.
        self.local_types: dict[str, str] = {}
        #: local name / "self.attr" -> special kind ("executor" | "queue"
        #: | "resource").
        self.local_kinds: dict[str, str] = {}
        #: lock-annotated parameters (for ``self._lock = lock``).
        self.lock_params: dict[str, str] = {}
        self._seed_param_types()

    def _seed_param_types(self) -> None:
        args = self.node.args
        for arg in (
            args.posonlyargs + args.args + args.kwonlyargs
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            names = _annotation_names(arg.annotation)
            lock_kinds = sorted(names & set(_LOCK_FACTORIES))
            if lock_kinds:
                self.lock_params[arg.arg] = lock_kinds[0]
                continue
            if names & _EXECUTOR_NAMES:
                self.local_kinds[arg.arg] = "executor"
                continue
            known = sorted(
                n for n in names
                if n[:1].isupper() and n not in _EXECUTOR_NAMES
            )
            if known and arg.arg != "self":
                self.local_types.setdefault(arg.arg, known[0])

    # -- driving ----------------------------------------------------------

    def run(self) -> None:
        self._scan_block(self.node.body, held=())

    def _scan_block(
        self, stmts: Sequence[ast.stmt], held: tuple[str, ...]
    ) -> None:
        current = held
        for stmt in stmts:
            current = self._scan_stmt(stmt, current)

    def _scan_stmt(
        self, stmt: ast.stmt, held: tuple[str, ...]
    ) -> tuple[str, ...]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return held  # deferred execution: not this lock context
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner_held = held
            for item in stmt.items:
                self._scan_expr(item.context_expr, inner_held)
                if item.optional_vars is not None:
                    # ``with ProcessPoolExecutor() as ex:`` /
                    # ``with open(p) as fp:`` bind types like assignments.
                    self._infer_assignment(
                        [item.optional_vars], item.context_expr
                    )
                lock = self._with_lock_attr(item.context_expr)
                if lock is not None:
                    for outer in inner_held:
                        if self.cls is not None:
                            self.cls.nestings.append(
                                (outer, lock, stmt.lineno)
                            )
                    inner_held = inner_held + (lock,)
            self._scan_block(stmt.body, inner_held)
            return held
        if isinstance(stmt, ast.If):
            self._scan_expr(stmt.test, held)
            self._scan_block(stmt.body, held)
            self._scan_block(stmt.orelse, held)
            return held
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan_expr(stmt.iter, held)
            self._record_writes(stmt.target, held, how="assign")
            self._scan_block(stmt.body, held)
            self._scan_block(stmt.orelse, held)
            return held
        if isinstance(stmt, ast.While):
            self._scan_expr(stmt.test, held)
            self._scan_block(stmt.body, held)
            self._scan_block(stmt.orelse, held)
            return held
        if isinstance(stmt, ast.Try):
            self._scan_block(stmt.body, held)
            for handler in stmt.handlers:
                self._scan_block(handler.body, held)
            self._scan_block(stmt.orelse, held)
            self._scan_block(stmt.finalbody, held)
            return held
        match_type = getattr(ast, "Match", None)
        if match_type is not None and isinstance(stmt, match_type):
            self._scan_expr(stmt.subject, held)
            for case in stmt.cases:
                self._scan_block(case.body, held)
            return held

        # -- simple statements -------------------------------------------
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                self._record_writes(target, held, how="assign")
            self._infer_assignment(stmt.targets, stmt.value)
            self._scan_expr(stmt.value, held)
            return held
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._record_writes(stmt.target, held, how="assign")
                self._infer_assignment([stmt.target], stmt.value)
                self._scan_expr(stmt.value, held)
            return held
        if isinstance(stmt, ast.AugAssign):
            self._record_writes(stmt.target, held, how="augassign")
            self._scan_expr(stmt.value, held)
            return held
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._record_writes(target, held, how="del")
            return held
        if isinstance(stmt, ast.Expr):
            new_held = self._acquire_release(stmt.value, held)
            self._scan_expr(stmt.value, held)
            return new_held
        if isinstance(stmt, (ast.Return, ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                self._scan_expr(child, held)
            return held
        return held

    # -- lock tracking ----------------------------------------------------

    def _with_lock_attr(self, expr: ast.AST) -> str | None:
        """``with self.X:`` -> ``X`` (candidate lock attribute)."""
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            self._note_acquire(expr.attr)
            return expr.attr
        return None

    def _acquire_release(
        self, expr: ast.AST, held: tuple[str, ...]
    ) -> tuple[str, ...]:
        """Track ``self.X.acquire()`` / ``self.X.release()`` statements."""
        if not isinstance(expr, ast.Call):
            return held
        func = expr.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in ("acquire", "release")
            and isinstance(func.value, ast.Attribute)
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id == "self"
        ):
            attr = func.value.attr
            if func.attr == "acquire":
                self._note_acquire(attr)
                for outer in held:
                    if self.cls is not None:
                        self.cls.nestings.append(
                            (outer, attr, expr.lineno)
                        )
                return held + (attr,)
            return tuple(h for h in held if h != attr)
        return held

    def _note_acquire(self, attr: str) -> None:
        if self.cls is not None:
            self.cls.acquires.setdefault(self.name, set()).add(attr)

    # -- writes -----------------------------------------------------------

    def _record_writes(
        self, target: ast.AST, held: tuple[str, ...], how: str
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_writes(elt, held, how)
            return
        if isinstance(target, ast.Starred):
            self._record_writes(target.value, held, how)
            return
        if isinstance(target, ast.Attribute):
            base = target.value
            if isinstance(base, ast.Name) and base.id == "self":
                self._add_self_write(target.attr, target.lineno, held, how)
            else:
                key = _expr_key(base)
                if key is not None and not key.startswith("self"):
                    self._add_obj_mutation(key, target.lineno, how)
            return
        if isinstance(target, ast.Subscript):
            base = target.value
            if (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
            ):
                self._add_self_write(base.attr, target.lineno, held, "item")
            else:
                key = _expr_key(base)
                if key is not None and not key.startswith("self"):
                    self._add_obj_mutation(key, target.lineno, "item")

    def _add_self_write(
        self, attr: str, lineno: int, held: tuple[str, ...], how: str
    ) -> None:
        if self.cls is None:
            return
        self.cls.writes.append(AttrWrite(
            attr=attr,
            method=self.name,
            lineno=lineno,
            held=frozenset(held),
            is_init=self.is_init,
            how=how,
        ))

    def _add_obj_mutation(self, expr: str, lineno: int, how: str) -> None:
        self.program.mutations.append((
            self.module.path,
            ObjMutation(
                function=self.qualname, lineno=lineno, expr=expr, how=how
            ),
        ))

    # -- type inference ---------------------------------------------------

    def _infer_assignment(
        self, targets: Sequence[ast.AST], value: ast.AST
    ) -> None:
        lock_kind = self.module._lock_kind(value)
        resource = self.module._resource_kind(value)
        cls_name = self.module._constructed_class(value)
        queue_like = cls_name in _QUEUE_FACTORIES
        executor = cls_name in _EXECUTOR_NAMES
        param_lock = (
            self.lock_params.get(value.id)
            if isinstance(value, ast.Name) else None
        )
        if cls_name is None and isinstance(value, ast.Name):
            # ``self.origin = origin`` where the parameter (or an
            # earlier local) carries a known class type.
            cls_name = self.local_types.get(value.id)
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and self.cls is not None
            ):
                if lock_kind is not None:
                    self.cls.lock_attrs.setdefault(target.attr, lock_kind)
                elif param_lock is not None:
                    self.cls.lock_attrs.setdefault(target.attr, param_lock)
                elif resource is not None:
                    self.cls.resource_attrs.setdefault(
                        target.attr, resource
                    )
                elif executor:
                    self.local_kinds[f"self.{target.attr}"] = "executor"
                elif cls_name is not None:
                    self.cls.attr_types.setdefault(target.attr, cls_name)
            elif isinstance(target, ast.Name):
                if executor:
                    self.local_kinds[target.id] = "executor"
                elif queue_like:
                    self.local_kinds[target.id] = "queue"
                elif resource is not None:
                    self.local_kinds[target.id] = "resource"
                elif cls_name is not None:
                    self.local_types[target.id] = cls_name

    def _payload_class(self, node: ast.AST) -> tuple[str, str | None]:
        """(display expr, resolved class name) for an executor payload."""
        if isinstance(node, ast.Name):
            if node.id == "self" and self.cls is not None:
                return "self", self.cls.name
            return node.id, self.local_types.get(node.id)
        if isinstance(node, ast.Attribute):
            key = _expr_key(node) or "<expr>"
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and self.cls is not None
            ):
                # self.attr payload, or a bound method self.meth.
                if node.attr in self.cls.methods:
                    return key, self.cls.name
                return key, self.cls.attr_types.get(node.attr)
            base = key.split(".", 1)[0]
            base_cls = self.local_types.get(base)
            if base_cls is not None and "." in key:
                # Bound method of a typed local: obj.method.
                model = self.program.by_name.get(base_cls)
                if model is not None and node.attr in model.methods:
                    return key, base_cls
            return key, None
        return "<expr>", None

    # -- expression scan --------------------------------------------------

    def _scan_expr(self, node: ast.AST, held: tuple[str, ...]) -> None:
        for sub in self._walk(node):
            if isinstance(sub, ast.Call):
                self._scan_call(sub, held)

    def _walk(self, node: ast.AST) -> Iterator[ast.AST]:
        """ast.walk without descending into deferred-execution bodies."""
        stack: list[ast.AST] = [node]
        while stack:
            current = stack.pop()
            if isinstance(current, (ast.Lambda, ast.FunctionDef,
                                    ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            yield current
            stack.extend(ast.iter_child_nodes(current))

    def _scan_call(self, call: ast.Call, held: tuple[str, ...]) -> None:
        dotted = self.module._resolve(_dotted(call.func))
        receiver = self._receiver_of(call.func)
        if self.cls is not None and (receiver is not None or held):
            # Record every resolvable call, held or not: lock-free call
            # sites feed the helper-propagation check, lock-holding
            # ones feed RACE002/RACE005.
            self.cls.calls.append(MethodCall(
                method=self.name,
                lineno=call.lineno,
                held=frozenset(held),
                dotted=dotted,
                receiver=receiver,
            ))
        elif self.cls is None and held:
            self.program.free_held_calls.append((
                self.module.path,
                MethodCall(
                    method=self.qualname,
                    lineno=call.lineno,
                    held=frozenset(held),
                    dotted=dotted,
                    receiver=receiver,
                ),
            ))
        self._scan_mutator_call(call, held)
        self._scan_thread_call(call, dotted)
        self._scan_queue_put(call)
        self._scan_executor_call(call)

    @staticmethod
    def _receiver_of(func: ast.AST) -> str | None:
        if isinstance(func, ast.Attribute):
            return _expr_key(func.value)
        return None

    def _scan_mutator_call(
        self, call: ast.Call, held: tuple[str, ...]
    ) -> None:
        """``self.x.append(...)`` / ``obj.items.append(...)`` are writes."""
        func = call.func
        if not isinstance(func, ast.Attribute) or func.attr not in _MUTATORS:
            return
        base = func.value
        if (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "self"
        ):
            self._add_self_write(
                base.attr, call.lineno, held, f"call:{func.attr}"
            )
        else:
            key = _expr_key(base)
            if key is not None and not key.startswith("self"):
                self._add_obj_mutation(
                    key, call.lineno, f"call:{func.attr}"
                )

    def _scan_thread_call(
        self, call: ast.Call, dotted: tuple[str, ...]
    ) -> None:
        if not (dotted and dotted[-1] == "Thread"):
            return
        payload_exprs: list[ast.AST] = []
        for kw in call.keywords:
            if kw.arg == "target":
                payload_exprs.append(kw.value)
            elif kw.arg == "args" and isinstance(
                kw.value, (ast.Tuple, ast.List)
            ):
                payload_exprs.extend(kw.value.elts)
        if len(call.args) >= 2:  # Thread(group, target, ...)
            payload_exprs.append(call.args[1])
        for expr in payload_exprs:
            self._mark_thread_shared(expr, call.lineno)

    def _mark_thread_shared(self, expr: ast.AST, lineno: int) -> None:
        cls_name: str | None = None
        key: str | None = None
        if isinstance(expr, ast.Attribute):
            # obj.method / self.attr: the receiver escapes to the thread.
            key = _expr_key(expr.value)
            base = expr.value
            if isinstance(base, ast.Name):
                if base.id == "self" and self.cls is not None:
                    cls_name = self.cls.name
                else:
                    cls_name = self.local_types.get(base.id)
            elif (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
                and self.cls is not None
            ):
                cls_name = self.cls.attr_types.get(base.attr)
        elif isinstance(expr, ast.Name):
            key = expr.id
            cls_name = self.local_types.get(expr.id)
        if cls_name is not None:
            model = self.program.by_name.get(cls_name)
            if model is not None:
                evidence = (
                    f"passed to threading.Thread "
                    f"({self.qualname}:{lineno})"
                )
                if evidence not in model.shared_evidence:
                    model.shared_evidence.append(evidence)
        if key is not None and not key.startswith("self"):
            self.program.handoffs.append((
                self.module.path,
                Handoff(
                    function=self.qualname,
                    lineno=lineno,
                    expr=key,
                    via="thread",
                ),
            ))

    def _scan_queue_put(self, call: ast.Call) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute) or func.attr != "put":
            return
        base_key = _expr_key(func.value)
        if base_key is None or self.local_kinds.get(base_key) != "queue":
            return
        for arg in call.args[:1]:
            key = _expr_key(arg)
            if key is not None and not key.startswith("self"):
                self.program.handoffs.append((
                    self.module.path,
                    Handoff(
                        function=self.qualname,
                        lineno=call.lineno,
                        expr=key,
                        via="queue",
                    ),
                ))

    def _scan_executor_call(self, call: ast.Call) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in ("submit", "map"):
            return
        base_key = _expr_key(func.value)
        is_executor = (
            base_key is not None
            and self.local_kinds.get(base_key) == "executor"
        )
        if not is_executor and isinstance(func.value, ast.Call):
            is_executor = (
                self.module._constructed_class(func.value)
                in _EXECUTOR_NAMES
            )
        if not is_executor:
            return
        payload = [self._payload_class(arg) for arg in call.args]
        for kw in call.keywords:
            payload.append(self._payload_class(kw.value))
        self.program.executor_calls.append((
            self.module.path,
            ExecutorCall(
                function=self.qualname,
                lineno=call.lineno,
                op=func.attr,
                payload=payload,
            ),
        ))
        for expr, _cls in payload:
            if expr != "<expr>" and not expr.startswith("self"):
                self.program.handoffs.append((
                    self.module.path,
                    Handoff(
                        function=self.qualname,
                        lineno=call.lineno,
                        expr=expr,
                        via="executor",
                    ),
                ))


# -- rules ------------------------------------------------------------------


class ConcurrencyRule:
    """One whole-program concurrency rule (astlint-style shape)."""

    code: str = ""

    def check(self, program: ProgramModel) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diagnostic(
        self, message: str, *, subject: str, path: str, lineno: int
    ) -> Diagnostic:
        return Diagnostic.make(
            self.code, message, subject=subject,
            location=f"{path}:{lineno}",
        )


class UnguardedWriteRule(ConcurrencyRule):
    """RACE001: mixed guarded/unguarded writes to one attribute."""

    code = "RACE001"

    def check(self, program: ProgramModel) -> Iterator[Diagnostic]:
        for cls in _sorted_classes(program):
            locks = program.merged_locks(cls)
            if not locks:
                continue
            lock_names = frozenset(locks)
            by_attr: dict[str, list[AttrWrite]] = {}
            for write in cls.writes:
                if write.attr in lock_names:
                    continue  # rebinding the lock itself is not a race
                by_attr.setdefault(write.attr, []).append(write)
            for attr in sorted(by_attr):
                writes = by_attr[attr]
                guarded = [
                    w for w in writes
                    if not w.is_init and (w.held & lock_names)
                ]
                if not guarded:
                    continue
                guards = sorted(
                    {h for w in guarded for h in w.held if h in lock_names}
                )
                for write in writes:
                    if write.is_init or (write.held & lock_names):
                        continue
                    if program.caller_guarded(cls, write.method):
                        continue
                    yield self.diagnostic(
                        f"attribute '{attr}' of {cls.name} is written "
                        f"under {'/'.join(guards)} in "
                        f"{_guard_sites(guarded)} but without the lock "
                        f"in {write.method}() ({write.how})",
                        subject=f"{cls.name}.{attr}",
                        path=cls.path,
                        lineno=write.lineno,
                    )


def _guard_sites(writes: list[AttrWrite]) -> str:
    methods = sorted({w.method for w in writes})
    shown = ", ".join(f"{m}()" for m in methods[:3])
    if len(methods) > 3:
        shown += ", ..."
    return shown


class LockOrderRule(ConcurrencyRule):
    """RACE002: cycles in the lock-acquisition graph, and non-reentrant
    re-acquisition of a held lock."""

    code = "RACE002"

    def check(self, program: ProgramModel) -> Iterator[Diagnostic]:
        graph: dict[tuple[str, str], set[tuple[str, str]]] = {}
        edge_sites: dict[
            tuple[tuple[str, str], tuple[str, str]],
            list[tuple[str, str, int]],
        ] = {}
        self_deadlocks: list[Diagnostic] = []

        def note_pair(
            outer_cls: ClassModel, outer_attr: str,
            inner_cls: ClassModel, inner_attr: str,
            where: str, lineno: int,
        ) -> None:
            outer = (outer_cls.name, outer_attr)
            inner = (inner_cls.name, inner_attr)
            if outer == inner:
                kind = program.merged_locks(outer_cls).get(
                    outer_attr, "Lock"
                )
                if kind not in _REENTRANT_KINDS:
                    self_deadlocks.append(Diagnostic.make(
                        self.code,
                        f"non-reentrant threading.{kind} "
                        f"'{outer_cls.name}.{outer_attr}' re-acquired "
                        f"while already held ({where}) — self-deadlock",
                        subject=f"{outer_cls.name}.{outer_attr}",
                        location=f"{outer_cls.path}:{lineno}",
                    ))
                return
            graph.setdefault(outer, set()).add(inner)
            edge_sites.setdefault((outer, inner), []).append(
                (outer_cls.path, where, lineno)
            )

        for cls in _sorted_classes(program):
            locks = program.merged_locks(cls)
            if not locks:
                continue
            lock_names = frozenset(locks)
            for outer, inner, lineno in cls.nestings:
                if outer in lock_names and inner in lock_names:
                    note_pair(
                        cls, outer, cls, inner,
                        f"nested in {cls.name}", lineno,
                    )
            for call in cls.calls:
                held_locks = sorted(call.held & lock_names)
                if not held_locks:
                    continue
                target_cls, method = self._resolve_callee(
                    program, cls, call
                )
                if target_cls is None or method is None:
                    continue
                acquired = sorted(target_cls.acquires.get(method, ()))
                target_locks = program.merged_locks(target_cls)
                for held in held_locks:
                    for inner in acquired:
                        if inner not in target_locks:
                            continue
                        note_pair(
                            cls, held, target_cls, inner,
                            f"{cls.name}.{call.method} calls "
                            f"{target_cls.name}.{method}",
                            call.lineno,
                        )

        yield from self_deadlocks

        for cycle in _find_cycles(graph):
            names = [f"{c}.{a}" for c, a in cycle]
            sites: list[tuple[str, str, int]] = []
            for i in range(len(cycle)):
                nxt = cycle[(i + 1) % len(cycle)]
                sites.extend(edge_sites.get((cycle[i], nxt), ()))
            if not sites:
                continue
            path, where, lineno = min(sites)
            yield self.diagnostic(
                "lock-order cycle: "
                + " -> ".join(names + [names[0]])
                + f" (e.g. {where}); threads acquiring in different "
                "orders can deadlock",
                subject=" -> ".join(names),
                path=path,
                lineno=lineno,
            )

    @staticmethod
    def _resolve_callee(
        program: ProgramModel, cls: ClassModel, call: MethodCall
    ) -> tuple[ClassModel | None, str | None]:
        if not call.dotted:
            return None, None
        method = call.dotted[-1]
        if call.receiver == "self":
            return (cls if method in cls.methods else None), method
        if call.receiver is not None and call.receiver.startswith("self."):
            attr = call.receiver.split(".", 1)[1]
            target_name = cls.attr_types.get(attr)
            if target_name is not None:
                target = program.by_name.get(target_name)
                if target is not None and method in target.methods:
                    return target, method
        return None, None


def _find_cycles(
    graph: dict[tuple[str, str], set[tuple[str, str]]]
) -> list[list[tuple[str, str]]]:
    """Simple cycles of the lock graph, each found once, rooted at its
    smallest node (only nodes > start may extend a path)."""
    cycles: list[list[tuple[str, str]]] = []

    def dfs(
        start: tuple[str, str],
        node: tuple[str, str],
        path: list[tuple[str, str]],
        visited: set[tuple[str, str]],
    ) -> None:
        for nxt in sorted(graph.get(node, ())):
            if nxt == start and len(path) > 1:
                cycles.append(list(path))
            elif nxt > start and nxt not in visited:
                visited.add(nxt)
                dfs(start, nxt, path + [nxt], visited)
                visited.discard(nxt)

    for start in sorted(graph):
        dfs(start, start, [start], {start})
    return cycles


class ForkCaptureRule(ConcurrencyRule):
    """RACE003: fork-unsafe objects shipped to process-pool workers."""

    code = "RACE003"

    def check(self, program: ProgramModel) -> Iterator[Diagnostic]:
        for path, call in program.executor_calls:
            for expr, cls_name in call.payload:
                if cls_name is None:
                    continue
                why = program.fork_unsafe(cls_name)
                if why is None:
                    continue
                yield self.diagnostic(
                    f"{expr!r} ({cls_name}) is passed to "
                    f"ProcessPoolExecutor.{call.op}() but {why}; locks "
                    f"and live OS handles do not survive "
                    f"pickling/forking — ship plain data instead",
                    subject=f"{call.function}:{expr}",
                    path=path,
                    lineno=call.lineno,
                )


class HandoffMutationRule(ConcurrencyRule):
    """RACE004: mutation after handing an object to another thread."""

    code = "RACE004"

    def check(self, program: ProgramModel) -> Iterator[Diagnostic]:
        earliest: dict[tuple[str, str, str], Handoff] = {}
        for path, handoff in program.handoffs:
            key = (path, handoff.function, handoff.expr)
            existing = earliest.get(key)
            if existing is None or handoff.lineno < existing.lineno:
                earliest[key] = handoff
        for path, mutation in program.mutations:
            handoff = self._matching(earliest, path, mutation)
            if handoff is None or mutation.lineno <= handoff.lineno:
                continue
            yield self.diagnostic(
                f"{mutation.expr!r} is mutated ({mutation.how}, line "
                f"{mutation.lineno}) after being handed to another "
                f"{handoff.via} at line {handoff.lineno}; the consumer "
                f"may observe the object mid-update — hand off an "
                f"immutable snapshot instead",
                subject=f"{mutation.function}:{mutation.expr}",
                path=path,
                lineno=mutation.lineno,
            )

    @staticmethod
    def _matching(
        earliest: dict[tuple[str, str, str], Handoff],
        path: str,
        mutation: ObjMutation,
    ) -> Handoff | None:
        # A mutation of `box` or `box.items` both race a handoff of
        # `box`: match the expression or any dotted prefix of it.
        parts = mutation.expr.split(".")
        for end in range(len(parts), 0, -1):
            prefix = ".".join(parts[:end])
            handoff = earliest.get((path, mutation.function, prefix))
            if handoff is not None:
                return handoff
        return None


class BlockingUnderLockRule(ConcurrencyRule):
    """RACE005: blocking calls while holding a lock."""

    code = "RACE005"

    def check(self, program: ProgramModel) -> Iterator[Diagnostic]:
        for cls in _sorted_classes(program):
            locks = program.merged_locks(cls)
            if not locks:
                continue
            lock_names = frozenset(locks)
            for call in cls.calls:
                held = sorted(call.held & lock_names)
                if not held:
                    continue
                what = self._blocking(cls, call)
                if what is None:
                    continue
                yield self.diagnostic(
                    f"{what} while holding "
                    f"{cls.name}.{'/'.join(held)} in {call.method}() — "
                    f"every thread contending for the lock stalls "
                    f"behind the IO; move the blocking work outside "
                    f"the guarded region",
                    subject=f"{cls.name}.{call.method}",
                    path=cls.path,
                    lineno=call.lineno,
                )
        for path, call in program.free_held_calls:
            what = self._blocking(None, call)
            if what is not None:
                yield self.diagnostic(
                    f"{what} while holding {'/'.join(sorted(call.held))} "
                    f"in {call.method}()",
                    subject=call.method,
                    path=path,
                    lineno=call.lineno,
                )

    @staticmethod
    def _blocking(
        cls: ClassModel | None, call: MethodCall
    ) -> str | None:
        dotted = call.dotted
        for suffix in _BLOCKING_SUFFIXES:
            if dotted[-len(suffix):] == suffix:
                return f"blocking call {'.'.join(suffix)}()"
        if dotted == ("open",):
            return "file open()"
        if dotted and dotted[-1] in _BLOCKING_IO_METHODS:
            receiver = call.receiver
            if (
                receiver is not None
                and cls is not None
                and receiver.startswith("self.")
            ):
                attr = receiver.split(".", 1)[1]
                kind = cls.resource_attrs.get(attr)
                if kind is not None:
                    return f"{kind} IO ({receiver}.{dotted[-1]}())"
        return None


def _sorted_classes(program: ProgramModel) -> list[ClassModel]:
    return sorted(
        program.classes.values(), key=lambda c: (c.path, c.lineno)
    )


DEFAULT_CONCURRENCY_RULES: tuple[type[ConcurrencyRule], ...] = (
    UnguardedWriteRule,
    LockOrderRule,
    ForkCaptureRule,
    HandoffMutationRule,
    BlockingUnderLockRule,
)


# -- driver -----------------------------------------------------------------


def build_program(files: Iterable[tuple[str, str]]) -> ProgramModel:
    """Build the whole-program model from ``(path, source)`` pairs.

    Classes from *every* module are registered before any body is
    scanned, so cross-module usage evidence (thread targets, module
    singletons) resolves regardless of file order.
    """
    program = ProgramModel()
    scanners: list[tuple[_ModuleScanner, ast.Module]] = []
    for path, source in files:
        program.suppressions[path] = scan_pragmas(source, path)
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            program.parse_errors.append(Diagnostic.make(
                "PY002",
                f"file does not parse: {exc.msg}",
                subject=path,
                location=f"{path}:{exc.lineno or 0}",
            ))
            continue
        scanners.append((_ModuleScanner(program, path), tree))
    for scanner, tree in scanners:
        scanner.register(tree)
    for scanner, tree in scanners:
        scanner.scan_bodies(tree)
    return program


class ConcurrencyAnalyzer:
    """Runs the registered rules over a built program model."""

    def __init__(
        self,
        rules: Sequence[type[ConcurrencyRule]] = DEFAULT_CONCURRENCY_RULES,
    ) -> None:
        self.rules: list[ConcurrencyRule] = [rule() for rule in rules]

    def analyze(self, program: ProgramModel) -> DiagnosticReport:
        report = DiagnosticReport()
        report.extend(program.parse_errors)
        for path in sorted(program.suppressions):
            report.extend(program.suppressions[path].diagnostics)
        findings: list[Diagnostic] = []
        for rule in self.rules:
            for diag in rule.check(program):
                if not self._suppressed(program, diag):
                    findings.append(diag)
        findings.sort(key=lambda d: (d.location, d.code, d.message))
        report.extend(findings)
        return report

    @staticmethod
    def _suppressed(program: ProgramModel, diag: Diagnostic) -> bool:
        path, _, line_text = diag.location.rpartition(":")
        try:
            line = int(line_text)
        except ValueError:
            return False
        index = program.suppressions.get(path)
        return index is not None and index.allows(line, diag.code)


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into ``.py`` files, sorted, deduplicated."""
    seen: set[Path] = set()
    for entry in paths:
        root = Path(entry)
        if not root.exists():
            raise FileNotFoundError(f"no such file or directory: {entry!r}")
        candidates = (
            sorted(root.rglob("*.py")) if root.is_dir() else [root]
        )
        for candidate in candidates:
            if candidate.suffix == ".py" and candidate not in seen:
                seen.add(candidate)
                yield candidate


def analyze_paths(paths: Iterable[str | Path]) -> DiagnosticReport:
    """Analyze every ``.py`` file under ``paths`` as one program."""
    files = [
        (str(path), path.read_text(encoding="utf-8"))
        for path in iter_python_files(paths)
    ]
    return ConcurrencyAnalyzer().analyze(build_program(files))


def analyze_source(source: str, path: str = "<string>") -> DiagnosticReport:
    """Analyze a single module (fixtures, tests)."""
    return ConcurrencyAnalyzer().analyze(build_program([(path, source)]))


def describe_classes(program: ProgramModel) -> str:
    """Human-readable dump of the class model (``--dump-model``)."""
    lines: list[str] = []
    for cls in _sorted_classes(program):
        locks = ", ".join(
            f"{a}:{k}" for a, k in sorted(cls.lock_attrs.items())
        ) or "-"
        evidence = "; ".join(cls.shared_evidence) or "not thread-shared"
        unsafe = program.fork_unsafe(cls.name)
        lines.append(
            f"{cls.path}:{cls.lineno} class {cls.name} "
            f"[locks: {locks}] [{evidence}]"
            + (f" [fork-unsafe: {unsafe}]" if unsafe else "")
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point (``tools/run_concurrency.py``)."""
    import argparse
    import json

    parser = argparse.ArgumentParser(
        prog="lint-concurrency",
        description="Race / lock-order / fork-safety static analysis "
                    "for the repro runtime.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print machine-readable diagnostics to stdout",
    )
    parser.add_argument(
        "--json-out", default=None, metavar="PATH",
        help="additionally write the JSON report to PATH",
    )
    parser.add_argument(
        "--dump-model", action="store_true",
        help="print the per-class lock/sharing model before findings",
    )
    args = parser.parse_args(argv)
    try:
        files = [
            (str(path), path.read_text(encoding="utf-8"))
            for path in iter_python_files(args.paths)
        ]
    except FileNotFoundError as exc:
        print(f"error: {exc}")
        return 2
    program = build_program(files)
    report = ConcurrencyAnalyzer().analyze(program)
    if args.dump_model:
        print(describe_classes(program))
    payload = report.to_dict()
    if args.json_out:
        Path(args.json_out).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        if report:
            print(report.render())
        print(report.summary())
    return 1 if report else 0
