"""Static analysis: HW-graph artifact validation + codebase lint.

Two halves (both report :class:`Diagnostic` records with stable codes):

* :mod:`repro.analysis.validate` — structural checks over trained
  ``HWGraph`` / ``IntelKey`` / subroutine artifacts (``HW001``-``HW006``,
  ``IK001``, ``SR001``, ``RT001``), in memory and over the ``to_dict()``
  / :class:`~repro.query.store.ModelStore` serialization;
* :mod:`repro.analysis.astlint` — AST lint of the codebase itself for
  the determinism contract and Python hygiene (``DET001``, ``DET002``,
  ``PY001``, ``PY002``).

CLI: ``repro lint-model`` / ``repro lint-code``.
"""

from .astlint import Linter, lint_paths, lint_source
from .diagnostics import (
    DIAGNOSTIC_CODES,
    Diagnostic,
    DiagnosticReport,
    Severity,
)
from .validate import validate_graph, validate_model_dict, validate_round_trip

__all__ = [
    "DIAGNOSTIC_CODES",
    "Diagnostic",
    "DiagnosticReport",
    "Linter",
    "Severity",
    "lint_paths",
    "lint_source",
    "validate_graph",
    "validate_model_dict",
    "validate_round_trip",
]
