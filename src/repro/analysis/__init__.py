"""Static analysis: HW-graph artifact validation + codebase lint.

Three passes (all report :class:`Diagnostic` records with stable codes):

* :mod:`repro.analysis.validate` — structural checks over trained
  ``HWGraph`` / ``IntelKey`` / subroutine artifacts (``HW001``-``HW006``,
  ``IK001``, ``SR001``, ``RT001``), in memory and over the ``to_dict()``
  / :class:`~repro.query.store.ModelStore` serialization;
* :mod:`repro.analysis.astlint` — per-node AST lint of the codebase
  itself for the determinism contract and Python hygiene (``DET001``-
  ``DET003``, ``PY001``, ``PY002``);
* :mod:`repro.analysis.concurrency` — whole-program concurrency
  analysis: lock/attribute models per class, lock-order graphs, and
  fork-safety of process-pool payloads (``RACE001``-``RACE005``).

Suppressions for the code-facing passes share one inline pragma syntax
(:mod:`repro.analysis.suppress`, ``SUP001``/``SUP002``).

CLI: ``repro lint-model`` / ``repro lint-code`` /
``repro lint-concurrency``.
"""

from .astlint import Linter, lint_paths, lint_source
from .concurrency import (
    ConcurrencyAnalyzer,
    ProgramModel,
    analyze_paths,
    analyze_source,
    build_program,
)
from .diagnostics import (
    DIAGNOSTIC_CODES,
    Diagnostic,
    DiagnosticReport,
    Severity,
)
from .suppress import SuppressionIndex, scan_pragmas
from .validate import validate_graph, validate_model_dict, validate_round_trip

__all__ = [
    "DIAGNOSTIC_CODES",
    "ConcurrencyAnalyzer",
    "Diagnostic",
    "DiagnosticReport",
    "Linter",
    "ProgramModel",
    "Severity",
    "SuppressionIndex",
    "analyze_paths",
    "analyze_source",
    "build_program",
    "lint_paths",
    "lint_source",
    "scan_pragmas",
    "validate_graph",
    "validate_model_dict",
    "validate_round_trip",
]
