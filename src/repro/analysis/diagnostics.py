"""Structured diagnostics for static analysis (model + code).

Every check in :mod:`repro.analysis` reports its findings as
:class:`Diagnostic` records with a *stable code* (``HW002``, ``DET001``,
...) and a severity, so that tooling — the ``lint-model`` / ``lint-code``
CLI subcommands, CI, tests — can match on codes instead of message text.

The full code table lives in :data:`DIAGNOSTIC_CODES`; the README mirrors
it for humans.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so ``max()`` picks the worst."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:  # "error", not "Severity.ERROR"
        return self.name.lower()


#: code -> (default severity, one-line meaning).  Codes are stable public
#: API: tests and CI match on them, so never renumber — add new ones.
DIAGNOSTIC_CODES: dict[str, tuple[Severity, str]] = {
    # -- HW-graph artifact checks (repro.analysis.validate) -----------------
    "HW001": (Severity.ERROR,
              "dangling reference: a PARENT/BEFORE edge or key membership "
              "points at a group or Intel Key that does not exist"),
    "HW002": (Severity.ERROR,
              "cycle in the BEFORE relation between sibling groups"),
    "HW003": (Severity.ERROR,
              "PARENT relation is not a forest (parent/children mismatch, "
              "duplicate child entry, or parent-pointer cycle)"),
    "HW004": (Severity.WARNING,
              "lifespan of a child group is not contained in its parent "
              "(relation matrix does not support the assigned PARENT)"),
    "HW005": (Severity.ERROR,
              "subroutine references a log key absent from its group"),
    "HW006": (Severity.WARNING,
              "critical key unreachable from any root of the hierarchy"),
    "IK001": (Severity.ERROR,
              "identifier/value slot mismatch in an Intel Key (field "
              "position duplicated, out of range, or unnamed)"),
    "SR001": (Severity.ERROR,
              "empty or non-deterministic subroutine signature"),
    "RT001": (Severity.ERROR,
              "serialization round-trip mismatch: to_dict -> from_dict -> "
              "to_dict did not reproduce the artifact"),
    # -- codebase lint (repro.analysis.astlint) -----------------------------
    "DET001": (Severity.ERROR,
               "unseeded np.random.default_rng() or stdlib random module "
               "use (breaks simulator determinism)"),
    "DET002": (Severity.ERROR,
               "wall-clock time source (time.time / datetime.now / ...) in "
               "library code (breaks replay determinism)"),
    "DET003": (Severity.ERROR,
               "iteration over a set/frozenset expression in an "
               "order-sensitive context (order varies with "
               "PYTHONHASHSEED; sort first)"),
    "PY001": (Severity.ERROR,
              "mutable default argument (list/dict/set literal or call)"),
    "PY002": (Severity.ERROR,
              "bare 'except:' or 'except Exception: pass' swallowing "
              "errors"),
    # -- concurrency analysis (repro.analysis.concurrency) ------------------
    "RACE001": (Severity.ERROR,
                "unguarded write to an attribute that is lock-guarded "
                "elsewhere in the same class (data race on a "
                "thread-shared object)"),
    "RACE002": (Severity.ERROR,
                "lock-order cycle in the acquisition graph, or a "
                "non-reentrant lock re-acquired while held (potential "
                "deadlock)"),
    "RACE003": (Severity.ERROR,
                "fork-unsafe capture: an object holding a lock, open "
                "file, socket or metrics registry is shipped into a "
                "ProcessPoolExecutor worker"),
    "RACE004": (Severity.WARNING,
                "publication after handoff: an object is mutated after "
                "being handed to another thread, queue or executor"),
    "RACE005": (Severity.ERROR,
                "blocking call (sleep, file/socket IO, subprocess) "
                "while holding a lock"),
    # -- suppression pragmas (repro.analysis.suppress) ----------------------
    "SUP001": (Severity.ERROR,
               "unknown or malformed code in a '# repro: allow=' "
               "suppression pragma"),
    "SUP002": (Severity.ERROR,
               "suppression pragma without an inline justification"),
}


def default_severity(code: str) -> Severity:
    """Severity registered for ``code`` (ERROR for unknown codes)."""
    entry = DIAGNOSTIC_CODES.get(code)
    return entry[0] if entry else Severity.ERROR


def code_meaning(code: str) -> str:
    entry = DIAGNOSTIC_CODES.get(code)
    return entry[1] if entry else "unregistered diagnostic code"


@dataclass(frozen=True, slots=True)
class Diagnostic:
    """One finding of a static check.

    ``subject`` names the artifact element (group label, key id, signature)
    or, for code lint, the offending symbol; ``location`` is free-form
    ("group 'fetcher'", "file.py:12").
    """

    code: str
    message: str
    severity: Severity
    subject: str = ""
    location: str = ""

    @classmethod
    def make(cls, code: str, message: str, *, subject: str = "",
             location: str = "",
             severity: Severity | None = None) -> "Diagnostic":
        return cls(
            code=code,
            message=message,
            severity=severity if severity is not None
            else default_severity(code),
            subject=subject,
            location=location,
        )

    def render(self) -> str:
        where = f"{self.location}: " if self.location else ""
        return f"{where}{self.code} [{self.severity}] {self.message}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
            "subject": self.subject,
            "location": self.location,
        }


@dataclass(slots=True)
class DiagnosticReport:
    """An ordered collection of diagnostics with convenience queries."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(self, code: str, message: str, *, subject: str = "",
            location: str = "",
            severity: Severity | None = None) -> Diagnostic:
        diag = Diagnostic.make(
            code, message, subject=subject, location=location,
            severity=severity,
        )
        self.diagnostics.append(diag)
        return diag

    def extend(self, diags: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diags)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __bool__(self) -> bool:
        return bool(self.diagnostics)

    @property
    def codes(self) -> set[str]:
        return {d.code for d in self.diagnostics}

    def with_code(self, code: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def at_least(self, severity: Severity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity >= severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.at_least(Severity.ERROR)

    @property
    def has_errors(self) -> bool:
        return bool(self.errors)

    def summary(self) -> str:
        if not self.diagnostics:
            return "0 diagnostics"
        by_sev: dict[Severity, int] = {}
        for diag in self.diagnostics:
            by_sev[diag.severity] = by_sev.get(diag.severity, 0) + 1
        parts = ", ".join(
            f"{count} {sev}{'s' if count != 1 else ''}"
            for sev, count in sorted(by_sev.items(), reverse=True)
        )
        return f"{len(self.diagnostics)} diagnostics ({parts})"

    def render(self) -> str:
        return "\n".join(d.render() for d in self.diagnostics)

    def to_dict(self) -> dict[str, Any]:
        return {
            "summary": self.summary(),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }
