"""Static validation of trained HW-graph artifacts.

Detection quality (paper §6) rests on the structural soundness of the
trained model: a dangling group reference, a cyclic BEFORE relation or an
ill-formed subroutine signature silently corrupts anomaly reports.  This
module checks those invariants *statically* — over the in-memory
:class:`~repro.graph.hwgraph.HWGraph` and over its ``to_dict()`` /
:class:`~repro.query.store.ModelStore` serialization — and reports
findings as :class:`~repro.analysis.diagnostics.Diagnostic` records with
stable codes (``HW001`` ... ``SR001``; see
:data:`~repro.analysis.diagnostics.DIAGNOSTIC_CODES`).

Entry points:

* :func:`validate_graph` — invariants of an in-memory graph;
* :func:`validate_model_dict` — the same invariants over a serialized
  model dict (as produced by ``HWGraph.to_dict`` or stored by
  ``ModelStore``), by reconstructing the graph;
* :func:`validate_round_trip` — ``to_dict -> from_dict -> to_dict``
  fidelity (``RT001``) plus the structural checks on the reloaded graph.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..extraction.intelkey import IntelKey
from ..graph.hwgraph import HWGraph
from ..graph.lifespan import PARENT
from .diagnostics import DiagnosticReport

__all__ = [
    "validate_graph",
    "validate_model_dict",
    "validate_round_trip",
]


def validate_graph(graph: HWGraph) -> DiagnosticReport:
    """Run every structural check over an in-memory HW-graph."""
    report = DiagnosticReport()
    _check_dangling(graph, report)
    _check_before_cycles(graph, report)
    _check_parent_forest(graph, report)
    _check_lifespan_containment(graph, report)
    _check_subroutine_keys(graph, report)
    _check_reachability(graph, report)
    _check_intel_keys(graph.intel_keys, report)
    _check_signatures(graph, report)
    return report


def validate_model_dict(data: Mapping[str, Any]) -> DiagnosticReport:
    """Validate a serialized model dict (``HWGraph.to_dict()`` shape).

    Malformed payloads that cannot even be reconstructed yield a single
    ``RT001`` diagnostic instead of raising.
    """
    report = DiagnosticReport()
    try:
        graph = HWGraph.from_dict(dict(data))
    except Exception as exc:
        report.add(
            "RT001",
            f"model dict cannot be reconstructed: {exc!r}",
            location="from_dict",
        )
        return report
    report.extend(validate_graph(graph))
    return report


def validate_round_trip(graph: HWGraph) -> DiagnosticReport:
    """Check ``to_dict -> from_dict -> to_dict`` fidelity (``RT001``).

    Also runs the full structural validation on the reloaded graph, so a
    round trip that *loses* an edge surfaces both as ``RT001`` and as the
    structural code the loss causes.
    """
    report = DiagnosticReport()
    first = graph.to_dict()
    try:
        reloaded = HWGraph.from_dict(first)
    except Exception as exc:
        report.add(
            "RT001",
            f"from_dict failed on to_dict output: {exc!r}",
            location="from_dict",
        )
        return report
    second = reloaded.to_dict()
    for path in _dict_diff_paths(first, second):
        report.add(
            "RT001",
            f"round-trip mismatch at {path}",
            subject=path,
            location="to_dict/from_dict",
        )
    report.extend(validate_graph(reloaded))
    return report


# -- individual checks ---------------------------------------------------------


def _check_dangling(graph: HWGraph, report: DiagnosticReport) -> None:
    """HW001: every reference between artifacts must resolve."""
    groups = graph.groups
    for label, node in groups.items():
        loc = f"group '{label}'"
        if node.parent is not None and node.parent not in groups:
            report.add(
                "HW001",
                f"parent '{node.parent}' of group '{label}' does not exist",
                subject=label, location=loc,
            )
        for child in node.children:
            if child not in groups:
                report.add(
                    "HW001",
                    f"child '{child}' of group '{label}' does not exist",
                    subject=label, location=loc,
                )
        for later in node.before:
            if later not in groups:
                report.add(
                    "HW001",
                    f"BEFORE edge of group '{label}' targets missing "
                    f"group '{later}'",
                    subject=label, location=loc,
                )
        for key_id in node.key_ids:
            if key_id not in graph.intel_keys:
                report.add(
                    "HW001",
                    f"group '{label}' references unknown Intel Key "
                    f"'{key_id}'",
                    subject=key_id, location=loc,
                )
    for key_id, labels in graph.key_groups.items():
        for label in labels:
            if label not in groups:
                report.add(
                    "HW001",
                    f"key_groups maps '{key_id}' to missing group "
                    f"'{label}'",
                    subject=key_id, location="key_groups",
                )


def _check_before_cycles(graph: HWGraph, report: DiagnosticReport) -> None:
    """HW002: the sibling BEFORE relation must be acyclic."""
    edges = {
        label: sorted(t for t in node.before if t in graph.groups)
        for label, node in graph.groups.items()
    }
    # Iterative DFS with colouring; report each cycle once via its
    # lexicographically-smallest member.
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {label: WHITE for label in edges}
    reported: set[frozenset[str]] = set()

    def visit(start: str) -> None:
        stack: list[tuple[str, int]] = [(start, 0)]
        path = [start]
        colour[start] = GREY
        while stack:
            label, idx = stack[-1]
            targets = edges[label]
            if idx < len(targets):
                stack[-1] = (label, idx + 1)
                target = targets[idx]
                if colour[target] == GREY:
                    cycle = path[path.index(target):] + [target]
                    members = frozenset(cycle)
                    if members not in reported:
                        reported.add(members)
                        report.add(
                            "HW002",
                            "BEFORE cycle: " + " -> ".join(cycle),
                            subject=min(members),
                            location="BEFORE relation",
                        )
                elif colour[target] == WHITE:
                    colour[target] = GREY
                    stack.append((target, 0))
                    path.append(target)
            else:
                colour[label] = BLACK
                stack.pop()
                path.pop()

    for label in sorted(edges):
        if colour[label] == WHITE:
            visit(label)


def _check_parent_forest(graph: HWGraph, report: DiagnosticReport) -> None:
    """HW003: the PARENT relation must form a forest."""
    groups = graph.groups
    for label, node in groups.items():
        seen: set[str] = set()
        for child in node.children:
            if child in seen:
                report.add(
                    "HW003",
                    f"group '{label}' lists child '{child}' twice",
                    subject=label, location=f"group '{label}'",
                )
            seen.add(child)
            child_node = groups.get(child)
            if child_node is not None and child_node.parent != label:
                report.add(
                    "HW003",
                    f"group '{label}' lists '{child}' as child but "
                    f"'{child}'.parent is {child_node.parent!r}",
                    subject=child, location=f"group '{label}'",
                )
        if node.parent is not None:
            parent_node = groups.get(node.parent)
            if (parent_node is not None
                    and label not in parent_node.children):
                report.add(
                    "HW003",
                    f"group '{label}' points at parent '{node.parent}' "
                    f"which does not list it as a child",
                    subject=label, location=f"group '{label}'",
                )
    # Parent-pointer cycles (a forest has none).
    for label in sorted(groups):
        slow = groups[label].parent
        hops = 0
        while slow is not None and slow in groups:
            hops += 1
            if slow == label:
                report.add(
                    "HW003",
                    f"parent-pointer cycle through group '{label}'",
                    subject=label, location=f"group '{label}'",
                )
                break
            if hops > len(groups):
                break
            slow = groups[slow].parent


def _check_lifespan_containment(
    graph: HWGraph, report: DiagnosticReport
) -> None:
    """HW004: each PARENT edge must be backed by the relation matrix.

    Only applicable when lifespan observations are present (a freshly
    reconstructed graph without a relation matrix is skipped).
    """
    if not graph.relations.groups:
        return
    for label, node in graph.groups.items():
        if node.parent is None or node.parent not in graph.groups:
            continue
        relation = graph.relations.relation(node.parent, label)
        if relation != PARENT:
            report.add(
                "HW004",
                f"group '{label}' is parented under '{node.parent}' but "
                f"observed lifespans say {relation}, not PARENT "
                f"(child not contained in parent)",
                subject=label, location=f"group '{label}'",
            )


def _check_subroutine_keys(
    graph: HWGraph, report: DiagnosticReport
) -> None:
    """HW005: subroutines may only reference keys of their own group."""
    for label, node in graph.groups.items():
        for signature, sub in node.model.subroutines.items():
            sig_text = "|".join(signature) or "NONE"
            for key_id in sub.keys:
                if key_id not in node.key_ids:
                    report.add(
                        "HW005",
                        f"subroutine {sig_text} of group '{label}' "
                        f"references key '{key_id}' absent from the group",
                        subject=key_id,
                        location=f"group '{label}' subroutine {sig_text}",
                    )


def _check_reachability(graph: HWGraph, report: DiagnosticReport) -> None:
    """HW006: critical keys must live in groups reachable from a root."""
    reachable: set[str] = set()
    stack = [label for label in graph.roots]
    while stack:
        label = stack.pop()
        if label in reachable:
            continue
        reachable.add(label)
        stack.extend(
            child for child in graph.groups[label].children
            if child in graph.groups
        )
    for label in sorted(graph.groups):
        node = graph.groups[label]
        if label in reachable or not node.critical:
            continue
        keys = ", ".join(sorted(node.key_ids)) or "<none>"
        report.add(
            "HW006",
            f"critical group '{label}' (keys {keys}) is unreachable "
            f"from any root",
            subject=label, location=f"group '{label}'",
        )


def _check_intel_keys(
    intel_keys: Mapping[str, IntelKey], report: DiagnosticReport
) -> None:
    """IK001: field specs must map one role onto one existing star slot."""
    for key_id, key in sorted(intel_keys.items()):
        loc = f"intel key '{key_id}'"
        slots = key.template.count("*")
        seen_positions: set[int] = set()
        for spec in key.fields:
            if spec.position < 0 or spec.position >= slots:
                report.add(
                    "IK001",
                    f"field '{spec.name}' of key '{key_id}' claims slot "
                    f"{spec.position} but the template has {slots} "
                    f"variable slots",
                    subject=key_id, location=loc,
                )
            elif spec.position in seen_positions:
                report.add(
                    "IK001",
                    f"key '{key_id}' assigns two roles to variable slot "
                    f"{spec.position}",
                    subject=key_id, location=loc,
                )
            if not spec.name:
                report.add(
                    "IK001",
                    f"key '{key_id}' has an unnamed field at slot "
                    f"{spec.position}",
                    subject=key_id, location=loc,
                )
            seen_positions.add(spec.position)


def _check_signatures(graph: HWGraph, report: DiagnosticReport) -> None:
    """SR001: signatures must be sorted, duplicate-free and consistent."""
    for label, node in graph.groups.items():
        for signature, sub in node.model.subroutines.items():
            sig_text = "|".join(signature) or "NONE"
            loc = f"group '{label}' subroutine {sig_text}"
            canonical = tuple(sorted(set(signature)))
            if signature != canonical:
                report.add(
                    "SR001",
                    f"signature {signature!r} of group '{label}' is not "
                    f"sorted/duplicate-free (non-deterministic ordering)",
                    subject=label, location=loc,
                )
            if sub.signature != signature:
                report.add(
                    "SR001",
                    f"subroutine stored under {signature!r} carries "
                    f"signature {sub.signature!r}",
                    subject=label, location=loc,
                )
            if sub.instance_count > 0 and not sub.keys:
                report.add(
                    "SR001",
                    f"subroutine {sig_text} of group '{label}' observed "
                    f"{sub.instance_count} instances but has no keys "
                    f"(empty signature model)",
                    subject=label, location=loc,
                )


# -- helpers -----------------------------------------------------------------


def _dict_diff_paths(
    a: Any, b: Any, prefix: str = "$", limit: int = 20
) -> list[str]:
    """Paths at which two JSON-like values differ (first ``limit`` found)."""
    diffs: list[str] = []

    def walk(x: Any, y: Any, path: str) -> None:
        if len(diffs) >= limit:
            return
        if isinstance(x, Mapping) and isinstance(y, Mapping):
            for key in sorted(set(x) | set(y)):
                if key not in x:
                    diffs.append(f"{path}.{key} (only in reloaded)")
                elif key not in y:
                    diffs.append(f"{path}.{key} (lost in round-trip)")
                else:
                    walk(x[key], y[key], f"{path}.{key}")
                if len(diffs) >= limit:
                    return
        elif isinstance(x, list) and isinstance(y, list):
            if len(x) != len(y):
                diffs.append(
                    f"{path} (length {len(x)} != {len(y)})"
                )
                return
            for i, (xi, yi) in enumerate(zip(x, y)):
                walk(xi, yi, f"{path}[{i}]")
                if len(diffs) >= limit:
                    return
        elif x != y:
            diffs.append(f"{path} ({x!r} != {y!r})")

    walk(a, b, prefix)
    return diffs
