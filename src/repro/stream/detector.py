"""Online detection: per-record live alerts + batch-exact session reports.

The paper's detection phase (§4.2) has two halves with different latency
profiles, and the streaming detector splits them accordingly:

* **unexpected log messages** are recognizable the instant a record
  arrives — :meth:`StreamingDetector.observe` matches each record
  against the learned log keys and emits a lightweight
  :class:`LiveAlert` immediately, so operators see novel messages while
  the job is still running;
* **erroneous HW-graph instances** (incomplete subroutines, missing
  critical keys, order violations, missing groups, hierarchy breaks)
  need the whole session — :meth:`StreamingDetector.finalize` runs them
  when the tracker closes a session.

``finalize`` delegates to the batch
:meth:`~repro.detection.detector.AnomalyDetector.detect_session` on the
time-sorted closed session, which makes stream/batch report parity exact
*by construction*: the same detector code produces the authoritative
:class:`~repro.detection.report.SessionReport` in both modes.  The live
pass costs one extra Spell match per record; the full §3 extraction for
unexpected messages runs once, at finalize time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..detection.detector import AnomalyDetector
from ..detection.report import SessionReport
from ..parsing.records import LogRecord
from .tracker import ClosedSession

__all__ = ["LiveAlert", "StreamingDetector"]


@dataclass(slots=True)
class LiveAlert:
    """Immediate per-record finding, ahead of the session's full report."""

    kind: str
    session_id: str
    app_id: str
    timestamp: float
    message: str

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "session_id": self.session_id,
            "app_id": self.app_id,
            "timestamp": self.timestamp,
            "message": self.message,
        }


class StreamingDetector:
    """Wraps a trained :class:`AnomalyDetector` for online use."""

    def __init__(self, detector: AnomalyDetector) -> None:
        self.detector = detector

    def observe(self, record: LogRecord) -> LiveAlert | None:
        """Cheap per-record check: is this message's log key known?

        Returns a :class:`LiveAlert` for unexpected messages, ``None``
        for messages the model recognizes.  Purely advisory — the
        authoritative anomaly (with full five-field extraction) appears
        in the session's :meth:`finalize` report.
        """
        if self.detector.spell.match(record.message) is not None:
            return None
        return self._alert(record)

    def observe_batch(
        self, records: Sequence[LogRecord]
    ) -> list[LiveAlert | None]:
        """Batched :meth:`observe`: one ``match_batch`` for the whole
        poll batch (duplicate messages match once), same per-record
        alerts.  The runtime's quantum pumps feed entire source batches
        through here so the match cost amortizes across the batch."""
        matches = self.detector.spell.match_batch(
            [record.message for record in records]
        )
        return [
            None if match is not None else self._alert(record)
            for record, match in zip(records, matches)
        ]

    @staticmethod
    def _alert(record: LogRecord) -> LiveAlert:
        return LiveAlert(
            kind="unexpected_message",
            session_id=record.session_id,
            app_id=record.app_id,
            timestamp=record.timestamp,
            message=record.message[:200],
        )

    def finalize(self, closed: ClosedSession) -> SessionReport:
        """Full HW-graph-instance checks on a closed session."""
        return self.detector.detect_session(closed.session)
