"""Online streaming ingestion and live anomaly detection.

The batch pipeline (:class:`repro.IntelLog`) materializes every session
before detecting; this subsystem consumes logs as an unbounded stream
with bounded memory:

* :mod:`~repro.stream.source` — ``LogSource`` protocol with a file
  follower and an in-memory replay source;
* :mod:`~repro.stream.tracker` — incremental per-container session
  assembly with idle timeouts, end markers and an LRU session cap;
* :mod:`~repro.stream.detector` — per-record live alerts plus
  batch-exact session finalization;
* :mod:`~repro.stream.sink` — pluggable report delivery;
* :mod:`~repro.stream.checkpoint` — crash/restart persistence;
* :mod:`~repro.stream.runtime` — the event loop tying it together
  (surfaced on the command line as ``repro watch``).
"""

from .checkpoint import StreamCheckpoint, default_checkpoint_path
from .detector import LiveAlert, StreamingDetector
from .runtime import RuntimeStats, StreamRuntime
from .sink import CallbackSink, JsonLinesSink, ListSink, ReportSink
from .source import (
    FileFollowSource,
    IterableSource,
    LogSource,
    yarn_session_key,
)
from .tracker import ClosedSession, SessionTracker, TrackerConfig

__all__ = [
    "CallbackSink",
    "ClosedSession",
    "FileFollowSource",
    "IterableSource",
    "JsonLinesSink",
    "ListSink",
    "LiveAlert",
    "LogSource",
    "ReportSink",
    "RuntimeStats",
    "SessionTracker",
    "StreamCheckpoint",
    "StreamRuntime",
    "StreamingDetector",
    "TrackerConfig",
    "default_checkpoint_path",
    "yarn_session_key",
]
