"""Online streaming ingestion and live anomaly detection.

The batch pipeline (:class:`repro.IntelLog`) materializes every session
before detecting; this subsystem consumes logs as an unbounded stream
with bounded memory:

* :mod:`~repro.stream.source` — ``LogSource`` protocol with a file
  follower (rotation/truncation aware) and an in-memory replay source;
* :mod:`~repro.stream.tracker` — incremental per-container session
  assembly with idle timeouts, end markers and an LRU session cap;
* :mod:`~repro.stream.detector` — per-record live alerts plus
  batch-exact session finalization;
* :mod:`~repro.stream.sink` — pluggable report delivery;
* :mod:`~repro.stream.checkpoint` — crash/restart persistence
  (versioned, checksummed, atomic with a rolling ``.bak``);
* :mod:`~repro.stream.resilience` — retry/backoff, the
  HEALTHY → DEGRADED → FAILED circuit breaker, dead-letter quarantines
  and the exactly-once finalization ledger;
* :mod:`~repro.stream.chaos` — seeded fault injectors for testing the
  above (torn writes, flaky IO, checkpoint corruption);
* :mod:`~repro.stream.runtime` — the event loop tying it together
  (surfaced on the command line as ``repro watch``).
"""

from .chaos import (
    ChaosLogWriter,
    FlakySink,
    FlakySource,
    corrupt_checkpoint,
)
from .checkpoint import (
    StreamCheckpoint,
    backup_checkpoint_path,
    default_checkpoint_path,
    tenant_checkpoint_name,
)
from .detector import LiveAlert, StreamingDetector
from .resilience import (
    DEGRADED,
    FAILED,
    HEALTHY,
    QUARANTINE_REASONS,
    CircuitBreaker,
    JsonLinesQuarantine,
    ListQuarantine,
    Quarantine,
    RetryPolicy,
    finalization_id,
)
from .runtime import RuntimeStats, StreamRuntime
from .sink import CallbackSink, JsonLinesSink, ListSink, ReportSink
from .source import (
    FileFollowSource,
    IterableSource,
    LogSource,
    yarn_session_key,
)
from .tracker import ClosedSession, SessionTracker, TrackerConfig

__all__ = [
    "CallbackSink",
    "ChaosLogWriter",
    "CircuitBreaker",
    "ClosedSession",
    "DEGRADED",
    "FAILED",
    "FileFollowSource",
    "FlakySink",
    "FlakySource",
    "HEALTHY",
    "IterableSource",
    "JsonLinesQuarantine",
    "JsonLinesSink",
    "ListQuarantine",
    "ListSink",
    "LiveAlert",
    "LogSource",
    "QUARANTINE_REASONS",
    "Quarantine",
    "ReportSink",
    "RetryPolicy",
    "RuntimeStats",
    "SessionTracker",
    "StreamCheckpoint",
    "StreamRuntime",
    "StreamingDetector",
    "TrackerConfig",
    "backup_checkpoint_path",
    "corrupt_checkpoint",
    "default_checkpoint_path",
    "finalization_id",
    "tenant_checkpoint_name",
    "yarn_session_key",
]
