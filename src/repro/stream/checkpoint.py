"""Checkpoint/resume for the streaming runtime.

One JSON document captures everything needed to restart mid-job: the
source position (file byte offset or record index), the full
:class:`~repro.stream.tracker.SessionTracker` state (open sessions with
their buffered records), cumulative emission counters, the
exactly-once **finalized ledger** (content hashes of recently emitted
sessions — see :func:`repro.stream.resilience.finalization_id`), and an
**outbox** of reports that were finalized but not yet delivered to a
failing sink.  Position and tracker state are snapshotted together
between poll batches, so a runtime restarted from a checkpoint replays
no record it already fed the tracker and re-emits no report it already
delivered.

Corruption is treated as the common case, not the exception:

* the format carries a version and a SHA-256 content checksum; torn or
  garbled files fail loading with a typed
  :class:`~repro.core.errors.CheckpointCorruptError` instead of a
  traceback deep in ``json``;
* every save is atomic (temp file + rename) and rotates the previous
  good checkpoint to a ``.bak`` sibling;
* :meth:`StreamCheckpoint.recover` walks the ladder — checkpoint, then
  ``.bak``, then cold start — returning what it found plus
  human-readable notes for the operator.

The checkpoint lives next to the model artifact by default
(``model.json`` → ``model.stream-ckpt.json``), mirroring how
:class:`~repro.query.store.ModelStore` persists the trained model.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..core.errors import CheckpointCorruptError
from ..core.fsio import REAL_FS, FileSystem
from ..core.killpoints import kill_point

__all__ = [
    "StreamCheckpoint",
    "default_checkpoint_path",
    "backup_checkpoint_path",
    "tenant_checkpoint_name",
]

_VERSION = 2

_TENANT_SAFE = re.compile(r"[^A-Za-z0-9._-]")


def tenant_checkpoint_name(tenant: str) -> str:
    """Filesystem-safe checkpoint filename component for a tenant id.

    Unsafe characters are replaced with ``_``; when sanitization changed
    anything, a short content hash of the *original* id is appended so
    distinct tenant ids that sanitize identically (``"a/b"`` vs
    ``"a_b"``) still get distinct checkpoint files.
    """
    safe = _TENANT_SAFE.sub("_", tenant) or "_"
    if safe != tenant:
        digest = hashlib.sha256(tenant.encode("utf-8")).hexdigest()[:8]
        safe = f"{safe}-{digest}"
    return safe


def default_checkpoint_path(
    model_path: str | Path, tenant: str | None = None
) -> Path:
    """Sibling checkpoint path for a model artifact.

    With ``tenant`` the path is namespaced per tenant
    (``model.json`` → ``model.<tenant>.stream-ckpt.json``), so several
    tenants sharing one model artifact never clobber each other's
    checkpoints.
    """
    path = Path(model_path)
    if tenant is None:
        return path.with_name(path.stem + ".stream-ckpt.json")
    return path.with_name(
        f"{path.stem}.{tenant_checkpoint_name(tenant)}.stream-ckpt.json"
    )


def backup_checkpoint_path(path: str | Path) -> Path:
    """Rolling backup (`.bak`) sibling for a checkpoint path."""
    path = Path(path)
    return path.with_name(path.name + ".bak")


def _checksum(body: dict[str, Any]) -> str:
    return hashlib.sha256(
        json.dumps(body, sort_keys=True).encode("utf-8")
    ).hexdigest()


@dataclass(slots=True)
class StreamCheckpoint:
    """Serializable snapshot of a running stream."""

    source_position: dict[str, Any] = field(default_factory=dict)
    tracker_state: dict[str, Any] = field(default_factory=dict)
    #: Cumulative counters carried across restarts (records consumed,
    #: reports emitted, closures by reason, anomalies by kind).
    counters: dict[str, Any] = field(default_factory=dict)
    #: Exactly-once ledger: finalization ids of recently emitted
    #: reports, oldest first (bounded by ResilienceConfig.finalized_cap).
    finalized: list[str] = field(default_factory=list)
    #: Reports finalized but not yet delivered to the sink:
    #: ``{"report": <SessionReport.to_dict()>, "reason": str,
    #:    "finalization_id": str}`` — re-emitted first on resume.
    outbox: list[dict[str, Any]] = field(default_factory=list)
    version: int = _VERSION

    # -- JSON I/O ---------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        body = {
            "version": self.version,
            "source_position": self.source_position,
            "tracker_state": self.tracker_state,
            "counters": self.counters,
            "finalized": list(self.finalized),
            "outbox": list(self.outbox),
        }
        body["checksum"] = _checksum(
            {k: v for k, v in body.items() if k != "checksum"}
        )
        return body

    def save(
        self,
        path: str | Path,
        fs: FileSystem | None = None,
        fsync: bool = False,
    ) -> None:
        """Atomic write with a rolling backup.

        The previous checkpoint (if any) is renamed to ``.bak`` before
        the new one replaces the live path, so at every instant at
        least one intact checkpoint exists on disk; a crash mid-save
        leaves either the old file, or the ``.bak`` plus a temp file —
        never a torn live checkpoint.  ``fs`` is the durability seam
        (fault-injection tests substitute a
        :class:`~repro.core.fsio.FaultyFS`); ``fsync`` additionally
        syncs the temp file before the renames and the directory after,
        per ``DurabilityConfig.fsync_checkpoints``.
        """
        fs = fs or REAL_FS
        path = Path(path)
        tmp = path.with_name(path.name + ".tmp")
        fs.write_text(tmp, json.dumps(self.to_dict()))
        if fsync:
            fs.fsync_file(tmp)
        kill_point("checkpoint.tmp")
        if path.exists():
            fs.replace(path, backup_checkpoint_path(path))
            kill_point("checkpoint.bak")
        fs.replace(tmp, path)
        if fsync:
            fs.fsync_dir(path.parent)

    @classmethod
    def from_dict(cls, data: Any) -> "StreamCheckpoint":
        if not isinstance(data, dict):
            raise CheckpointCorruptError(
                f"checkpoint payload is {type(data).__name__}, "
                f"expected an object"
            )
        version = data.get("version")
        if version not in (1, _VERSION):
            raise CheckpointCorruptError(
                f"unsupported stream checkpoint version {version!r} "
                f"(expected 1 or {_VERSION})"
            )
        if version == _VERSION:
            stated = data.get("checksum")
            body = {k: v for k, v in data.items() if k != "checksum"}
            if stated != _checksum(body):
                raise CheckpointCorruptError(
                    "checkpoint checksum mismatch (torn or edited file)"
                )
        shape = {
            "source_position": dict,
            "tracker_state": dict,
            "counters": dict,
            "finalized": list,
            "outbox": list,
        }
        for key, kind in shape.items():
            value = data.get(key, kind())
            if not isinstance(value, kind):
                raise CheckpointCorruptError(
                    f"checkpoint field {key!r} is "
                    f"{type(value).__name__}, expected {kind.__name__}"
                )
        return cls(
            source_position=dict(data.get("source_position", {})),
            tracker_state=dict(data.get("tracker_state", {})),
            counters=dict(data.get("counters", {})),
            finalized=[str(x) for x in data.get("finalized", [])],
            outbox=list(data.get("outbox", [])),
            version=_VERSION,
        )

    @classmethod
    def load(cls, path: str | Path) -> "StreamCheckpoint":
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise CheckpointCorruptError(
                f"checkpoint is not valid JSON: {exc}", path=str(path)
            ) from exc
        except UnicodeDecodeError as exc:
            raise CheckpointCorruptError(
                f"checkpoint is not valid UTF-8: {exc}", path=str(path)
            ) from exc
        try:
            return cls.from_dict(payload)
        except CheckpointCorruptError as exc:
            exc.path = str(path)
            raise

    @classmethod
    def load_if_exists(
        cls, path: str | Path
    ) -> "StreamCheckpoint | None":
        path = Path(path)
        if not path.exists():
            return None
        return cls.load(path)

    @classmethod
    def recover(
        cls, path: str | Path
    ) -> tuple["StreamCheckpoint | None", str, list[str]]:
        """Load with fallback: checkpoint → ``.bak`` → cold start.

        Returns ``(checkpoint, origin, notes)`` where origin is one of
        ``"checkpoint"`` (live file loaded), ``"backup"`` (live file
        corrupt/missing, ``.bak`` loaded), ``"cold"`` (both unusable —
        the caller reprocesses from the beginning) or ``"fresh"`` (no
        checkpoint has ever been written).  ``notes`` are warnings an
        operator should see.
        """
        path = Path(path)
        bak = backup_checkpoint_path(path)
        if not path.exists() and not bak.exists():
            return None, "fresh", []
        notes: list[str] = []
        if path.exists():
            try:
                return cls.load(path), "checkpoint", notes
            except (CheckpointCorruptError, OSError) as exc:
                notes.append(f"checkpoint {path} unusable: {exc}")
        else:
            notes.append(f"checkpoint {path} missing")
        if bak.exists():
            try:
                checkpoint = cls.load(bak)
                notes.append(
                    f"recovered from backup checkpoint {bak}"
                )
                return checkpoint, "backup", notes
            except (CheckpointCorruptError, OSError) as exc:
                notes.append(f"backup checkpoint {bak} unusable: {exc}")
        else:
            notes.append("no backup checkpoint")
        notes.append(
            "COLD START: no usable checkpoint — reprocessing from the "
            "beginning; already-delivered reports are suppressed only "
            "if the sink can replay its emitted ids"
        )
        return None, "cold", notes
