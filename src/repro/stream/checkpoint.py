"""Checkpoint/resume for the streaming runtime.

One JSON document captures everything needed to restart mid-job: the
source position (file byte offset or record index), the full
:class:`~repro.stream.tracker.SessionTracker` state (open sessions with
their buffered records), and cumulative emission counters.  Position and
tracker state are snapshotted together between poll batches, so a
runtime restarted from a checkpoint replays no record it already fed
the tracker and re-emits no report it already delivered — resumed
detection picks up exactly where the previous process stopped.

The checkpoint lives next to the model artifact by default
(``model.json`` → ``model.stream-ckpt.json``), mirroring how
:class:`~repro.query.store.ModelStore` persists the trained model.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = ["StreamCheckpoint", "default_checkpoint_path"]

_VERSION = 1


def default_checkpoint_path(model_path: str | Path) -> Path:
    """Sibling checkpoint path for a model artifact."""
    path = Path(model_path)
    return path.with_name(path.stem + ".stream-ckpt.json")


@dataclass(slots=True)
class StreamCheckpoint:
    """Serializable snapshot of a running stream."""

    source_position: dict[str, Any] = field(default_factory=dict)
    tracker_state: dict[str, Any] = field(default_factory=dict)
    #: Cumulative counters carried across restarts (records consumed,
    #: reports emitted, closures by reason, anomalies by kind).
    counters: dict[str, Any] = field(default_factory=dict)
    version: int = _VERSION

    # -- JSON I/O ---------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": self.version,
            "source_position": self.source_position,
            "tracker_state": self.tracker_state,
            "counters": self.counters,
        }

    def save(self, path: str | Path) -> None:
        """Atomic write: temp file + rename, so a crash mid-save leaves
        the previous checkpoint intact."""
        path = Path(path)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(self.to_dict()))
        os.replace(tmp, path)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "StreamCheckpoint":
        version = int(data.get("version", 0))
        if version != _VERSION:
            raise ValueError(
                f"unsupported stream checkpoint version {version} "
                f"(expected {_VERSION})"
            )
        return cls(
            source_position=dict(data.get("source_position", {})),
            tracker_state=dict(data.get("tracker_state", {})),
            counters=dict(data.get("counters", {})),
            version=version,
        )

    @classmethod
    def load(cls, path: str | Path) -> "StreamCheckpoint":
        return cls.from_dict(json.loads(Path(path).read_text()))

    @classmethod
    def load_if_exists(
        cls, path: str | Path
    ) -> "StreamCheckpoint | None":
        path = Path(path)
        if not path.exists():
            return None
        return cls.load(path)
