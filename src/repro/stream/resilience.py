"""Fault-tolerance primitives for the streaming runtime.

IntelLog's value proposition is always-on, non-intrusive monitoring of
long-running clusters, which means the detection runtime must outlive
the failures it is watching for: rotated and truncated log files, torn
writes, corrupted checkpoints, flaky sinks.  This module collects the
mechanisms the rest of ``repro.stream`` threads through:

* :func:`retry delays <RetryPolicy.delay>` — seeded-jitter exponential
  backoff for transient IO errors (seeded so DET001 stays green and
  chaos runs are reproducible);
* :class:`CircuitBreaker` — consecutive-failure counting that drives
  the runtime's explicit ``HEALTHY → DEGRADED → FAILED`` health state
  machine and accumulates time spent unhealthy;
* :class:`quarantine sinks <Quarantine>` — a dead-letter channel for
  unparseable/binary/torn input lines, each tagged with a reason code,
  so malformed data is preserved and countable instead of raised or
  silently dropped;
* :func:`finalization_id` — the content-addressed identity of one
  closed session, the key of the exactly-once emission ledger carried
  in the checkpoint.
"""

from __future__ import annotations

import hashlib
import json
import threading
from pathlib import Path
from typing import IO, Any, Callable, Protocol, runtime_checkable

from numpy.random import default_rng

from ..core.config import ResilienceConfig
from ..parsing.records import Session

__all__ = [
    "HEALTHY",
    "DEGRADED",
    "FAILED",
    "REASON_UNPARSEABLE",
    "REASON_BINARY",
    "REASON_DECODE",
    "REASON_TRUNCATED",
    "REASON_IO",
    "REASON_FINALIZE",
    "QUARANTINE_REASONS",
    "RetryPolicy",
    "CircuitBreaker",
    "Quarantine",
    "ListQuarantine",
    "JsonLinesQuarantine",
    "finalization_id",
]

# -- health states ---------------------------------------------------------

HEALTHY = "healthy"
DEGRADED = "degraded"
FAILED = "failed"

# -- quarantine reason codes ----------------------------------------------

#: Line matched no format and there was no record to fold it into.
REASON_UNPARSEABLE = "unparseable"
#: Line contains NUL bytes — binary data in a text log.
REASON_BINARY = "binary"
#: Line is not valid UTF-8 (torn multi-byte sequence, wrong encoding).
REASON_DECODE = "decode_error"
#: Trailing partial record at end of input (mid-record truncation).
REASON_TRUNCATED = "truncated_record"
#: An IO operation failed; the entry is a note, not a log line.
REASON_IO = "io_error"
#: Close-time detection raised on a (corrupt) session.
REASON_FINALIZE = "finalize_error"

QUARANTINE_REASONS = (
    REASON_UNPARSEABLE,
    REASON_BINARY,
    REASON_DECODE,
    REASON_TRUNCATED,
    REASON_IO,
    REASON_FINALIZE,
)


class RetryPolicy:
    """Seeded-jitter exponential backoff derived from a config.

    ``delay(attempt)`` grows ``base * 2**attempt`` capped at ``max``,
    then applies ``±jitter`` from a seeded generator — deterministic
    per policy instance, never synchronized across restarts that use
    different seeds.
    """

    def __init__(self, config: ResilienceConfig | None = None) -> None:
        self.config = config or ResilienceConfig()
        self._rng = default_rng(self.config.retry_seed)

    @classmethod
    def for_backoff(
        cls,
        base: float,
        maximum: float,
        jitter: float,
        seed: int,
    ) -> "RetryPolicy":
        """Build a policy from raw backoff knobs.

        The serve-layer supervisor schedules tenant *restarts* with the
        same delay curve as IO retries; this constructor lets it reuse
        :meth:`delay` without inventing a full :class:`ResilienceConfig`
        (retry counts and breaker thresholds are meaningless there).
        """
        return cls(ResilienceConfig(
            retry_base_delay=base,
            retry_max_delay=maximum,
            retry_jitter=jitter,
            retry_seed=seed,
        ))

    @property
    def max_attempts(self) -> int:
        return self.config.retry_attempts

    def delay(self, attempt: int) -> float:
        base = min(
            self.config.retry_base_delay * (2.0 ** max(0, attempt)),
            self.config.retry_max_delay,
        )
        jitter = self.config.retry_jitter
        if jitter <= 0.0:
            return base
        return base * (1.0 + jitter * float(self._rng.uniform(-1.0, 1.0)))


class CircuitBreaker:
    """Consecutive-failure counter behind the health state machine.

    Every failed IO attempt calls :meth:`record_failure`; any success
    calls :meth:`record_success` and snaps the state back to HEALTHY.
    The breaker also accumulates wall-clock time spent out of HEALTHY
    (``degraded_seconds``) against an injectable monotonic clock.
    """

    def __init__(
        self,
        degraded_after: int = 1,
        failed_after: int = 12,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.degraded_after = max(1, degraded_after)
        self.failed_after = max(self.degraded_after, failed_after)
        self._clock = clock or (lambda: 0.0)
        self.consecutive_failures = 0
        self.total_failures = 0
        self._unhealthy_since: float | None = None
        self._degraded_s = 0.0

    @property
    def state(self) -> str:
        if self.consecutive_failures >= self.failed_after:
            return FAILED
        if self.consecutive_failures >= self.degraded_after:
            return DEGRADED
        return HEALTHY

    def record_failure(self) -> str:
        self.consecutive_failures += 1
        self.total_failures += 1
        if (
            self._unhealthy_since is None
            and self.consecutive_failures >= self.degraded_after
        ):
            self._unhealthy_since = self._clock()
        return self.state

    def record_success(self) -> str:
        self.consecutive_failures = 0
        if self._unhealthy_since is not None:
            self._degraded_s += max(
                0.0, self._clock() - self._unhealthy_since
            )
            self._unhealthy_since = None
        return self.state

    def degraded_seconds(self) -> float:
        """Cumulative time out of HEALTHY, including the current spell."""
        # Read once: a concurrent record_success() may None the field
        # between a check and a use (stats threads call this live).
        since = self._unhealthy_since
        live = 0.0
        if since is not None:
            live = max(0.0, self._clock() - since)
        return self._degraded_s + live


# -- quarantine ------------------------------------------------------------


@runtime_checkable
class Quarantine(Protocol):
    """Dead-letter channel for malformed input, with per-reason counts.

    ``put`` may be called from the runtime loop while another thread
    reads stats, so implementations guard their counters and expose a
    consistent :meth:`snapshot` (reading ``counts`` directly during
    concurrent puts can observe a dict mid-resize).
    """

    counts: dict[str, int]

    def put(
        self,
        reason: str,
        line: str,
        source: str = "",
        offset: int | None = None,
    ) -> None:
        ...

    def snapshot(self) -> dict[str, int]:
        ...


class ListQuarantine:
    """Collects quarantined entries in memory (default, tests)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.entries: list[dict[str, Any]] = []
        self.counts: dict[str, int] = {}

    def put(
        self,
        reason: str,
        line: str,
        source: str = "",
        offset: int | None = None,
    ) -> None:
        entry = _entry(reason, line, source, offset)
        with self._lock:
            self.counts[reason] = self.counts.get(reason, 0) + 1
            self.entries.append(entry)

    def snapshot(self) -> dict[str, int]:
        """Point-in-time copy of the per-reason counts."""
        with self._lock:
            return dict(self.counts)


class JsonLinesQuarantine:
    """Appends one JSON object per quarantined line to a file or stream.

    The quarantine file format is one object per line with keys
    ``reason`` (a :data:`QUARANTINE_REASONS` code), ``line`` (the
    offending text, decoded with replacement characters), ``source``
    (the originating file) and ``offset`` (byte offset, when known).
    """

    def __init__(self, target: IO[str] | str | Path) -> None:
        if isinstance(target, (str, Path)):
            self._fp: IO[str] = open(target, "a", encoding="utf-8")
            self._owned = True
        else:
            self._fp = target
            self._owned = False
        self._lock = threading.Lock()
        self.counts: dict[str, int] = {}

    def put(
        self,
        reason: str,
        line: str,
        source: str = "",
        offset: int | None = None,
    ) -> None:
        payload = json.dumps(_entry(reason, line, source, offset)) + "\n"
        with self._lock:
            self.counts[reason] = self.counts.get(reason, 0) + 1
        # File IO happens outside the lock: a slow disk must not stall
        # every thread snapshotting the counts (RACE005 by design).
        # Single-line str writes are atomic enough for an append-only
        # dead-letter file; interleaved lines stay individually valid.
        self._fp.write(payload)
        self._fp.flush()

    def snapshot(self) -> dict[str, int]:
        """Point-in-time copy of the per-reason counts."""
        with self._lock:
            return dict(self.counts)

    def close(self) -> None:
        if self._owned:
            self._fp.close()


def _entry(
    reason: str, line: str, source: str, offset: int | None
) -> dict[str, Any]:
    entry: dict[str, Any] = {"reason": reason, "line": line}
    if source:
        entry["source"] = source
    if offset is not None:
        entry["offset"] = offset
    return entry


# -- exactly-once identity -------------------------------------------------


def finalization_id(session: Session) -> str:
    """Content-addressed identity of one closed session.

    A replay after a crash reconstructs byte-identical sessions from the
    same input, so hashing the session id plus every record's
    ``(timestamp, message)`` yields the same id — the checkpointed
    ledger of these ids is what makes report emission exactly-once
    across resume.  Two byte-identical closures of the same session
    (only possible when the input itself was duplicated wholesale)
    deliberately share an id and dedupe.
    """
    digest = hashlib.sha256()
    digest.update(session.session_id.encode("utf-8", "replace"))
    digest.update(b"\x00")
    digest.update(session.app_id.encode("utf-8", "replace"))
    for record in session.records:
        digest.update(b"\x00")
        digest.update(repr(record.timestamp).encode("ascii", "replace"))
        digest.update(b"\x1f")
        digest.update(record.message.encode("utf-8", "replace"))
    return digest.hexdigest()[:20]
